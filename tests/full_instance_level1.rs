//! The flagship cross-level verification: Theorem 14's **actual** 91-rule
//! separating instance, executed at Level 1 (swarms) in both directions.
//!
//! By Lemma 12, "finitely leads to the red spider" transfers between
//! levels, so this is Theorem 14 verified on the real object (the Level-0
//! rendition with its 66 799-atom queries is measured in EXPERIMENTS.md
//! but is too slow for test time on the positive side).

use cqfd::chase::ChaseBudget;
use cqfd::greenred::Color;
use cqfd::reduction::{precompile, precompile_map};
use cqfd::separating::theorem14::{separating_space, t_separating};
use cqfd::separating::tinf::lasso_model;
use cqfd::swarm::{L1System, Swarm, SwarmContext};
use std::sync::Arc;

#[test]
fn real_separating_instance_at_level1() {
    let t = t_separating();
    let pre = precompile(&t);
    assert_eq!(pre.rules.len(), 91);
    assert_eq!(pre.s, 92);
    let ctx = Arc::new(SwarmContext::with_s(pre.s));
    // |A| = 2(s+1)² ideal spiders — a 17 298-predicate signature.
    assert_eq!(ctx.signature().pred_count(), 2 * 93 * 93);
    let sys = L1System::new(pre.rules.clone());

    // Negative half: from the bare green seed, no full red spider.
    let (seed, _, _) = Swarm::green_seed(Arc::clone(&ctx));
    let budget = ChaseBudget {
        max_stages: 6,
        max_atoms: 1 << 20,
        max_nodes: 1 << 20,
        ..ChaseBudget::default()
    };
    let (_, _, found) = sys.chase_until_red(&seed, &budget);
    assert!(!found, "the unfolded side must stay red-spider-free");

    // Positive half: the folded lasso, translated to a swarm, reaches the
    // full red spider.
    let lasso = lasso_model(separating_space(), 3, 1);
    let (lasso_swarm, _, _) = precompile_map(&pre, Arc::clone(&ctx), &lasso);
    // The translation seeds green edges for the lasso plus one stage of red
    // witnesses; both colors are present.
    assert!(lasso_swarm
        .edges()
        .iter()
        .any(|e| e.spider.base == Color::Green));
    let budget = ChaseBudget {
        max_stages: 40,
        max_atoms: 1 << 21,
        max_nodes: 1 << 21,
        ..ChaseBudget::default()
    };
    let (out, run, found) = sys.chase_until_red(&lasso_swarm, &budget);
    assert!(
        found,
        "the folded side must produce H(H,_,_) (ran {} stages, {} edges)",
        run.stage_count(),
        out.edges().len()
    );
}
