//! Integration tests for the `cqfd-service` job-server subsystem: a mixed
//! batch with known ground truth, cooperative cancellation under a
//! deadline, queue backpressure, and the TCP front-end's graceful
//! shutdown.

use cqfd::greenred::instances;
use cqfd::rainworm::families::{forever_worm, halting_worm_short};
use cqfd::service::{Job, JobBudget, JobOutcome, Pool, PoolConfig, Server, SubmitError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn determine_job(inst: instances::Instance, stages: usize) -> (Job, Option<bool>) {
    let truth = inst.determined;
    (
        Job::Determine {
            sig: inst.sig,
            views: inst.views,
            q0: inst.q0,
            budget: JobBudget::default().with_stages(stages),
        },
        truth,
    )
}

/// The ISSUE's acceptance workload: a 20-job mixed batch on a 4-worker
/// pool, verdicts checked against the generators' ground truth.
#[test]
fn mixed_batch_of_20_on_4_workers_matches_ground_truth() {
    let mut jobs = Vec::new();
    let mut truths: Vec<Option<bool>> = Vec::new();
    // 16 determinacy instances with known ground truth…
    for inst in [
        instances::composed_path_instance(1, 2),
        instances::composed_path_instance(2, 2),
        instances::composed_path_instance(2, 3),
        instances::composed_path_instance(3, 2),
        instances::projection_instance(),
        instances::mismatched_path_instance(2, 3),
    ] {
        let (job, truth) = determine_job(inst, 48);
        jobs.push(job);
        truths.push(truth);
    }
    for inst in instances::random_batch(7, 10) {
        let (job, truth) = determine_job(inst, 48);
        jobs.push(job);
        truths.push(truth);
    }
    // …plus non-chase work riding along in the same pool.
    jobs.push(Job::Creep {
        delta: halting_worm_short(),
        budget: JobBudget::default(),
    });
    truths.push(None);
    jobs.push(Job::Creep {
        delta: cqfd::rainworm::families::counter_worm(2),
        budget: JobBudget::default(),
    });
    truths.push(None);
    jobs.push(Job::Rewrite {
        sig: instances::composed_path_instance(2, 2).sig,
        views: instances::composed_path_instance(2, 2).views,
        q0: instances::composed_path_instance(2, 2).q0,
    });
    truths.push(None);
    jobs.push(Job::Separate {
        budget: JobBudget::default().with_stages(80),
    });
    truths.push(None);
    assert_eq!(jobs.len(), 20);

    let pool = Pool::new(PoolConfig::default().with_workers(4));
    assert_eq!(pool.worker_count(), 4);
    let results = pool.run_batch(jobs);
    assert_eq!(results.len(), 20);

    for (r, truth) in results.iter().zip(&truths) {
        match truth {
            Some(true) => assert_eq!(
                r.outcome.verdict(),
                "determined",
                "job {} ({})",
                r.id,
                r.kind
            ),
            Some(false) => assert_ne!(
                r.outcome.verdict(),
                "determined",
                "job {} ({})",
                r.id,
                r.kind
            ),
            None => {}
        }
        assert!(
            !matches!(r.outcome, JobOutcome::Error { .. }),
            "job {} errored: {:?}",
            r.id,
            r.outcome
        );
    }
    // The verdict-bearing results carry real metrics.
    let chased: Vec<_> = results.iter().filter(|r| r.kind == "determine").collect();
    assert!(chased.iter().all(|r| r.metrics.homs > 0));
    assert!(chased.iter().all(|r| r.metrics.peak_atoms > 0));
    // Results come back in submission order with sequential ids.
    let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, (1..=20).collect::<Vec<u64>>());
    pool.shutdown();
}

/// A forever worm with a 1-second deadline must be reported as budget
/// exceeded without stalling the pool: jobs queued behind it still finish.
#[test]
fn forever_worm_deadline_does_not_stall_the_pool() {
    let pool = Pool::new(PoolConfig::default().with_workers(1));
    let worm = pool.submit_blocking(Job::Creep {
        delta: forever_worm(),
        budget: JobBudget::default()
            .with_steps(usize::MAX)
            .with_timeout(Duration::from_secs(1)),
    });
    // Queued behind the runaway job on the single worker.
    let behind = pool.submit_blocking(Job::Creep {
        delta: halting_worm_short(),
        budget: JobBudget::default(),
    });
    let started = Instant::now();
    let r = worm.wait();
    assert_eq!(
        r.outcome,
        JobOutcome::BudgetExceeded {
            detail: "deadline".into()
        }
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline enforced promptly"
    );
    assert_eq!(behind.wait().outcome.verdict(), "halted");
    pool.shutdown();
}

/// Explicit cancellation stops a `forever` creep well before any deadline.
#[test]
fn cancellation_stops_a_forever_creep() {
    let pool = Pool::new(PoolConfig::default().with_workers(1));
    let handle = pool.submit_blocking(Job::Creep {
        delta: forever_worm(),
        budget: JobBudget::default().with_steps(usize::MAX),
    });
    std::thread::sleep(Duration::from_millis(100));
    handle.cancel();
    let started = Instant::now();
    let r = handle.wait();
    assert_eq!(
        r.outcome,
        JobOutcome::BudgetExceeded {
            detail: "cancelled".into()
        }
    );
    assert!(started.elapsed() < Duration::from_secs(5));
    pool.shutdown();
}

/// Overflowing the bounded queue reports backpressure instead of
/// panicking or growing without bound.
#[test]
fn queue_overflow_reports_backpressure() {
    let pool = Pool::new(PoolConfig::default().with_workers(1).with_queue_capacity(2));
    let mut handles = Vec::new();
    let mut saw_backpressure = false;
    for _ in 0..100 {
        match pool.submit(Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        }) {
            Ok(h) => handles.push(h),
            Err(SubmitError::QueueFull) => saw_backpressure = true,
        }
    }
    assert!(saw_backpressure, "100 instant submissions must overflow");
    assert!(!handles.is_empty(), "some submissions must be accepted");
    for h in handles {
        assert_eq!(h.wait().outcome.verdict(), "halted");
    }
    pool.shutdown();
}

/// The TCP server answers concurrent clients and shuts down gracefully,
/// joining every thread (handle.shutdown() returning proves the joins).
#[test]
fn tcp_server_serves_concurrent_clients_then_shuts_down() {
    let server = Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(2))
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().expect("spawn server");

    let clients: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut greeting = String::new();
                reader.read_line(&mut greeting).unwrap();
                assert_eq!(greeting.trim(), "cqfd-service v1");
                let line = match i % 3 {
                    0 => "determine instance=path:2x2 stages=48",
                    1 => "determine instance=projection",
                    _ => "creep worm=short",
                };
                writeln!(writer, "{line}").unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                writeln!(writer, "quit").unwrap();
                reply
            })
        })
        .collect();
    let replies: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(replies[0].contains("verdict=determined"), "{}", replies[0]);
    assert!(
        replies[1].contains("verdict=not-determined"),
        "{}",
        replies[1]
    );
    assert!(replies[2].contains("verdict=halted"), "{}", replies[2]);
    for r in &replies {
        assert!(r.contains("elapsed_ms="), "metrics present: {r}");
    }

    handle.shutdown(); // joins the accept loop, connections, and workers
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed after shutdown"
    );
}
