//! The persistent result store, end to end: canonical job hashing is
//! invariant under rule/view/atom permutation and variable renaming (and
//! sensitive to budget-relevant knobs), cache hits are served only after
//! the trusted checker re-validates the stored certificate, tampered
//! entries fall back to a fresh chase, and a chase killed at *any* stage
//! boundary resumes from its write-ahead log to a byte-identical verdict,
//! stage history, firing log, final structure, and certificate — at 1, 2
//! and 4 threads.

use cqfd::cert::convert;
use cqfd::cert::{firing_line, parse_stage_log, stage_log_prelude_with_meta, stage_mark_line};
use cqfd::chase::{ChaseBudget, ChaseHooks, ChaseRun};
use cqfd::core::{CancelToken, Cq, Signature};
use cqfd::greenred::{instances, DeterminacyOracle};
use cqfd::service::{execute_stored, job_key, parse_result_line, Job, JobBudget, JobOutcome};
use cqfd::store::{resume_point, sha256_hex, JobKey, Store};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// A fresh, empty store directory under the system temp dir.
fn temp_store(tag: &str) -> (Store, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cqfd-store-suite-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open temp store");
    (store, dir)
}

/// A determine job over an explicit signature (so tests can permute it).
fn determine_job(sig: Signature, views: Vec<Cq>, q0: Cq, budget: JobBudget) -> Job {
    Job::Determine {
        sig,
        views,
        q0,
        budget,
    }
}

/// A determine job over a generated instance family.
fn instance_job(inst: instances::Instance, budget: JobBudget) -> Job {
    determine_job(inst.sig, inst.views, inst.q0, budget)
}

fn run(job: &Job, store: Option<&Store>, lookup: bool) -> cqfd::service::JobResult {
    execute_stored(0, job, &CancelToken::new(), usize::MAX, store, lookup)
}

// ---------------------------------------------------------------- hashing

#[test]
fn permuted_but_equivalent_jobs_hash_identically() {
    let mut sig = Signature::new();
    sig.add_predicate("R", 2);
    sig.add_predicate("S", 2);
    let views = |sig: &Signature, a: &str, b: &str| {
        vec![Cq::parse(sig, a).unwrap(), Cq::parse(sig, b).unwrap()]
    };
    let q0 = |sig: &Signature, s: &str| Cq::parse(sig, s).unwrap();

    let base = determine_job(
        sig.clone(),
        views(&sig, "V1(x,y) :- R(x,y)", "V2(x,z) :- R(x,y), S(y,z)"),
        q0(&sig, "Q0(x,z) :- R(x,y), S(y,z)"),
        JobBudget::default(),
    );
    let key = job_key(&base).expect("determine jobs hash");

    // Same job with the views listed in the other order, the conjuncts of
    // V2 and Q0 swapped, and every variable renamed: same canonical form.
    let permuted = determine_job(
        sig.clone(),
        views(&sig, "V2(p,q) :- S(r,q), R(p,r)", "V1(a,b) :- R(a,b)"),
        q0(&sig, "Q0(m,n) :- S(k,n), R(m,k)"),
        JobBudget::default(),
    );
    assert_eq!(key.hash, job_key(&permuted).unwrap().hash, "permutation");
    assert_eq!(key.text, job_key(&permuted).unwrap().text, "canonical text");

    // Predicate declaration order is also irrelevant.
    let mut sig2 = Signature::new();
    sig2.add_predicate("S", 2);
    sig2.add_predicate("R", 2);
    let redeclared = determine_job(
        sig2.clone(),
        views(&sig2, "V1(x,y) :- R(x,y)", "V2(x,z) :- R(x,y), S(y,z)"),
        q0(&sig2, "Q0(x,z) :- R(x,y), S(y,z)"),
        JobBudget::default(),
    );
    assert_eq!(key.hash, job_key(&redeclared).unwrap().hash, "sig order");

    // A budget-relevant knob changes the hash…
    let deeper = determine_job(
        sig.clone(),
        views(&sig, "V1(x,y) :- R(x,y)", "V2(x,z) :- R(x,y), S(y,z)"),
        q0(&sig, "Q0(x,z) :- R(x,y), S(y,z)"),
        JobBudget::default().with_stages(64),
    );
    assert_ne!(key.hash, job_key(&deeper).unwrap().hash, "stage knob");

    // …while execution-shape knobs (threads, trace, lint, cache, resume)
    // do not: they change how the answer is computed, not what it is.
    let reshaped = determine_job(
        sig,
        views(
            &base_sig(&base),
            "V1(x,y) :- R(x,y)",
            "V2(x,z) :- R(x,y), S(y,z)",
        ),
        q0(&base_sig(&base), "Q0(x,z) :- R(x,y), S(y,z)"),
        JobBudget::default()
            .with_threads(4)
            .with_trace(true)
            .with_lint(true)
            .with_cache(false)
            .with_resume(true),
    );
    assert_eq!(key.hash, job_key(&reshaped).unwrap().hash, "shape knobs");

    // Different queries, different hash.
    let other = instance_job(
        instances::composed_path_instance(2, 3),
        JobBudget::default(),
    );
    assert_ne!(key.hash, job_key(&other).unwrap().hash, "different query");
}

fn base_sig(job: &Job) -> Signature {
    match job {
        Job::Determine { sig, .. } => sig.clone(),
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------- caching

#[test]
fn second_run_is_a_checker_validated_hit() {
    let (store, dir) = temp_store("hit");
    let job = instance_job(
        instances::composed_path_instance(2, 3),
        JobBudget::default(),
    );

    let cold = run(&job, Some(&store), true);
    assert!(!cold.metrics.cached, "first run computes");
    assert_eq!(store.counters(), (0, 1, 0, 0), "one miss");

    let warm = run(&job, Some(&store), true);
    assert!(warm.metrics.cached, "second run is served from the store");
    assert_eq!(store.counters(), (1, 1, 0, 0), "one hit, one miss");
    assert_eq!(cold.outcome, warm.outcome);

    // Normalized result lines (id/elapsed/cached stripped) are identical.
    let norm = |r: &cqfd::service::JobResult| {
        parse_result_line(&r.to_string()).expect("result line parses back")
    };
    assert_eq!(norm(&cold), norm(&warm));

    // The stored entry carries a certificate even though the job did not
    // ask for one (write-back forces it), but the *reply* stays lean.
    assert!(
        warm.certificate.is_none(),
        "cert not requested, not replied"
    );
    let key = job_key(&job).unwrap();
    let entry = fs::read_to_string(store.entry_path(&key.hash)).unwrap();
    assert!(
        entry.contains("cqfd-cert v1"),
        "entry embeds the certificate"
    );

    let _ = fs::remove_dir_all(dir);
}

#[test]
fn cache_opt_out_always_recomputes() {
    let (store, dir) = temp_store("optout");
    let job = instance_job(
        instances::composed_path_instance(2, 3),
        JobBudget::default().with_cache(false),
    );
    let a = run(&job, Some(&store), true);
    let b = run(&job, Some(&store), true);
    assert!(!a.metrics.cached && !b.metrics.cached);
    assert_eq!(store.counters(), (0, 0, 0, 0), "store never consulted");
    assert!(
        !store.entry_path(&job_key(&job).unwrap().hash).exists(),
        "cache=0 also skips write-back"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn tampered_entries_are_rejected_and_rechased() {
    let (store, dir) = temp_store("tamper");
    let job = instance_job(
        instances::composed_path_instance(2, 3),
        JobBudget::default(),
    );
    let cold = run(&job, Some(&store), true);
    let key = job_key(&job).unwrap();
    let path = store.entry_path(&key.hash);

    // (a) Flip one byte inside the stored certificate: the entry checksum
    // no longer matches, the lookup rejects, and the job re-chases.
    let pristine = fs::read_to_string(&path).unwrap();
    let idx = pristine
        .find("fire ")
        .expect("chase-trace cert has firings");
    let mut bytes = pristine.clone().into_bytes();
    bytes[idx + 5] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    let after_flip = run(&job, Some(&store), true);
    assert!(!after_flip.metrics.cached, "tampered entry must not serve");
    assert_eq!(after_flip.outcome, cold.outcome, "fresh chase, same answer");
    let (_, _, rejects, _) = store.counters();
    assert_eq!(rejects, 1, "checksum tamper counted as a reject");

    // The fresh run wrote the entry back; it serves again…
    assert!(run(&job, Some(&store), true).metrics.cached);

    // (b) Now tamper *consistently*: truncate the certificate and forge a
    // matching checksum, so only the cqfd-cert checker itself can object.
    let text = fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let mut head: Vec<String> = Vec::new();
    let mut n = 0usize;
    for l in lines.by_ref() {
        head.push(l.to_string());
        if let Some(v) = l.strip_prefix("cert_lines=") {
            n = v.parse().unwrap();
            break;
        }
    }
    let cert: Vec<&str> = lines.take(n).collect();
    // Drop the certificate's own trailing `end` line: the payload stays
    // plausible but no longer parses as a complete certificate.
    let truncated = cert[..n - 1].join("\n") + "\n";
    let result_line = head
        .iter()
        .find_map(|l| l.strip_prefix("result "))
        .expect("entry has a result line");
    let sum = sha256_hex(format!("{result_line}\n{truncated}").as_bytes());
    let mut forged = String::new();
    for l in &head {
        if l.starts_with("sum sha256=") {
            forged.push_str(&format!("sum sha256={sum}\n"));
        } else if l.starts_with("cert_lines=") {
            forged.push_str(&format!("cert_lines={}\n", n - 1));
        } else {
            forged.push_str(l);
            forged.push('\n');
        }
    }
    forged.push_str(&truncated);
    forged.push_str("end\n");
    fs::write(&path, forged).unwrap();

    let after_forge = run(&job, Some(&store), true);
    assert!(!after_forge.metrics.cached, "forged cert must not serve");
    assert_eq!(after_forge.outcome, cold.outcome);
    let (_, _, rejects, _) = store.counters();
    assert_eq!(rejects, 2, "checker/parse rejection counted");

    // `store verify` sees a healthy store again (the re-chase repaired it),
    // and `gc` on a corrupted entry removes it.
    assert!(store.verify().unwrap().is_empty());
    fs::write(&path, "cqfd-store v1\ngarbage\n").unwrap();
    assert_eq!(store.verify().unwrap().len(), 1);
    let report = store.gc().unwrap();
    assert_eq!(report.removed_entries, 1);
    assert!(!path.exists());

    let _ = fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------- resume

/// The write-ahead log a run killed after `k` committed stages would
/// leave on disk: the prelude plus the first `k` stages' firings/marks of
/// the (recorded) uninterrupted run.
fn killed_log_text(
    oracle: &DeterminacyOracle,
    views: &[Cq],
    q0: &Cq,
    full: &ChaseRun,
    k: usize,
) -> String {
    let (engine, start, _) = oracle.chase_setup(views, q0);
    let sig = convert::sig_spec(start.signature());
    let rules: Vec<_> = engine.tgds().iter().map(convert::rule_spec).collect();
    // Stamp the dispatch mode the executor runs under by default: the
    // resume guard refuses logs written under a different mode.
    let mut text = stage_log_prelude_with_meta(
        &sig,
        &rules,
        &convert::struct_spec(&start),
        &[("dispatch", "auto")],
    );
    for (i, info) in full.stages.iter().take(k).enumerate() {
        let stage = i + 1;
        for f in full.firings.iter().filter(|f| f.stage == stage) {
            text.push_str(&firing_line(&convert::firing_spec(f)));
        }
        text.push_str(&stage_mark_line(
            stage,
            info.applications,
            info.atoms_after,
            info.nodes_after,
        ));
    }
    text
}

/// Byte-level equality of everything the issue demands: structures,
/// stage history, firing log, verdict, certificate.
fn assert_resume_identical(full: &ChaseRun, resumed: &ChaseRun, what: &str) {
    assert_eq!(
        full.structure.atoms(),
        resumed.structure.atoms(),
        "{what}: atoms"
    );
    assert_eq!(
        full.structure.node_count(),
        resumed.structure.node_count(),
        "{what}: nodes"
    );
    assert_eq!(full.stages, resumed.stages, "{what}: stage history");
    assert_eq!(full.firings, resumed.firings, "{what}: firing log");
    assert_eq!(full.outcome, resumed.outcome, "{what}: outcome");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill the oracle chase at a random stage boundary, rebuild the
    /// resume point from the recovered log, and finish the run: the
    /// verdict, stage history, firing log, final structure and
    /// certificate are byte-identical to the uninterrupted run's, at
    /// every thread count.
    #[test]
    fn resumed_runs_are_byte_identical(
        k in 0usize..8,
        threads_ix in 0usize..3,
        determined in any::<bool>(),
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        let inst = if determined {
            instances::composed_path_instance(2, 3)
        } else {
            instances::mismatched_path_instance(2, 3)
        };
        let oracle = DeterminacyOracle::new(inst.sig.clone());
        let budget = ChaseBudget::stages(32).with_threads(threads);
        let full = oracle.certify_run(&inst.views, &inst.q0, &budget);
        prop_assert!(full.run.stage_count() >= 1);

        // The checkpoint hook never commits the concluding stage, so a
        // real crash leaves at most stage_count-1 stages in the log.
        let k = k.min(full.run.stage_count() - 1);
        let text = killed_log_text(&oracle, &inst.views, &inst.q0, &full.run, k);
        let log = parse_stage_log(&text).expect("manufactured log parses");
        prop_assert_eq!(log.stages.len(), k);

        let (engine, start, _) = oracle.chase_setup(&inst.views, &inst.q0);
        let rp = resume_point(&engine, &start, &log).expect("log matches the job");
        let resumed = oracle.certify_run_with(
            &inst.views,
            &inst.q0,
            &budget,
            ChaseHooks { resume: Some(rp), checkpoint: None },
        );

        prop_assert_eq!(&full.verdict, &resumed.verdict);
        assert_resume_identical(
            &full.run,
            &resumed.run,
            &format!("{} k={k} @{threads}t", inst.name),
        );
        prop_assert_eq!(
            cqfd::cert::encode(&full.certificate),
            cqfd::cert::encode(&resumed.certificate),
            "certificate bytes"
        );

        // A torn tail (the crash landed mid-append, after at least one
        // committed stage) resumes from the last complete stage mark
        // instead of failing.
        if k >= 1 {
            let torn = &text[..text.len() - 3];
            let log = parse_stage_log(torn).expect("torn log still parses");
            prop_assert!(log.stages.len() < k);
            let rp = resume_point(&engine, &start, &log).expect("torn log resumes");
            let retorn = oracle.certify_run_with(
                &inst.views,
                &inst.q0,
                &budget,
                ChaseHooks { resume: Some(rp), checkpoint: None },
            );
            prop_assert_eq!(&full.verdict, &retorn.verdict);
            prop_assert_eq!(
                cqfd::cert::encode(&full.certificate),
                cqfd::cert::encode(&retorn.certificate),
                "torn-tail certificate bytes"
            );
        }
    }
}

/// The executor-level crash/restart loop: a cancelled run leaves its
/// stage log behind, a restarted run resumes from it (counted in
/// `cqfd_store_resumes_total`) and concludes byte-identically, and the
/// conclusive run cleans the log up.
#[test]
fn executor_resumes_from_stage_log_after_cancellation() {
    let (store, dir) = temp_store("resume");
    let budget = JobBudget::default()
        .with_certificate(true)
        .with_resume(true);
    let job = instance_job(instances::mismatched_path_instance(2, 3), budget.clone());
    let key = job_key(&job).unwrap();
    let log_path = store.log_path(&key.hash);

    // Uninterrupted baseline (no store in play).
    let baseline = run(&job, None, false);
    assert!(matches!(baseline.outcome, JobOutcome::NotDetermined { .. }));

    // "Crash" 1: an already-expired deadline cancels the chase at the
    // first stage boundary. The log survives (prelude plus whatever
    // stages committed) because the run was not conclusive. The timeout
    // is not part of the canonical hash, so the log lands under the same
    // key the real job will resume from.
    let doomed = instance_job(
        instances::mismatched_path_instance(2, 3),
        budget.clone().with_timeout(std::time::Duration::ZERO),
    );
    assert_eq!(job_key(&doomed).unwrap().hash, key.hash, "timeout unhashed");
    let aborted = run(&doomed, Some(&store), false);
    assert!(
        matches!(aborted.outcome, JobOutcome::BudgetExceeded { .. }),
        "{:?}",
        aborted.outcome
    );
    assert!(log_path.exists(), "cancelled run keeps its write-ahead log");

    // "Crash" 2: deepen the log to look like a kill after two stages, by
    // replaying the baseline's committed prefix into it.
    let inst = instances::mismatched_path_instance(2, 3);
    let oracle = DeterminacyOracle::new(inst.sig.clone());
    let full = oracle.certify_run(&inst.views, &inst.q0, &ChaseBudget::stages(32));
    let k = 2.min(full.run.stage_count() - 1);
    fs::write(
        &log_path,
        killed_log_text(&oracle, &inst.views, &inst.q0, &full.run, k),
    )
    .unwrap();

    // Restart: the executor recovers the log, resumes, and concludes.
    let resumed = run(&job, Some(&store), false);
    assert_eq!(resumed.outcome, baseline.outcome, "same verdict");
    assert_eq!(
        resumed.certificate, baseline.certificate,
        "byte-identical certificate after resume"
    );
    let (_, _, _, resumes) = store.counters();
    assert_eq!(resumes, 1, "resume counted");
    assert!(!log_path.exists(), "conclusive run removes the stage log");

    // The concluded result was also written back: next run is a pure hit.
    let warm = run(&job, Some(&store), true);
    assert!(warm.metrics.cached);
    assert_eq!(warm.outcome, baseline.outcome);
    assert_eq!(warm.certificate, baseline.certificate);

    let _ = fs::remove_dir_all(dir);
}

/// Dispatch tamper regression: a stage log stamped with a *different*
/// dispatch mode (or none at all — a pre-dispatch log) is refused on
/// resume. Auto and semi runs of the same job may take different routes,
/// so splicing one mode's write-ahead log into the other would let a
/// stale prefix contaminate a differently-routed run. The executor
/// discards the log, restarts from scratch, and still concludes with the
/// baseline verdict.
#[test]
fn resume_refuses_stage_log_from_a_different_dispatch_mode() {
    let inst = instances::mismatched_path_instance(2, 3);
    let oracle = DeterminacyOracle::new(inst.sig.clone());
    let full = oracle.certify_run(&inst.views, &inst.q0, &ChaseBudget::stages(32));
    let k = 2.min(full.run.stage_count() - 1);
    let good = killed_log_text(&oracle, &inst.views, &inst.q0, &full.run, k);
    assert!(good.contains("\nmeta dispatch=auto\n"), "meta line present");
    assert_eq!(
        parse_stage_log(&good).unwrap().meta,
        vec![("dispatch".to_string(), "auto".to_string())],
        "meta round-trips through the parser"
    );

    let budget = JobBudget::default()
        .with_certificate(true)
        .with_resume(true);
    let job = instance_job(instances::mismatched_path_instance(2, 3), budget);
    let baseline = run(&job, None, false);

    let tampered = good.replace("meta dispatch=auto", "meta dispatch=semi");
    let stripped = good.replace("meta dispatch=auto\n", "");
    for (what, text) in [("wrong mode", tampered), ("missing meta", stripped)] {
        let (store, dir) = temp_store(&format!("refuse-{}", what.len()));
        let key = job_key(&job).unwrap();
        fs::write(store.log_path(&key.hash), &text).unwrap();

        let r = run(&job, Some(&store), false);
        assert_eq!(r.outcome, baseline.outcome, "{what}: fresh run concludes");
        assert_eq!(r.certificate, baseline.certificate, "{what}: same cert");
        let (_, _, _, resumes) = store.counters();
        assert_eq!(resumes, 0, "{what}: the foreign log was not resumed");

        let _ = fs::remove_dir_all(dir);
    }

    // Control: the unmolested log *is* resumed (mode matches).
    let (store, dir) = temp_store("refuse-control");
    let key = job_key(&job).unwrap();
    fs::write(store.log_path(&key.hash), &good).unwrap();
    let r = run(&job, Some(&store), false);
    assert_eq!(r.outcome, baseline.outcome);
    let (_, _, _, resumes) = store.counters();
    assert_eq!(resumes, 1, "control: matching mode resumes");
    let _ = fs::remove_dir_all(dir);
}

/// A stage log for a *different* job (same hash bucket never happens in
/// practice, but a copied/renamed file can) is ignored, not replayed.
#[test]
fn mismatched_stage_log_is_ignored() {
    let (store, dir) = temp_store("mismatch-log");
    let budget = JobBudget::default().with_resume(true);
    let job = instance_job(instances::mismatched_path_instance(2, 3), budget.clone());
    let key = job_key(&job).unwrap();

    // Write a log recorded for a different instance under this job's key.
    let other = instances::composed_path_instance(2, 3);
    let oracle = DeterminacyOracle::new(other.sig.clone());
    let full = oracle.certify_run(&other.views, &other.q0, &ChaseBudget::stages(32));
    let text = killed_log_text(&oracle, &other.views, &other.q0, &full.run, 1);
    fs::create_dir_all(store.log_path(&key.hash).parent().unwrap()).unwrap();
    fs::write(store.log_path(&key.hash), text).unwrap();

    let result = run(&job, Some(&store), false);
    assert!(matches!(result.outcome, JobOutcome::NotDetermined { .. }));
    let (_, _, _, resumes) = store.counters();
    assert_eq!(resumes, 0, "foreign log must not be resumed from");
    let _ = fs::remove_dir_all(dir);
}

// --------------------------------------------------------------- eviction

/// A syntactically valid 64-hex key that no real job hashes to.
fn fake_key(i: usize) -> JobKey {
    JobKey {
        hash: format!("{i:02x}{}", "0".repeat(62)),
        text: String::new(),
    }
}

#[test]
fn evict_to_drops_least_recently_hit_entries_first() {
    let (store, dir) = temp_store("evict");
    let now = std::time::SystemTime::now();
    for i in 0..4 {
        let key = fake_key(i);
        store
            .insert(&key, "determine", "job=0 kind=determine verdict=halted", "")
            .unwrap();
        // Backdate: entry 0 is the coldest, entry 3 the most recently hit.
        let age = std::time::Duration::from_secs((4 - i as u64) * 3600);
        fs::File::open(store.entry_path(&key.hash))
            .unwrap()
            .set_modified(now - age)
            .unwrap();
    }
    let total = store.stat().unwrap().entry_bytes;
    let per_entry = total / 4; // all four entries are byte-identical in size

    // A budget for two entries evicts exactly the two coldest.
    let report = store.evict_to(per_entry * 2).unwrap();
    assert_eq!(report.evicted_entries, 2);
    assert_eq!(report.retained_bytes, total - report.evicted_bytes);
    assert!(report.retained_bytes <= per_entry * 2);
    assert!(!store.entry_path(&fake_key(0).hash).exists());
    assert!(!store.entry_path(&fake_key(1).hash).exists());
    assert!(store.entry_path(&fake_key(2).hash).exists());
    assert!(store.entry_path(&fake_key(3).hash).exists());

    // A zero budget clears the cache entirely.
    let report = store.evict_to(0).unwrap();
    assert_eq!(report.evicted_entries, 2);
    assert_eq!(report.retained_bytes, 0);
    assert_eq!(store.stat().unwrap().entries, 0);

    // An ample budget is a no-op on an empty (or fitting) store.
    assert_eq!(store.evict_to(u64::MAX).unwrap().evicted_entries, 0);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn cache_hits_refresh_eviction_recency() {
    let (store, dir) = temp_store("touch");
    let job = instance_job(
        instances::composed_path_instance(2, 3),
        JobBudget::default(),
    );
    run(&job, Some(&store), true); // populate
    let path = store.entry_path(&job_key(&job).unwrap().hash);
    let old = std::time::SystemTime::now() - std::time::Duration::from_secs(86_400);
    fs::File::open(&path).unwrap().set_modified(old).unwrap();

    let warm = run(&job, Some(&store), true);
    assert!(warm.metrics.cached, "second run must hit");
    let refreshed = fs::metadata(&path).unwrap().modified().unwrap();
    assert!(
        refreshed > old + std::time::Duration::from_secs(3600),
        "a confirmed hit must refresh the entry mtime so LRU eviction \
         sees it as recently used"
    );
    let _ = fs::remove_dir_all(dir);
}
