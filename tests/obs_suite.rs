//! Integration tests for the `cqfd-obs` observability subsystem: the
//! registry under real pool concurrency, trace capture through the job
//! server, and the Prometheus scrape seen end to end.

use cqfd::obs::{jsonl, prom, Registry, Unit};
use cqfd::rainworm::families::halting_worm_short;
use cqfd::service::{Job, JobBudget, Pool, PoolConfig};
use std::sync::Arc;

/// N threads hammer shared counter/histogram handles of a private
/// registry; totals must be exact (no lost updates) and snapshots taken
/// while writers run must be monotone in the counter and never see a
/// histogram whose count exceeds its later value.
#[test]
fn concurrent_updates_are_exact_and_snapshots_monotone() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Arc::new(Registry::new());
    let counter = reg.counter("t_ops_total", "test ops", &[]);
    let hist = reg.histogram("t_latency", "test latency", &[], Unit::None);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let hist = hist.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Deterministic spread across several octaves.
                    hist.observe((t as u64 + 1) * 1000 + i % 7);
                }
            })
        })
        .collect();

    // Reader thread: snapshots must be monotone while writers run.
    let reader = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_hist = 0u64;
            for _ in 0..200 {
                let snap = reg.snapshot();
                let c = snap
                    .family("t_ops_total")
                    .and_then(|f| f.get(&[]))
                    .and_then(|v| v.as_counter())
                    .unwrap_or(0);
                assert!(
                    c >= last_count,
                    "counter went backwards: {last_count} -> {c}"
                );
                last_count = c;
                let h = snap
                    .family("t_latency")
                    .and_then(|f| f.get(&[]))
                    .and_then(|v| v.as_histogram())
                    .map_or(0, |h| h.count());
                assert!(h >= last_hist, "histogram count went backwards");
                last_hist = h;
                std::thread::yield_now();
            }
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    reader.join().unwrap();

    let snap = reg.snapshot();
    let total = snap
        .family("t_ops_total")
        .unwrap()
        .get(&[])
        .unwrap()
        .as_counter()
        .unwrap();
    assert_eq!(total, THREADS as u64 * PER_THREAD, "no lost increments");
    let h = snap
        .family("t_latency")
        .unwrap()
        .get(&[])
        .unwrap()
        .as_histogram()
        .unwrap();
    assert_eq!(
        h.count(),
        THREADS as u64 * PER_THREAD,
        "no lost observations"
    );
    // Every observation was ≥ 1000, so the median must be too.
    assert!(h.quantile(0.5) >= 1000.0);
}

/// Running real jobs through the pool moves the global chase/hom/pool
/// families, and the resulting scrape is parseable, well-formed
/// Prometheus text.
#[test]
fn pool_jobs_feed_the_global_registry_and_scrape() {
    let before = cqfd::obs::global().snapshot();
    let homs_before = counter_of(&before, "cqfd_hom_search_nodes_total");
    let steps_before = counter_of(&before, "cqfd_hom_intersection_steps_total");
    let plans_before = counter_of(&before, "cqfd_homplan_cache_hits_total")
        + counter_of(&before, "cqfd_homplan_cache_misses_total");

    let pool = Pool::new(PoolConfig::default().with_workers(2));
    let jobs = vec![
        Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        },
        Job::Separate {
            budget: JobBudget::default().with_stages(80),
        },
    ];
    let results = pool.run_batch(jobs);
    assert!(results.iter().all(|r| r.outcome.verdict() != "error"));
    pool.shutdown();

    let after = cqfd::obs::global().snapshot();
    assert!(
        counter_of(&after, "cqfd_hom_search_nodes_total") > homs_before,
        "the separation chase explores hom-search nodes"
    );
    // The default engine is wco, so a real chase also moves the
    // intersection-step and plan-cache families.
    assert!(
        counter_of(&after, "cqfd_hom_intersection_steps_total") > steps_before,
        "the wco engine takes sorted-intersection steps"
    );
    assert!(
        counter_of(&after, "cqfd_homplan_cache_hits_total")
            + counter_of(&after, "cqfd_homplan_cache_misses_total")
            > plans_before,
        "the wco engine consults its plan cache"
    );
    let text = prom::render(&after);
    for family in [
        "cqfd_chase_run_seconds",
        "cqfd_chase_triggers_total",
        "cqfd_hom_search_nodes_total",
        "cqfd_hom_intersection_steps_total",
        "cqfd_homplan_cache_hits_total",
        "cqfd_homplan_cache_misses_total",
        "cqfd_pool_jobs_total",
        "cqfd_pool_job_seconds",
        "cqfd_pool_workers",
    ] {
        assert!(text.contains(family), "scrape missing {family}");
    }
    // Each HELP line is followed by a TYPE line for the same family.
    for (help, next) in text.lines().zip(text.lines().skip(1)) {
        if let Some(rest) = help.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(
                next.starts_with(&format!("# TYPE {name} ")),
                "HELP for {name} not followed by its TYPE"
            );
        }
    }
}

/// A traced job round-trips through the JSONL schema: capture on the pool
/// thread, parse, and find the expected span structure.
#[test]
fn traced_job_emits_parseable_spans() {
    let pool = Pool::new(PoolConfig::default().with_workers(1));
    let handle = pool.submit_blocking(Job::Separate {
        budget: JobBudget::default().with_stages(80).with_trace(true),
    });
    let result = handle.wait();
    pool.shutdown();

    let trace = result.trace.expect("trace=1 attaches a trace payload");
    let records = jsonl::parse_lines(&trace).expect("trace parses as JSONL");
    assert!(!records.is_empty());
    let id = result.id;
    assert!(
        records.iter().all(|r| r.job == Some(id)),
        "every record carries the job id"
    );
    // The job span wraps everything: first start, last end, both depth 0.
    let first = records.first().unwrap();
    let last = records.last().unwrap();
    assert_eq!((first.name.as_str(), first.depth), ("job.execute", 0));
    assert_eq!((last.name.as_str(), last.depth), ("job.execute", 0));
    assert!(last.elapsed_ns.is_some(), "span_end carries elapsed_ns");
    // The separation demonstration runs two chases inside the job span.
    let chase_runs = records
        .iter()
        .filter(|r| r.name == "chase.run" && r.elapsed_ns.is_none())
        .count();
    assert_eq!(chase_runs, 2, "chase(T,DI) and chase(T,lasso)");
    assert!(records
        .iter()
        .all(|r| { r.name != "chase.run" || r.depth >= 1 }));
    // Sequence numbers are strictly increasing (one writer thread).
    assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
    // Re-rendering a parsed record reproduces valid JSONL (schema is
    // closed under round-trips).
    let rerendered = jsonl::parse_lines(&trace).unwrap();
    assert_eq!(rerendered.len(), records.len());
}

fn counter_of(snap: &cqfd::obs::Snapshot, family: &str) -> u64 {
    snap.family(family)
        .and_then(|f| f.get(&[]))
        .and_then(|v| v.as_counter())
        .unwrap_or(0)
}
