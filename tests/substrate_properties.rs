//! Property-based integration tests on the substrate invariants, using
//! random structures and query sets.

use cqfd::chase::{ChaseBudget, ChaseEngine};
use cqfd::core::{structure_homomorphism, Cq, Node, Signature, Structure};
use cqfd::greenred::{greenred_tgds, Color, GreenRed};
use proptest::prelude::*;
use std::sync::Arc;

fn sig_rs() -> Arc<Signature> {
    let mut s = Signature::new();
    s.add_predicate("R", 2);
    s.add_predicate("S", 2);
    Arc::new(s)
}

/// A random structure over {R, S} with `n` nodes and the given edges.
fn build(sig: &Arc<Signature>, n: u32, edges: &[(bool, u32, u32)]) -> Structure {
    let r = sig.predicate("R").unwrap();
    let s = sig.predicate("S").unwrap();
    let mut d = Structure::new(Arc::clone(sig));
    for _ in 0..n {
        d.fresh_node();
    }
    for &(is_r, x, y) in edges {
        d.add(if is_r { r } else { s }, vec![Node(x % n), Node(y % n)]);
    }
    d
}

fn arb_edges(n: u32) -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    prop::collection::vec((any::<bool>(), 0..n, 0..n), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity is a homomorphism; homomorphisms compose.
    #[test]
    fn homomorphisms_compose(edges in arb_edges(4), more in arb_edges(4)) {
        let sig = sig_rs();
        let d1 = build(&sig, 4, &edges);
        let mut d2 = d1.clone();
        for &(is_r, x, y) in &more {
            let p = if is_r { sig.predicate("R").unwrap() } else { sig.predicate("S").unwrap() };
            d2.add(p, vec![Node(x % 4), Node(y % 4)]);
        }
        // d1 ⊆ d2, so the identity embeds d1 into d2.
        let h = structure_homomorphism(&d1, &d2);
        prop_assert!(h.is_some());
        // Collapse d2 onto a single node with all self-loops: a hom target
        // for everything over the same predicates.
        let mut point = Structure::new(Arc::clone(&sig));
        let p0 = point.fresh_node();
        for pred in sig.predicates() {
            point.add(pred, vec![p0, p0]);
        }
        let g = structure_homomorphism(&d2, &point);
        prop_assert!(g.is_some());
        // Composition: d1 → point must exist too.
        prop_assert!(structure_homomorphism(&d1, &point).is_some());
    }

    /// The chase result always admits a homomorphism into any model of the
    /// TGDs extending the start (universality), tested with the green-red
    /// TGDs of a random view.
    #[test]
    fn chase_universality(edges in arb_edges(3)) {
        let sig = sig_rs();
        let gr = GreenRed::new(Arc::clone(&sig));
        let v = Cq::parse(&sig, "V(x) :- R(x,y)").unwrap();
        let tgds = greenred_tgds(&gr, &[v]);
        let engine = ChaseEngine::new(tgds);
        let d = build(&sig, 3, &edges);
        let green = gr.color_structure(Color::Green, &d);
        let run = engine.chase(&green, &ChaseBudget::stages(12));
        if run.reached_fixpoint() {
            // The "all-loops" colored point is a model.
            let mut point = Structure::new(Arc::clone(gr.colored()));
            let p0 = point.fresh_node();
            for pred in gr.colored().predicates() {
                point.add(pred, vec![p0, p0]);
            }
            prop_assert!(engine.is_model(&point));
            prop_assert!(structure_homomorphism(&run.structure, &point).is_some());
        }
    }

    /// Observation 6: `dalt(chase(T_Q, D))` maps homomorphically into
    /// `dalt(D)` for green `D` — the chase's daltonisation adds nothing.
    #[test]
    fn observation6_random_instances(edges in arb_edges(3)) {
        let sig = sig_rs();
        let gr = GreenRed::new(Arc::clone(&sig));
        let v1 = Cq::parse(&sig, "V1(x,y) :- R(x,y)").unwrap();
        let v2 = Cq::parse(&sig, "V2(x) :- S(x,y)").unwrap();
        let tgds = greenred_tgds(&gr, &[v1, v2]);
        let engine = ChaseEngine::new(tgds);
        let d = build(&sig, 3, &edges);
        let green = gr.color_structure(Color::Green, &d);
        let run = engine.chase(&green, &ChaseBudget::stages(10));
        let dalt_chase = gr.dalt_structure(&run.structure);
        let dalt_start = gr.dalt_structure(&green);
        prop_assert!(
            structure_homomorphism(&dalt_chase, &dalt_start).is_some(),
            "Observation 6 violated"
        );
    }

    /// Chase monotonicity: the start is a substructure of every stage, and
    /// stages are substructures of the final result.
    #[test]
    fn chase_stages_are_monotone(edges in arb_edges(3)) {
        let sig = sig_rs();
        let gr = GreenRed::new(Arc::clone(&sig));
        let v = Cq::parse(&sig, "V(x,z) :- R(x,y), S(y,z)").unwrap();
        let engine = ChaseEngine::new(greenred_tgds(&gr, &[v]));
        let d = build(&sig, 3, &edges);
        let green = gr.color_structure(Color::Green, &d);
        let run = engine.chase(&green, &ChaseBudget::stages(6));
        let mut prev = run.stage_structure(0);
        prop_assert!(green.is_substructure_of(&prev));
        for i in 1..=run.stage_count() {
            let cur = run.stage_structure(i);
            prop_assert!(prev.is_substructure_of(&cur));
            prev = cur;
        }
        prop_assert!(prev.is_substructure_of(&run.structure));
    }

    /// Query evaluation is preserved under homomorphism-closed operations:
    /// painting then daltonising is the identity on answers.
    #[test]
    fn coloring_round_trip_preserves_answers(edges in arb_edges(4)) {
        let sig = sig_rs();
        let gr = GreenRed::new(Arc::clone(&sig));
        let q = Cq::parse(&sig, "Q(x,y) :- R(x,y)").unwrap();
        let d = build(&sig, 4, &edges);
        let before = q.eval(&d);
        let back = gr.dalt_structure(&gr.color_structure(Color::Red, &d));
        prop_assert_eq!(before, q.eval(&back));
    }
}
