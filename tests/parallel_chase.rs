//! Determinism of the parallel chase: at every `--threads` setting the
//! engine must produce *byte-identical* output — same atom list in the
//! same order, same node numbering, same stage history, same firing log,
//! same hom-search accounting, same certificates.
//!
//! This is the load-bearing property of the parallel enumeration design
//! (Phase A fans out over a frozen snapshot, the merge is by slice index,
//! Phase B applies sequentially), so we check it the hard way: exact
//! equality on everything a `ChaseRun` records, over the Theorem 14
//! separating rules, two rainworm rule families, and random green-red
//! instances, at 1, 2 and 4 threads and under both strategies.

use cqfd::chase::{ChaseBudget, ChaseOutcome, ChaseRun, Strategy};
use cqfd::greengraph::{GreenGraph, L2System, Label, LabelSpace};
use cqfd::rainworm::families::{counter_worm, forever_worm};
use cqfd::rainworm::to_rules::tm_rules;
use cqfd::separating::t_square;
use cqfd::separating::theorem14::{separating_budget, t_separating};
use cqfd::separating::tinf::lasso_model;
use cqfd::service::{Job, JobBudget, Pool, PoolConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Chases `g` under `sys` with recording on and the given thread count.
fn chase_threads(sys: &L2System, g: &GreenGraph, stages: usize, threads: usize) -> ChaseRun {
    let budget = separating_budget(stages).with_threads(threads);
    let engine = sys
        .engine(g.space())
        .with_strategy(Strategy::SemiNaive)
        .with_recording(true);
    engine.chase(g.structure(), &budget)
}

/// Asserts every observable of two runs is equal (except wall-clock).
fn assert_runs_identical(a: &ChaseRun, b: &ChaseRun, what: &str) {
    assert_eq!(a.structure.atoms(), b.structure.atoms(), "{what}: atoms");
    assert_eq!(
        a.structure.node_count(),
        b.structure.node_count(),
        "{what}: node count"
    );
    assert_eq!(a.stages, b.stages, "{what}: stage history");
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.firings, b.firings, "{what}: firing log");
    assert_eq!(a.hom_nodes, b.hom_nodes, "{what}: hom-search nodes");
}

/// The label space a worm's rule family chases over (its own labels plus
/// the 1-2 pattern labels, as in the countermodel tests).
fn worm_space(sys: &L2System) -> Arc<LabelSpace> {
    let mut labels = sys.labels();
    labels.extend([Label::ONE, Label::TWO]);
    Arc::new(LabelSpace::new(labels))
}

/// The two rainworm rule families the suite exercises: a looping worm and
/// a halting counter, both joined with the grid rules `T□`.
fn worm_families() -> Vec<(&'static str, L2System)> {
    vec![
        ("forever-worm", tm_rules(&forever_worm()).union(&t_square())),
        (
            "counter-worm",
            tm_rules(&counter_worm(2)).union(&t_square()),
        ),
    ]
}

#[test]
fn theorem14_chase_is_thread_count_invariant() {
    let sys = t_separating();
    let g = lasso_model(cqfd::separating::theorem14::separating_space(), 3, 1);
    let baseline = chase_threads(&sys, &g, 14, 1);
    assert!(baseline.stage_count() > 0);
    for threads in [2, 4] {
        let run = chase_threads(&sys, &g, 14, threads);
        assert_runs_identical(&baseline, &run, &format!("lasso(3,1) @{threads}t"));
    }
}

#[test]
fn rainworm_chases_are_thread_count_invariant() {
    for (name, sys) in worm_families() {
        let g = lasso_model(worm_space(&sys), 3, 1);
        let baseline = chase_threads(&sys, &g, 20, 1);
        assert!(baseline.triggers_fired() > 0, "{name}: chase must fire");
        for threads in [2, 4] {
            let run = chase_threads(&sys, &g, 20, threads);
            assert_runs_identical(&baseline, &run, &format!("{name} @{threads}t"));
        }
    }
}

// Both strategies must individually be thread-count invariant. (Naive and
// semi-naive are *not* byte-identical to each other — they enumerate
// matches in different orders — so each strategy is compared against its
// own single-threaded baseline, plus a semantic cross-check.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_lasso_geometry_is_thread_count_invariant(
        n in 3usize..6,
        p in 1usize..3,
        stages in 6usize..12,
    ) {
        let sys = t_separating();
        let g = lasso_model(cqfd::separating::theorem14::separating_space(), n, p);
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let runs: Vec<ChaseRun> = [1usize, 2, 4]
                .iter()
                .map(|&t| {
                    let budget = separating_budget(stages).with_threads(t);
                    sys.engine(g.space())
                        .with_strategy(strategy)
                        .with_recording(true)
                        .chase(g.structure(), &budget)
                })
                .collect();
            assert_runs_identical(&runs[0], &runs[1], &format!("{strategy:?} n{n}p{p} @2t"));
            assert_runs_identical(&runs[0], &runs[2], &format!("{strategy:?} n{n}p{p} @4t"));
        }
        // Cross-strategy semantic agreement: same final atom *set*.
        let naive = sys
            .engine(g.space())
            .with_strategy(Strategy::Naive)
            .chase(g.structure(), &separating_budget(stages));
        let semi = sys
            .engine(g.space())
            .with_strategy(Strategy::SemiNaive)
            .chase(g.structure(), &separating_budget(stages));
        let mut a: Vec<_> = naive.structure.atoms().to_vec();
        let mut b: Vec<_> = semi.structure.atoms().to_vec();
        prop_assert_eq!(a.len(), b.len());
        a.sort();
        b.sort();
        // Atom identity is up to node renaming between strategies, so
        // compare the per-predicate atom counts, which renaming preserves.
        let count = |v: &[cqfd::core::GroundAtom]| {
            let mut m = std::collections::BTreeMap::new();
            for atom in v {
                *m.entry(atom.pred).or_insert(0usize) += 1;
            }
            m
        };
        prop_assert_eq!(count(&a), count(&b));
    }
}

/// Oracle certificates are byte-identical at every thread count: the
/// chase-trace certificate serializes node ids and firing order, so this
/// catches any renumbering the structure comparison might miss.
#[test]
fn oracle_certificates_are_thread_count_invariant() {
    use cqfd::greenred::{instances, DeterminacyOracle};
    for inst in [
        instances::projection_instance(),
        instances::composed_path_instance(2, 3),
        instances::mismatched_path_instance(2, 3),
    ] {
        let oracle = DeterminacyOracle::new(inst.sig.clone());
        let encode = |threads: usize| {
            let cr = oracle.certify_run(
                &inst.views,
                &inst.q0,
                &ChaseBudget::stages(24).with_threads(threads),
            );
            cqfd::cert::encode(&cr.certificate)
        };
        let baseline = encode(1);
        assert_eq!(baseline, encode(2), "certificate @2 threads");
        assert_eq!(baseline, encode(4), "certificate @4 threads");
    }
}

/// Cancelling a multi-threaded chase mid-stage on a pooled worker leaves
/// the worker healthy: the cancelled job reports budget-exceeded (a valid
/// prefix, not a crash or a wedged scope), and the *same* reused worker
/// then runs a clean job to the correct verdict with uncorrupted metrics.
#[test]
fn cancelled_parallel_job_leaves_a_reusable_worker() {
    let pool = Pool::new(PoolConfig::default().with_workers(1));
    // A deadline far too tight for the 80-stage separation chase: the
    // parallel enumeration workers must observe it and stop cooperatively.
    let doomed = pool
        .submit_blocking(Job::Separate {
            budget: JobBudget::default()
                .with_stages(80)
                .with_threads(4)
                .with_timeout(Duration::from_millis(5)),
        })
        .wait();
    assert_eq!(doomed.outcome.verdict(), "budget-exceeded");
    // Same worker thread, fresh job: must be unaffected by the abort.
    let clean = pool
        .submit_blocking(Job::Separate {
            budget: JobBudget::default().with_stages(60).with_threads(4),
        })
        .wait();
    assert_eq!(clean.outcome.verdict(), "separated");
    pool.shutdown();
}

/// The engine-level version of the same guarantee, without the pool: a
/// pre-fired cancel token yields `Cancelled` with a structure that is a
/// valid chase prefix (exactly the last completed stage).
#[test]
fn cancelled_parallel_chase_is_a_valid_prefix() {
    let sys = t_separating();
    let g = lasso_model(cqfd::separating::theorem14::separating_space(), 3, 1);
    let cancel = cqfd::core::CancelToken::new();
    cancel.cancel();
    let budget = ChaseBudget {
        cancel,
        ..separating_budget(30).with_threads(4)
    };
    let run = sys
        .engine(g.space())
        .with_strategy(Strategy::SemiNaive)
        .chase(g.structure(), &budget);
    assert_eq!(run.outcome, ChaseOutcome::Cancelled);
    assert_eq!(
        run.stage_structure(run.stage_count()).atoms(),
        run.structure.atoms(),
        "cancelled run must stop exactly at a stage boundary"
    );
}
