//! Integration: the full Theorem 5 reduction, crossed between abstraction
//! levels and judged by the determinacy oracle.

use cqfd::chase::ChaseBudget;
use cqfd::greengraph::{GreenGraph, L2Rule, L2System, Label};
use cqfd::greenred::DeterminacyOracle;
use cqfd::rainworm::families::{counter_worm, forever_worm};
use cqfd::reduction::{precompile, reduce, reduce_l2};
use cqfd::swarm::{L1System, Swarm, SwarmContext};
use std::sync::Arc;

/// A Level-2 system, its precompilation and its compilation must agree on
/// "leads to the red spider" — Lemma 12, crossing three crates.
#[test]
fn three_levels_agree_on_tiny_instances() {
    let cases: Vec<(L2System, bool)> = vec![
        (
            L2System::new(vec![L2Rule::antenna(
                Label::Empty,
                Label::Empty,
                Label::ONE,
                Label::TWO,
            )]),
            true,
        ),
        (
            L2System::new(vec![L2Rule::tail(
                Label::Empty,
                Label::Empty,
                Label::ONE,
                Label::TWO,
            )]),
            true,
        ),
        (
            L2System::new(vec![L2Rule::antenna(
                Label::Empty,
                Label::Empty,
                Label::Alpha,
                Label::Beta1,
            )]),
            false,
        ),
    ];
    for (t, expect) in cases {
        // Level 2: 1-2 pattern from DI.
        let space = t.space_with([Label::ONE, Label::TWO]);
        let g = GreenGraph::di(Arc::clone(&space));
        let (_, _, found2) = t.chase_until_12(&g, &ChaseBudget::stages(10));
        assert_eq!(found2, expect, "level 2");

        // Level 1: red spider from H(I, a, b).
        let pre = precompile(&t);
        let ctx = Arc::new(SwarmContext::with_s(pre.s));
        let sys = L1System::new(pre.rules.clone());
        let (sw, _, _) = Swarm::green_seed(Arc::clone(&ctx));
        let (_, _, found1) = sys.chase_until_red(&sw, &ChaseBudget::stages(16));
        assert_eq!(found1, expect, "level 1");

        // Level 0: the oracle on the compiled CQfDP instance.
        let inst = reduce_l2(&t);
        let oracle = DeterminacyOracle::from_greenred(inst.spider_ctx.greenred().clone());
        let verdict = oracle.try_certify(&inst.queries, &inst.q0, 12).unwrap();
        assert_eq!(verdict.is_determined(), expect, "level 0 oracle");
    }
}

/// The rainworm reduction is deterministic and its stats formula holds for
/// several machines.
#[test]
fn reduction_statistics_are_structural() {
    for delta in [forever_worm(), counter_worm(1), counter_worm(3)] {
        let inst = reduce(&delta);
        // T_M∆ = 2 fixed + (|∆| − 1) rules; plus the 41 grid rules.
        assert_eq!(inst.stats.l2_rules, 2 + delta.len() - 1 + 41);
        assert_eq!(inst.stats.l1_rules, 3 + 2 * inst.stats.l2_rules);
        assert_eq!(inst.stats.queries, inst.stats.l1_rules);
        // Larger machines, larger instances.
        assert!(inst.stats.s as usize >= 2 * (inst.stats.l2_rules + 1) + 2);
        // Q0 mentions the whole spider: 1 + 4s atoms.
        assert_eq!(inst.q0.body.len(), 1 + 4 * inst.stats.s as usize);
    }
}

/// Monotonicity of the reduction in the machine: a bigger worm yields a
/// bigger instance.
#[test]
fn reduction_grows_with_the_machine() {
    let small = reduce(&counter_worm(1));
    let large = reduce(&counter_worm(4));
    assert!(large.stats.l2_rules > small.stats.l2_rules);
    assert!(large.stats.queries > small.stats.queries);
    assert!(large.stats.total_atoms > small.stats.total_atoms);
    assert!(large.stats.s > small.stats.s);
}

/// The instance queries survive a textual round trip (they are ordinary
/// CQs over an ordinary signature — nothing exotic is smuggled in).
#[test]
fn instance_queries_round_trip_through_text() {
    let inst = reduce_l2(&L2System::new(vec![L2Rule::antenna(
        Label::Empty,
        Label::Empty,
        Label::ONE,
        Label::TWO,
    )]));
    let sig = inst.spider_ctx.base();
    for q in inst.queries.iter().take(3) {
        let shown = format!("{}", q.display_with(sig));
        let parsed = cqfd::core::Cq::parse(sig, &shown).unwrap();
        assert!(parsed.equivalent_to(q, sig), "{}", q.name);
    }
}
