//! Smoke tests for the `cqfd` CLI binary.

use std::process::Command;

fn cqfd(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cqfd"))
        .args(args)
        .output()
        .expect("run cqfd");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn determine_certifies_join() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2,S/2",
        "--view",
        "V1(x,y) :- R(x,y)",
        "--view",
        "V2(x,y) :- S(x,y)",
        "--query",
        "Q0(x,z) :- R(x,y), S(y,z)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("DETERMINED"), "{text}");
}

#[test]
fn determine_refutes_projection_with_witness() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2",
        "--view",
        "V(x) :- R(x,y)",
        "--query",
        "Q0(x,y) :- R(x,y)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("NOT determined"), "{text}");
    assert!(text.contains("counter-example"), "{text}");
}

#[test]
fn rewrite_finds_composition() {
    let (ok, text) = cqfd(&[
        "rewrite",
        "--sig",
        "R/2",
        "--view",
        "V(x,z) :- R(x,y), R(y,z)",
        "--query",
        "Q0(a,e) :- R(a,b), R(b,c), R(c,d), R(d,e)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("CQ rewriting exists"), "{text}");
}

#[test]
fn creep_and_emit_round_trip() {
    let (ok, text) = cqfd(&["creep", "--worm", "counter:2"]);
    assert!(ok, "{text}");
    assert!(text.contains("HALTED after k_M = 43"), "{text}");
    let (ok, emitted) = cqfd(&["creep", "--worm", "counter:2", "--emit"]);
    assert!(ok);
    // Feed the emitted worm back through a temp file.
    let path = std::env::temp_dir().join("cqfd_cli_worm_test.txt");
    std::fs::write(&path, &emitted).unwrap();
    let spec = format!("file:{}", path.display());
    let (ok, text) = cqfd(&["creep", "--worm", &spec]);
    assert!(ok, "{text}");
    assert!(text.contains("HALTED after k_M = 43"), "{text}");
}

#[test]
fn reduce_reports_instance_sizes() {
    let (ok, text) = cqfd(&["reduce", "--worm", "forever"]);
    assert!(ok, "{text}");
    assert!(text.contains("conjunctive queries"), "{text}");
    assert!(text.contains("creeps forever"), "{text}");
}

#[test]
fn separate_demonstrates_theorem14() {
    let (ok, text) = cqfd(&["separate"]);
    assert!(ok, "{text}");
    assert!(text.contains("1-2 pattern: false"), "{text}");
    assert!(text.contains("1-2 pattern: true"), "{text}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, text) = cqfd(&["determine", "--sig", "R/notanumber"]);
    assert!(!ok);
    assert!(text.contains("error"), "{text}");
    let (ok, _) = cqfd(&["frobnicate"]);
    assert!(!ok);
}
