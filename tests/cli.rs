//! Smoke tests for the `cqfd` CLI binary.

use std::process::Command;

fn cqfd(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cqfd"))
        .args(args)
        .output()
        .expect("run cqfd");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn determine_certifies_join() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2,S/2",
        "--view",
        "V1(x,y) :- R(x,y)",
        "--view",
        "V2(x,y) :- S(x,y)",
        "--query",
        "Q0(x,z) :- R(x,y), S(y,z)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("DETERMINED"), "{text}");
}

#[test]
fn determine_refutes_projection_with_witness() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2",
        "--view",
        "V(x) :- R(x,y)",
        "--query",
        "Q0(x,y) :- R(x,y)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("NOT determined"), "{text}");
    assert!(text.contains("counter-example"), "{text}");
}

#[test]
fn rewrite_finds_composition() {
    let (ok, text) = cqfd(&[
        "rewrite",
        "--sig",
        "R/2",
        "--view",
        "V(x,z) :- R(x,y), R(y,z)",
        "--query",
        "Q0(a,e) :- R(a,b), R(b,c), R(c,d), R(d,e)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("CQ rewriting exists"), "{text}");
}

#[test]
fn creep_and_emit_round_trip() {
    let (ok, text) = cqfd(&["creep", "--worm", "counter:2"]);
    assert!(ok, "{text}");
    assert!(text.contains("HALTED after k_M = 43"), "{text}");
    let (ok, emitted) = cqfd(&["creep", "--worm", "counter:2", "--emit"]);
    assert!(ok);
    // Feed the emitted worm back through a temp file.
    let path = std::env::temp_dir().join("cqfd_cli_worm_test.txt");
    std::fs::write(&path, &emitted).unwrap();
    let spec = format!("file:{}", path.display());
    let (ok, text) = cqfd(&["creep", "--worm", &spec]);
    assert!(ok, "{text}");
    assert!(text.contains("HALTED after k_M = 43"), "{text}");
}

#[test]
fn reduce_reports_instance_sizes() {
    let (ok, text) = cqfd(&["reduce", "--worm", "forever"]);
    assert!(ok, "{text}");
    assert!(text.contains("conjunctive queries"), "{text}");
    assert!(text.contains("creeps forever"), "{text}");
}

#[test]
fn separate_demonstrates_theorem14() {
    let (ok, text) = cqfd(&["separate"]);
    assert!(ok, "{text}");
    assert!(text.contains("1-2 pattern: false"), "{text}");
    assert!(text.contains("1-2 pattern: true"), "{text}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, text) = cqfd(&["determine", "--sig", "R/notanumber"]);
    assert!(!ok);
    assert!(text.contains("error"), "{text}");
    let (ok, _) = cqfd(&["frobnicate"]);
    assert!(!ok);
}

#[test]
fn unknown_flags_are_rejected() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2",
        "--view",
        "V(x,y) :- R(x,y)",
        "--query",
        "Q0(x,y) :- R(x,y)",
        "--frobnicate",
        "3",
    ]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
    let (ok, text) = cqfd(&["creep", "--worm", "short", "--stages", "3"]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
}

#[test]
fn determine_prints_metrics() {
    let (ok, text) = cqfd(&[
        "determine",
        "--sig",
        "R/2",
        "--view",
        "V(x,y) :- R(x,y)",
        "--query",
        "Q0(x,y) :- R(x,y)",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("metrics: stages="), "{text}");
    assert!(text.contains("elapsed_ms="), "{text}");
}

#[test]
fn batch_runs_a_mixed_jobs_file() {
    let jobs = "\
# a mixed workload
determine instance=path:2x3 stages=48
determine instance=projection
creep worm=counter:2
creep worm=forever steps=max timeout-ms=1000
separate stages=80
";
    let path = std::env::temp_dir().join("cqfd_cli_batch_test.txt");
    std::fs::write(&path, jobs).unwrap();
    let (ok, text) = cqfd(&["batch", path.to_str().unwrap(), "--workers", "4"]);
    assert!(ok, "{text}");
    assert!(
        text.contains("job=1 kind=determine verdict=determined"),
        "{text}"
    );
    assert!(
        text.contains("job=2 kind=determine verdict=not-determined"),
        "{text}"
    );
    assert!(text.contains("job=3 kind=creep verdict=halted"), "{text}");
    assert!(
        text.contains("job=4 kind=creep verdict=budget-exceeded detail=deadline"),
        "{text}"
    );
    assert!(
        text.contains("job=5 kind=separate verdict=separated di_pattern=false lasso_pattern=true"),
        "{text}"
    );
}

#[test]
fn batch_rejects_bad_job_files() {
    let path = std::env::temp_dir().join("cqfd_cli_batch_bad_test.txt");
    std::fs::write(&path, "creep worm=short\nfrobnicate x=1\n").unwrap();
    let (ok, text) = cqfd(&["batch", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("line 2"), "{text}");
}

/// Every built-in rule-set family lints clean of error diagnostics. The
/// Theorem 14 rules are deliberately non-terminating, so a warn-severity
/// A100 (not weakly acyclic, with a cycle witness) is expected there —
/// what matters is that `lint` still exits zero.
#[test]
fn lint_accepts_every_builtin_family() {
    for target in [
        "theorem14",
        "worm:forever",
        "worm:short",
        "worm:counter:2",
        "worm:tm-walker:2",
    ] {
        let (ok, text) = cqfd(&["lint", target]);
        assert!(ok, "{target}: {text}");
        assert!(text.contains("0 error(s)"), "{target}: {text}");
    }
    let (ok, text) = cqfd(&["lint", "theorem14"]);
    assert!(ok, "{text}");
    assert!(text.contains("warn[A100]"), "{text}");
    assert!(text.contains("~>"), "cycle witness expected: {text}");
}

/// A deliberately broken rules file — an arity mismatch and an unsafe
/// head variable — fails with a nonzero exit and diagnostics naming the
/// rule, the variable, and the codes.
#[test]
fn lint_rejects_a_broken_rules_file_naming_the_culprits() {
    let rules = "\
sig R/2 S/2
tgd grow: R(x,y) -> S(y,z)
tgd bad: R(x,y,q) -> S(x,y)
cq V(x,w) :- R(x,y)
";
    let path = std::env::temp_dir().join("cqfd_cli_lint_broken.rules");
    std::fs::write(&path, rules).unwrap();
    let (ok, text) = cqfd(&["lint", path.to_str().unwrap()]);
    assert!(!ok, "broken rules must fail: {text}");
    assert!(text.contains("error[A010]"), "{text}");
    assert!(text.contains("`bad`"), "{text}");
    assert!(text.contains("error[A001]"), "{text}");
    assert!(text.contains("`w`"), "{text}");
    assert!(text.contains("2 error diagnostics"), "{text}");

    // `--json` renders the same diagnostics as structured output.
    let (ok, text) = cqfd(&["lint", path.to_str().unwrap(), "--json"]);
    assert!(!ok);
    assert!(text.contains("\"code\":\"A010\""), "{text}");
    assert!(text.contains("\"severity\":\"error\""), "{text}");
}

/// `lint=1` on a batch job line ships the diagnostics report behind a
/// `lint_lines=` marker, and the verdict line stamps the chase-termination
/// verdict.
#[test]
fn batch_lint_flag_ships_report_and_termination() {
    let path = std::env::temp_dir().join("cqfd_cli_batch_lint.txt");
    std::fs::write(&path, "determine instance=projection lint=1\n").unwrap();
    let (ok, text) = cqfd(&["batch", path.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains(" lint_lines="), "{text}");
    assert!(text.contains("cqfd-lint v1"), "{text}");
    assert!(text.contains(" termination="), "{text}");
}

/// `certify <kind>` writes a certificate file and `check` validates it —
/// one round trip per verdict kind, all through the real binary.
#[test]
fn certify_then_check_round_trips_every_kind() {
    let dir = std::env::temp_dir();
    let cases: &[(&str, Vec<&str>)] = &[
        (
            "determined.cert",
            vec![
                "certify",
                "determine",
                "--sig",
                "R/2,S/2",
                "--view",
                "V1(x,y) :- R(x,y)",
                "--view",
                "V2(x,y) :- S(x,y)",
                "--query",
                "Q0(x,z) :- R(x,y), S(y,z)",
            ],
        ),
        (
            "refuted.cert",
            vec![
                "certify",
                "determine",
                "--sig",
                "R/2",
                "--view",
                "V(x) :- R(x,y)",
                "--query",
                "Q0(x,y) :- R(x,y)",
            ],
        ),
        ("separation.cert", vec!["certify", "separate"]),
        ("creep.cert", vec!["certify", "creep", "--worm", "short"]),
        (
            "countermodel.cert",
            vec!["certify", "countermodel", "--worm", "short"],
        ),
    ];
    for (file, args) in cases {
        let path = dir.join(format!("cqfd_cli_{file}"));
        let mut args = args.clone();
        let path_str = path.to_str().unwrap().to_owned();
        args.extend(["--out", &path_str]);
        let (ok, text) = cqfd(&args);
        assert!(ok, "certify {file}: {text}");
        let (ok, text) = cqfd(&["check", &path_str]);
        assert!(ok, "check {file}: {text}");
        assert!(text.starts_with("OK:"), "{file}: {text}");
    }
}

/// A tampered certificate is rejected with a nonzero exit: forging the
/// pattern witness to point at the constant nodes invalidates the claim.
#[test]
fn check_rejects_a_mutated_certificate() {
    let path = std::env::temp_dir().join("cqfd_cli_mutated.cert");
    let path_str = path.to_str().unwrap().to_owned();
    let (ok, _) = cqfd(&["certify", "separate", "--out", &path_str]);
    assert!(ok);
    let text = std::fs::read_to_string(&path).unwrap();
    let mutated: Vec<String> = text
        .lines()
        .map(|l| {
            if l.starts_with("witness ") {
                "witness v0=0 v1=0 v2=0".to_owned()
            } else {
                l.to_owned()
            }
        })
        .collect();
    assert_ne!(mutated.join("\n") + "\n", text, "a witness was forged");
    std::fs::write(&path, mutated.join("\n") + "\n").unwrap();
    let (ok, text) = cqfd(&["check", &path_str]);
    assert!(!ok, "mutated certificate must be rejected, got: {text}");
    assert!(
        text.contains("REJECTED") || text.contains("error"),
        "{text}"
    );
}

/// `cqfd metrics <jobs-file>` runs the jobs and dumps a Prometheus scrape
/// whose families cover the chase, the hom search, and the pool.
#[test]
fn metrics_subcommand_dumps_prometheus_text() {
    let path = std::env::temp_dir().join("cqfd_cli_metrics_jobs.txt");
    std::fs::write(&path, "creep worm=short\ndetermine instance=projection\n").unwrap();
    let (ok, text) = cqfd(&["metrics", path.to_str().unwrap()]);
    assert!(ok, "{text}");
    for family in [
        "# TYPE cqfd_chase_run_seconds histogram",
        "# TYPE cqfd_hom_search_nodes_total counter",
        "# TYPE cqfd_pool_jobs_total counter",
        "cqfd_pool_jobs_total{kind=\"creep\",verdict=\"halted\"} 1",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
}

/// `cqfd profile` without `--connect` drives the Theorem 14 lasso chase
/// (the paper's Fig. 3) under the sampler. Acceptance: the folded stacks
/// name the chase spans, and the attribution report is internally
/// consistent — the top-ranked TGD carries the highest trigger count.
#[test]
fn profile_subcommand_samples_and_attributes_the_lasso_chase() {
    let (ok, text) = cqfd(&["profile", "--seconds", "1", "--hz", "60"]);
    assert!(ok, "{text}");
    assert!(text.contains("# folded stacks"), "{text}");
    assert!(text.contains("chase.stage"), "{text}");
    assert!(text.contains("# cqfd cost attribution"), "{text}");
    assert!(text.contains("totals: stages="), "{text}");

    // Parse the `## rules` section and check the ranking invariant.
    let rules: Vec<u64> = text
        .lines()
        .skip_while(|l| !l.starts_with("## rules"))
        .skip(1)
        .take_while(|l| !l.starts_with("##"))
        .filter_map(|l| {
            l.split_whitespace()
                .find_map(|t| t.strip_prefix("triggers="))
                .map(|v| v.parse().expect("triggers count"))
        })
        .collect();
    assert!(!rules.is_empty(), "no ranked rules in:\n{text}");
    let top = rules[0];
    assert!(
        rules.iter().all(|&t| t <= top),
        "top-ranked TGD does not carry the highest trigger count: {rules:?}"
    );
    assert!(top > 0, "{text}");
}

/// `cqfd profile` and `cqfd flight` validate their arguments.
#[test]
fn profile_and_flight_reject_bad_arguments() {
    let (ok, text) = cqfd(&["profile", "--seconds", "0"]);
    assert!(!ok);
    assert!(text.contains("--seconds"), "{text}");
    let (ok, text) = cqfd(&["profile", "--hz", "9999"]);
    assert!(!ok);
    assert!(text.contains("--hz"), "{text}");
    let (ok, text) = cqfd(&["flight", "--bogus", "1"]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
}

/// `cqfd flight <jobs-file>` runs the jobs and dumps the black-box ring
/// as parseable JSONL trace records.
#[test]
fn flight_subcommand_dumps_jsonl_after_a_local_run() {
    let path = std::env::temp_dir().join("cqfd_cli_flight_jobs.txt");
    std::fs::write(&path, "determine instance=projection\n").unwrap();
    let (ok, text) = cqfd(&["flight", path.to_str().unwrap()]);
    assert!(ok, "{text}");
    let dump: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!dump.is_empty(), "flight ring empty after a job:\n{text}");
    for line in &dump {
        assert!(line.contains("\"seq\""), "not a trace record: {line}");
        assert!(line.contains("\"type\""), "not a trace record: {line}");
    }
}
