//! Integration: a library of determinacy instances cross-validated
//! between the chase oracle and the finite counter-example search, plus
//! metamorphic invariances.

use cqfd::core::{Cq, Signature};
use cqfd::greenred::{search_counterexample, DeterminacyOracle, Verdict};

fn sig_rs() -> Signature {
    let mut s = Signature::new();
    s.add_predicate("R", 2);
    s.add_predicate("S", 2);
    s
}

struct Case {
    name: &'static str,
    views: Vec<&'static str>,
    q0: &'static str,
    determined: bool,
}

fn suite() -> Vec<Case> {
    vec![
        Case {
            name: "identity",
            views: vec!["V(x,y) :- R(x,y)"],
            q0: "Q0(x,y) :- R(x,y)",
            determined: true,
        },
        Case {
            name: "join-of-bases",
            views: vec!["V1(x,y) :- R(x,y)", "V2(x,y) :- S(x,y)"],
            q0: "Q0(x,z) :- R(x,y), S(y,z)",
            determined: true,
        },
        Case {
            name: "query-equals-view",
            views: vec!["V(x,z) :- R(x,y), R(y,z)"],
            q0: "Q0(a,c) :- R(a,b), R(b,c)",
            determined: true,
        },
        Case {
            name: "reversal",
            views: vec!["V(x,y) :- R(y,x)"],
            q0: "Q0(x,y) :- R(x,y)",
            determined: true,
        },
        Case {
            name: "boolean-from-binary",
            views: vec!["V(x,y) :- R(x,y)"],
            q0: "Q0() :- R(x,x)",
            determined: true,
        },
        Case {
            name: "projection-loses-target",
            views: vec!["V(x) :- R(x,y)"],
            q0: "Q0(x,y) :- R(x,y)",
            determined: false,
        },
        Case {
            name: "unrelated-relation",
            views: vec!["V(x,y) :- S(x,y)"],
            q0: "Q0(x,y) :- R(x,y)",
            determined: false,
        },
        Case {
            name: "boolean-views-lose-tuples",
            views: vec!["V() :- R(x,y)"],
            q0: "Q0(x,y) :- R(x,y)",
            determined: false,
        },
    ]
}

/// Every positive case is certified by the chase; every negative case has
/// a small finite counter-example (so non-determinacy is *witnessed*, not
/// merely suspected).
#[test]
fn oracle_and_search_agree_on_the_suite() {
    let sig = sig_rs();
    let oracle = DeterminacyOracle::new(sig.clone());
    for case in suite() {
        let views: Vec<Cq> = case
            .views
            .iter()
            .map(|v| Cq::parse(&sig, v).unwrap())
            .collect();
        let q0 = Cq::parse(&sig, case.q0).unwrap();
        let verdict = oracle.try_certify(&views, &q0, 24).unwrap();
        assert_eq!(
            verdict.is_determined(),
            case.determined,
            "{}: oracle said {verdict:?}",
            case.name
        );
        if !case.determined {
            let witness = search_counterexample(&oracle, &views, &q0, 3);
            assert!(
                witness.is_some(),
                "{}: negative case needs a finite witness",
                case.name
            );
        }
    }
}

/// Metamorphic: adding more views never destroys determinacy.
#[test]
fn adding_views_preserves_determinacy() {
    let sig = sig_rs();
    let oracle = DeterminacyOracle::new(sig.clone());
    let v = Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap();
    let extra = Cq::parse(&sig, "W(x) :- S(x,y)").unwrap();
    let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
    let base = oracle
        .try_certify(std::slice::from_ref(&v), &q0, 16)
        .unwrap();
    let more = oracle.try_certify(&[v, extra], &q0, 16).unwrap();
    assert!(base.is_determined());
    assert!(more.is_determined());
}

/// Metamorphic: determinacy is invariant under renaming the view's head
/// and reordering body atoms.
#[test]
fn determinacy_is_syntactic_noise_invariant() {
    let sig = sig_rs();
    let oracle = DeterminacyOracle::new(sig.clone());
    let q0 = Cq::parse(&sig, "Q0(x,z) :- R(x,y), S(y,z)").unwrap();
    let variants = [
        vec!["V1(x,y) :- R(x,y)", "V2(x,y) :- S(x,y)"],
        vec!["Zed(p,q) :- R(p,q)", "Wye(u,v) :- S(u,v)"],
        vec!["V2(x,y) :- S(x,y)", "V1(x,y) :- R(x,y)"],
    ];
    for views in variants {
        let views: Vec<Cq> = views.iter().map(|v| Cq::parse(&sig, v).unwrap()).collect();
        let verdict = oracle.try_certify(&views, &q0, 16).unwrap();
        assert!(verdict.is_determined());
    }
}

/// The verdicts carry their evidence: a `Determined` stage really is the
/// first stage at which red(Q0) holds.
#[test]
fn certificate_stage_is_minimal() {
    let sig = sig_rs();
    let oracle = DeterminacyOracle::new(sig.clone());
    let v = Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap();
    let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
    match oracle
        .try_certify(std::slice::from_ref(&v), &q0, 16)
        .unwrap()
    {
        Verdict::Determined { stage } => {
            let (run, tuple) =
                oracle.chase_instance(&[v], &q0, &cqfd::chase::ChaseBudget::stages(stage));
            // At the certified stage red(Q0) holds…
            let red = oracle.colored_query(cqfd::greenred::Color::Red, &q0);
            assert!(red.holds(&run.structure, &tuple));
            // …and at stage - 1 it does not.
            let prev = run.stage_structure(stage - 1);
            assert!(!red.holds(&prev, &tuple));
        }
        other => panic!("expected Determined, got {other:?}"),
    }
}
