//! Differential fragment-dispatch suite: over randomized project-select,
//! weakly-acyclic and spider-path inputs, `dispatch=auto` (classify and
//! route to a complete decision procedure) and `dispatch=semi` (the plain
//! semi-decision chase) agree on every definite verdict, every emitted
//! certificate passes the trusted `cqfd-cert` checker, and counterexample
//! verdicts are consistent with determine verdicts — at 1, 2 and 4
//! enumeration threads.

use cqfd::core::{CancelToken, Cq, Signature};
use cqfd::greenred::instances;
use cqfd::service::{execute, Dispatch, Job, JobBudget, JobOutcome, JobResult};
use proptest::prelude::*;

fn run_determine(
    sig: &Signature,
    views: &[Cq],
    q0: &Cq,
    threads: usize,
    dispatch: Dispatch,
) -> JobResult {
    let job = Job::Determine {
        sig: sig.clone(),
        views: views.to_vec(),
        q0: q0.clone(),
        budget: JobBudget::default()
            .with_certificate(true)
            .with_threads(threads)
            .with_dispatch(dispatch),
    };
    execute(1, &job, &CancelToken::inert())
}

fn definite(o: &JobOutcome) -> bool {
    matches!(
        o,
        JobOutcome::Determined { .. } | JobOutcome::NotDetermined { .. }
    )
}

/// The shared differential property: classify-and-route vs plain chase.
fn check_differential(
    sig: &Signature,
    views: &[Cq],
    q0: &Cq,
    threads: usize,
) -> Result<(), TestCaseError> {
    let auto = run_determine(sig, views, q0, threads, Dispatch::Auto);
    let semi = run_determine(sig, views, q0, threads, Dispatch::Semi);

    // Every job is classified, and both modes see the same fragment.
    prop_assert!(auto.metrics.fragment.is_some(), "auto stamps a fragment");
    prop_assert_eq!(auto.metrics.fragment, semi.metrics.fragment);
    prop_assert_eq!(semi.metrics.route, Some("semi"));

    // A routed fragment whose cross-check disagreed with the chase would
    // surface as JobOutcome::Error — it must never happen.
    prop_assert!(
        !matches!(auto.outcome, JobOutcome::Error { .. }),
        "dispatch cross-check failed: {:?}",
        auto.outcome
    );

    // Agreement on every definite verdict.
    if definite(&auto.outcome) && definite(&semi.outcome) {
        prop_assert_eq!(&auto.outcome, &semi.outcome);
    }
    // Routing only ever *adds* conclusions: semi definite ⇒ auto definite.
    if definite(&semi.outcome) {
        prop_assert!(definite(&auto.outcome), "auto lost {:?}", semi.outcome);
    }

    // Every certificate passes the trusted checker.
    for (mode, r) in [("auto", &auto), ("semi", &semi)] {
        if let Some(text) = &r.certificate {
            let cert = cqfd::cert::parse(text)
                .map_err(|e| TestCaseError::fail(format!("{mode}: cert parse: {e}")))?;
            prop_assert!(
                cqfd::cert::check(&cert).is_ok(),
                "{}: {} certificate rejected",
                mode,
                cert.kind()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random project-select inputs: every view is a single-atom
    /// projection of the base predicate (the Zhang et al. fragment; a
    /// lone view classifies A300 and routes to `psv`).
    #[test]
    fn project_select_inputs_agree(
        nviews in 1usize..=3,
        masks in proptest::collection::vec(1u8..=3, 3),
        qshape in 0usize..4,
        threads_ix in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        let mut sig = Signature::new();
        sig.add_predicate("S", 2);
        let views: Vec<Cq> = (0..nviews)
            .map(|i| {
                let head = match masks[i] {
                    1 => "x",
                    2 => "y",
                    _ => "x,y",
                };
                Cq::parse(&sig, &format!("V{i}({head}) :- S(x,y)")).unwrap()
            })
            .collect();
        let q = [
            "Q(x,y) :- S(x,y)",
            "Q(x) :- S(x,y)",
            "Q(y) :- S(x,y)",
            "Q(x,z) :- S(x,y), S(y,z)",
        ][qshape];
        let q0 = Cq::parse(&sig, q).unwrap();
        check_differential(&sig, &views, &q0, threads)?;
    }

    /// Random weakly-acyclic inputs: multi-atom views whose heads expose
    /// every body variable, so neither tgd direction has an existential —
    /// trivially weakly acyclic (A301, total-chase route) without being
    /// project-select.
    #[test]
    fn weakly_acyclic_inputs_agree(
        vshape in 0usize..3,
        qshape in 0usize..4,
        threads_ix in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        let mut sig = Signature::new();
        sig.add_predicate("R", 2);
        sig.add_predicate("S", 2);
        let v = [
            "V(x,y) :- R(x,y), S(y,x)",
            "V(x,y,z) :- R(x,y), S(y,z)",
            "V(x,y,z) :- R(x,y), R(y,z)",
        ][vshape];
        let views = vec![Cq::parse(&sig, v).unwrap()];
        let q = [
            "Q(x,y) :- R(x,y)",
            "Q(x,z) :- R(x,y), S(y,z)",
            "Q(x) :- R(x,y), S(y,x)",
            "Q(x,z) :- R(x,y), R(y,z)",
        ][qshape];
        let q0 = Cq::parse(&sig, q).unwrap();
        check_differential(&sig, &views, &q0, threads)?;
    }

    /// The path families: m=1 is project-select (A300), m≥2 is the
    /// spider fragment (A302, divisibility cross-check); composed
    /// instances are determined, mismatched ones are not.
    #[test]
    fn path_family_inputs_agree(
        m in 1usize..=3,
        k in 1usize..=6,
        composed in any::<bool>(),
        threads_ix in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        let inst = if composed {
            instances::composed_path_instance(m, k)
        } else {
            // The mismatched family wants m ≥ 2 and m ∤ k.
            let m = m.max(2);
            if k.is_multiple_of(m) {
                return Ok(()); // not in the family; skip this case
            }
            instances::mismatched_path_instance(m, k)
        };
        check_differential(&inst.sig, &inst.views, &inst.q0, threads)?;
    }

    /// Cross-job consistency: whenever the auto counterexample search
    /// produces a (cert-checked) finite counter-model, the determine job
    /// on the same input concludes not-determined in both modes.
    #[test]
    fn counterexamples_refute_determinacy(
        m in 2usize..=3,
        k in 2usize..=6,
        threads_ix in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_ix];
        if k.is_multiple_of(m) {
            return Ok(()); // not in the mismatched family; skip
        }
        let inst = instances::mismatched_path_instance(m, k);
        let cx = Job::CounterexampleSearch {
            sig: inst.sig.clone(),
            views: inst.views.clone(),
            q0: inst.q0.clone(),
            budget: JobBudget::default()
                .with_certificate(true)
                .with_threads(threads)
                .with_dispatch(Dispatch::Auto),
        };
        let found = execute(1, &cx, &CancelToken::inert());
        if let JobOutcome::CounterexampleFound { .. } = found.outcome {
            let cert = cqfd::cert::parse(found.certificate.as_deref().unwrap())
                .map_err(TestCaseError::fail)?;
            prop_assert!(cqfd::cert::check(&cert).is_ok());
            for d in [Dispatch::Auto, Dispatch::Semi] {
                let r = run_determine(&inst.sig, &inst.views, &inst.q0, threads, d);
                prop_assert!(
                    matches!(r.outcome, JobOutcome::NotDetermined { .. }),
                    "{:?}",
                    r.outcome
                );
            }
        }
    }
}
