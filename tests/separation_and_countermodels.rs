//! Integration: Theorem 14 and the §VIII.E counter-models, across the
//! separating, rainworm and greengraph crates.

use cqfd::chase::ChaseBudget;
use cqfd::greengraph::Label;
use cqfd::rainworm::countermodel::build_countermodel;
use cqfd::rainworm::families::{counter_worm, forever_worm, halting_worm_short};
use cqfd::rainworm::run::{creep, CreepOutcome};
use cqfd::rainworm::to_rules::tm_rules;
use cqfd::separating::grid::{t_square, t_square_as_printed};
use cqfd::separating::theorem14::{chase_from_di, chase_from_lasso, separating_space};
use cqfd::separating::tinf::{lasso_model, t_infinity};

/// Theorem 14, the two halves side by side.
#[test]
fn theorem14_separation() {
    let (_, _, found_di) = chase_from_di(10);
    assert!(!found_di, "unrestricted side: no 1-2 pattern from DI");
    let (_, _, found_lasso) = chase_from_lasso(3, 1, 60);
    assert!(found_lasso, "finite side: the folded model is fatal");
}

/// The ablation across crates: the literal (unrepaired) grid rules break
/// the finite side but leave the unrestricted side intact.
#[test]
fn printed_rules_break_only_the_finite_side() {
    let literal = t_infinity().union(&t_square_as_printed());
    let g = cqfd::greengraph::GreenGraph::di(separating_space());
    let budget = ChaseBudget {
        max_stages: 10,
        max_atoms: 1 << 20,
        max_nodes: 1 << 20,
        ..ChaseBudget::default()
    };
    let (_, _, found_di) = literal.chase_until_12(&g, &budget);
    assert!(!found_di);
    let lasso = lasso_model(separating_space(), 3, 1);
    let (out, _, found_lasso) = literal.chase_until_12(&lasso, &budget);
    assert!(!found_lasso, "the typo kills the 1-2 pattern");
    assert_eq!(out.edges_with(Label::ONE).count(), 0);
}

/// §VIII.E counter-models for every halting family member: finite, model
/// of everything, pattern-free. This is the executable content of the
/// "⇐" direction of Lemma 24.
#[test]
fn countermodels_for_halting_worms() {
    for delta in [halting_worm_short(), counter_worm(1), counter_worm(2)] {
        let cm = build_countermodel(&delta, &t_square(), 200_000).unwrap();
        let tm = tm_rules(&delta);
        assert!(tm.is_model(&cm.m_hat));
        assert!(t_square().is_model(&cm.m_hat));
        assert!(!cm.m_hat.has_12_pattern());
        assert!(cm.m_hat.contains_green_spider());
        // The counter-model scales with the worm's halting time.
        match creep(&delta, 200_000) {
            CreepOutcome::Halted { steps, .. } => assert_eq!(steps, cm.k_m),
            _ => unreachable!(),
        }
    }
}

/// Counter-model size grows with `k_M` — the E-VIIIE series.
#[test]
fn countermodel_size_scales() {
    let cm1 = build_countermodel(&counter_worm(1), &t_square(), 200_000).unwrap();
    let cm2 = build_countermodel(&counter_worm(3), &t_square(), 200_000).unwrap();
    assert!(cm2.k_m > cm1.k_m);
    assert!(cm2.m.edge_count() > cm1.m.edge_count());
    assert!(cm2.m_hat.edge_count() > cm1.m_hat.edge_count());
}

/// Conversely, the non-halting worm's rule set drives the lasso into the
/// 1-2 pattern — the "⇒" direction on a concrete finite model candidate.
#[test]
fn forever_worm_rules_doom_finite_models() {
    let delta = forever_worm();
    let tm = tm_rules(&delta);
    let full = tm.union(&t_square());
    // A finite model of T_M∆ containing DI would have to contain the
    // folded slime; chasing the T∞-style lasso approximates that fold.
    // (The lasso is not a model of T_M∆, but the grid machinery only needs
    // the folded αβ-path, which the lasso provides.)
    let mut labels = full.labels();
    labels.extend([Label::ONE, Label::TWO]);
    let space = std::sync::Arc::new(cqfd::greengraph::LabelSpace::new(labels));
    let lasso = lasso_model(space, 3, 1);
    let budget = ChaseBudget {
        max_stages: 60,
        max_atoms: 1 << 21,
        max_nodes: 1 << 21,
        ..ChaseBudget::default()
    };
    let (_, _, found) = full.chase_until_12(&lasso, &budget);
    assert!(found, "the folded slime trail must develop the 1-2 pattern");
}
