//! Writes Graphviz renderings of the paper's figures to `target/figures/`.
//!
//! ```text
//! cargo run --release --example visualize
//! dot -Tpdf target/figures/fig1_chase_tinf.dot -o fig1.pdf   # if graphviz is installed
//! ```

use cqfd::chase::ChaseBudget;
use cqfd::greengraph::dot::to_dot;
use cqfd::greengraph::GreenGraph;
use cqfd::rainworm::countermodel::build_countermodel;
use cqfd::rainworm::families::counter_worm;
use cqfd::separating::grid::t_square;
use cqfd::separating::theorem14::{chase_from_lasso, separating_space, t_separating};
use cqfd::separating::tinf::{alpha_beta_chase_graph, t_infinity};
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, dot: &str) {
    let path = dir.join(name);
    fs::write(&path, dot).expect("write dot file");
    println!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("target/figures");
    fs::create_dir_all(dir).expect("create target/figures");
    let budget = ChaseBudget {
        max_stages: 9,
        max_atoms: 1 << 20,
        max_nodes: 1 << 20,
        ..ChaseBudget::default()
    };

    // Figure 1: the chase of T∞.
    let (fig1, _) = t_infinity().chase(&GreenGraph::di(separating_space()), &budget);
    write(
        dir,
        "fig1_chase_tinf.dot",
        &to_dot(&fig1, "Figure 1: chase(T∞, DI)"),
    );

    // Figure 4: harmless diagonal grids over an unfolded prefix.
    let (prefix, _, _) = alpha_beta_chase_graph(separating_space(), 3);
    let (fig4, _, _) = t_square().chase_until_12(
        &prefix,
        &ChaseBudget {
            max_stages: 200,
            max_atoms: 1 << 20,
            max_nodes: 1 << 20,
            ..ChaseBudget::default()
        },
    );
    write(
        dir,
        "fig4_harmless_grids.dot",
        &to_dot(&fig4, "Figure 4: grids M_t"),
    );

    // Figures 2–3: the fatal grid over a folded path (stopped at the
    // 1-2 pattern).
    let (fig3, _, found) = chase_from_lasso(3, 1, 60);
    assert!(found);
    write(
        dir,
        "fig3_fatal_grid.dot",
        &to_dot(
            &fig3,
            "Figures 2-3: grid over a folded path (contains the 1-2 pattern)",
        ),
    );

    // A §VIII.E counter-model.
    let cm = build_countermodel(&counter_worm(1), &t_square(), 100_000).unwrap();
    write(
        dir,
        "viiie_countermodel.dot",
        &to_dot(&cm.m_hat, "§VIII.E: finite counter-model M̂"),
    );

    println!(
        "\n{} rules in T; render with `dot -Tpdf <file> -o out.pdf`",
        t_separating().rules().len()
    );
}
