//! Privacy through views: checking that published views do **not**
//! determine a secret query.
//!
//! ```text
//! cargo run --example privacy_views
//! ```
//!
//! The paper's introduction mentions the flip side of determinacy:
//! "we would like to release some views of the database, but in a way
//! that does not allow certain query to be computed." This example plays a
//! data officer at a clinic deciding which views of
//!
//! ```text
//! Visit(patient, doctor)      Dept(doctor, department)
//! ```
//!
//! are safe to publish when the *secret* is which patient visits which
//! department.

use cqfd::core::{Cq, Signature};
use cqfd::greenred::{is_counterexample, search_counterexample, DeterminacyOracle, Verdict};

fn main() {
    let mut sig = Signature::new();
    sig.add_predicate("Visit", 2);
    sig.add_predicate("Dept", 2);
    let oracle = DeterminacyOracle::new(sig.clone());

    // The secret: Q0(p, dep) — patient p visits a doctor of department dep.
    let secret = Cq::parse(&sig, "Secret(p,dep) :- Visit(p,d), Dept(d,dep)").unwrap();

    println!("== Proposal 1: publish both base tables ==");
    let v1 = Cq::parse(&sig, "V1(p,d) :- Visit(p,d)").unwrap();
    let v2 = Cq::parse(&sig, "V2(d,dep) :- Dept(d,dep)").unwrap();
    match oracle.try_certify(&[v1, v2], &secret, 16).unwrap() {
        Verdict::Determined { stage } => {
            println!("   LEAKS: views determine the secret (chase stage {stage}).")
        }
        other => println!("   unexpected: {other:?}"),
    }

    println!("\n== Proposal 2: publish patient–department pairs only via doctors seen twice ==");
    // V(p, dep) is released only for doctors with at least two patients —
    // modelled here as the join through two visits.
    let v = Cq::parse(&sig, "V(p,q,dep) :- Visit(p,d), Visit(q,d), Dept(d,dep)").unwrap();
    match oracle
        .try_certify(std::slice::from_ref(&v), &secret, 12)
        .unwrap()
    {
        Verdict::Determined { stage } => {
            println!("   LEAKS anyway (chase stage {stage}): the self-join p = q");
            println!("   re-exposes every patient–department pair — aggregation by");
            println!("   pairing does not anonymize.");
        }
        other => println!("   verdict: {other:?}"),
    }

    println!("\n== Proposal 3: publish anonymized projections ==");
    // Who visits anyone, and which departments exist — no linkage.
    let v1 = Cq::parse(&sig, "V1(p) :- Visit(p,d)").unwrap();
    let v2 = Cq::parse(&sig, "V2(dep) :- Dept(d,dep)").unwrap();
    match oracle
        .try_certify(&[v1.clone(), v2.clone()], &secret, 12)
        .unwrap()
    {
        Verdict::NotDeterminedUnrestricted { stages } => {
            println!(
                "   SAFE (unrestricted): chase fixpoint after {stages} stages, secret not forced."
            )
        }
        other => println!("   verdict: {other:?}"),
    }
    // Produce a concrete privacy witness: two databases with identical
    // views but different secrets.
    match search_counterexample(&oracle, &[v1.clone(), v2.clone()], &secret, 4) {
        Some(d) => {
            let report = is_counterexample(&oracle, &[v1, v2], &secret, &d);
            println!(
                "   privacy witness found: {} atoms, views agree, secret differs at {:?}",
                d.atom_count(),
                report.witness
            );
        }
        None => println!("   (no small witness found — larger domains would be needed)"),
    }

    println!("\nMoral: deciding this in general is impossible (Theorem 1) —");
    println!("the oracle is a semi-decision procedure, and that is the best any tool can be.");
}
