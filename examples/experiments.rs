//! Regenerates every experiment series reported in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example experiments
//! ```
//!
//! Output is markdown-flavoured so it can be pasted into EXPERIMENTS.md.

use cqfd::chase::ChaseBudget;
use cqfd::core::Cq;
use cqfd::fogames::ef::ef_equivalent;
use cqfd::fogames::theorem2::{attempt1, attempt2_equivalent, chase_world, projection_equalities};
use cqfd::greengraph::pg::words_of;
use cqfd::greengraph::{GreenGraph, LabelSpace};
use cqfd::greenred::{search_counterexample, Color, DeterminacyOracle};
use cqfd::rainworm::countermodel::build_countermodel;
use cqfd::rainworm::encode::tm_to_rainworm;
use cqfd::rainworm::families::{counter_worm, forever_worm, halting_worm_short};
use cqfd::rainworm::run::{creep, CreepOutcome};
use cqfd::rainworm::tm::TuringMachine;
use cqfd::rainworm::to_rules::tm_rules;
use cqfd::reduction::reduce;
use cqfd::separating::theorem14::{chase_from_di, chase_from_lasso, separating_space};
use cqfd::separating::tinf::{t_infinity, tinf_labels};
use cqfd::separating::{t_square, t_square_as_printed};
use cqfd_obs::Stopwatch;
use std::sync::Arc;

fn wide(stages: usize) -> ChaseBudget {
    ChaseBudget {
        max_stages: stages,
        max_atoms: 1 << 22,
        max_nodes: 1 << 22,
        ..ChaseBudget::default()
    }
}

fn main() {
    e_fig1();
    e_fig3();
    e_fig4();
    e_sep();
    e_rw();
    e_tm();
    e_viiie();
    e_red();
    e_det();
    e_fo();
}

fn e_fig1() {
    println!("## E-FIG1 — chase(T∞, DI), the Figure 1 series\n");
    println!("| stages | edges | vertices | words | one application per stage |");
    println!("|---|---|---|---|---|");
    let sys = t_infinity();
    for stages in [4usize, 8, 16, 32] {
        let g = GreenGraph::di(Arc::new(LabelSpace::new(tinf_labels())));
        let (out, run) = sys.chase(&g, &wide(stages));
        let one_per = run.stages.iter().all(|s| s.applications == 1);
        let words = words_of(&out, 2 * stages + 4, 100_000);
        println!(
            "| {stages} | {} | {} | {} | {one_per} |",
            out.edge_count(),
            out.node_count(),
            words.len()
        );
    }
    println!();
}

fn e_fig3() {
    println!("## E-FIG3 / E-SEP — grids over folded paths (Figures 2–3)\n");
    println!("| lasso (n, period) | 1-2 pattern | stages | edges at stop |");
    println!("|---|---|---|---|");
    for (n, p) in [(3usize, 1usize), (4, 1), (4, 2), (5, 2), (5, 3), (6, 2)] {
        let (out, run, found) = chase_from_lasso(n, p, 120);
        println!(
            "| ({n}, {p}) | {found} | {} | {} |",
            run.stage_count(),
            out.edge_count()
        );
    }
    println!("\nE-GRID ablation (rules exactly as printed — the ⟨w⟩/⟨e⟩ typo):\n");
    let literal = t_infinity().union(&t_square_as_printed());
    let lasso = cqfd::separating::tinf::lasso_model(separating_space(), 3, 1);
    let (out, run, found) = literal.chase_until_12(&lasso, &wide(25));
    println!(
        "* lasso(3,1), literal rules: pattern = {found} after {} stages, {} edges, label ⟨n,α,d̄,b̄⟩ count = {}",
        run.stage_count(),
        out.edge_count(),
        out.edges_with(cqfd::greengraph::Label::ONE).count()
    );
    println!();
}

fn e_fig4() {
    println!("## E-FIG4 — harmless diagonal grids M_t (Figure 4)\n");
    println!("| prefix t | path edges | total edges at fixpoint | stages | 1-2 pattern |");
    println!("|---|---|---|---|---|");
    for t in [2usize, 3, 4, 5, 6] {
        let (g, _, _) = cqfd::separating::tinf::alpha_beta_chase_graph(separating_space(), t);
        let before = g.edge_count();
        let (out, run, found) = t_square().chase_until_12(&g, &wide(500));
        println!(
            "| {t} | {before} | {} | {} | {found} |",
            out.edge_count(),
            run.stage_count()
        );
    }
    println!();
}

fn e_sep() {
    println!("## E-SEP — Theorem 14, both halves\n");
    let (_, run, found) = chase_from_di(12);
    println!(
        "* unrestricted: chase(T, DI) for {} stages → 1-2 pattern: {found}",
        run.stage_count()
    );
    let (_, run, found) = chase_from_lasso(3, 1, 60);
    println!(
        "* finite: chase from lasso(3,1) → 1-2 pattern: {found} (after {} stages)",
        run.stage_count()
    );
    println!();
}

fn e_rw() {
    println!("## E-RW — rainworm dynamics (Lemmas 20/22/23)\n");
    println!("| machine | outcome | k_M | |u_M| | slime |");
    println!("|---|---|---|---|---|");
    for (name, d, budget) in [
        ("forever_worm", forever_worm(), 2_000usize),
        ("halting_worm_short", halting_worm_short(), 10_000),
        ("counter_worm(1)", counter_worm(1), 2_000_000),
        ("counter_worm(2)", counter_worm(2), 2_000_000),
        ("counter_worm(4)", counter_worm(4), 2_000_000),
        ("counter_worm(8)", counter_worm(8), 2_000_000),
    ] {
        match creep(&d, budget) {
            CreepOutcome::Halted {
                steps,
                final_config,
            } => println!(
                "| {name} | halts | {steps} | {} | {} |",
                final_config.len(),
                final_config.slime().len()
            ),
            CreepOutcome::StillCreeping { steps, config } => println!(
                "| {name} | creeping after {steps} | — | {} | {} |",
                config.len(),
                config.slime().len()
            ),
        }
    }
    println!();
}

fn e_tm() {
    println!("## E-TM — the TM → rainworm compiler (Lemma 21)\n");
    println!("| TM | TM halts (steps) | ∆ size | worm halts (steps) |");
    println!("|---|---|---|---|");
    let machines: Vec<(String, TuringMachine)> = vec![
        ("right_walker(2)".into(), TuringMachine::right_walker(2)),
        ("right_walker(4)".into(), TuringMachine::right_walker(4)),
        ("zigzag(3)".into(), TuringMachine::zigzag(3)),
        ("forever_right".into(), TuringMachine::forever_right()),
    ];
    for (name, tm) in machines {
        let tm_out = match tm.run(100_000) {
            cqfd::rainworm::tm::TmOutcome::Halted { steps, .. } => format!("yes ({steps})"),
            _ => "no".into(),
        };
        let delta = tm_to_rainworm(&tm);
        let worm_out = match creep(&delta, 2_000_000) {
            CreepOutcome::Halted { steps, .. } => format!("yes ({steps})"),
            _ => "no".into(),
        };
        println!("| {name} | {tm_out} | {} | {worm_out} |", delta.len());
    }
    println!();
}

fn e_viiie() {
    println!("## E-VIIIE — the §VIII.E finite counter-models\n");
    println!(
        "| worm | k_M | |M| edges | |M̂| edges | M̂ ⊨ T_M∆ | M̂ ⊨ T□ | 1-2 pattern | build time |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for (name, d) in [
        ("halting_worm_short".to_string(), halting_worm_short()),
        ("counter_worm(1)".into(), counter_worm(1)),
        ("counter_worm(2)".into(), counter_worm(2)),
        ("counter_worm(3)".into(), counter_worm(3)),
    ] {
        let t0 = Stopwatch::start();
        let cm = build_countermodel(&d, &t_square(), 2_000_000).unwrap();
        let dt = t0.elapsed();
        let tm = tm_rules(&d);
        println!(
            "| {name} | {} | {} | {} | {} | {} | {} | {dt:.2?} |",
            cm.k_m,
            cm.m.edge_count(),
            cm.m_hat.edge_count(),
            tm.is_model(&cm.m_hat),
            t_square().is_model(&cm.m_hat),
            cm.m_hat.has_12_pattern()
        );
    }
    println!();
}

fn e_red() {
    println!("## E-RED — Theorem 5 reduction sizes\n");
    println!("| machine | |∆| | L2 rules | L1 rules | CQs | s | total atoms |");
    println!("|---|---|---|---|---|---|---|");
    for (name, d) in [
        ("forever_worm".to_string(), forever_worm()),
        ("counter_worm(1)".into(), counter_worm(1)),
        ("counter_worm(2)".into(), counter_worm(2)),
        ("counter_worm(4)".into(), counter_worm(4)),
    ] {
        let s = reduce(&d).stats;
        println!(
            "| {name} | {} | {} | {} | {} | {} | {} |",
            d.len(),
            s.l2_rules,
            s.l1_rules,
            s.queries,
            s.s,
            s.total_atoms
        );
    }
    println!();
}

fn e_det() {
    println!("## E-DET — the determinacy oracle on everyday instances\n");
    let mut sig = cqfd::core::Signature::new();
    sig.add_predicate("R", 2);
    sig.add_predicate("S", 2);
    let oracle = DeterminacyOracle::new(sig.clone());
    println!("| views | Q0 | verdict | witness |");
    println!("|---|---|---|---|");
    let cases = [
        (vec!["V(x,y) :- R(x,y)"], "Q0(x,y) :- R(x,y)"),
        (
            vec!["V1(x,y) :- R(x,y)", "V2(x,y) :- S(x,y)"],
            "Q0(x,z) :- R(x,y), S(y,z)",
        ),
        (vec!["V(x) :- R(x,y)"], "Q0(x,y) :- R(x,y)"),
        (vec!["V(x,y) :- S(x,y)"], "Q0(x,y) :- R(x,y)"),
    ];
    for (views, q0s) in cases {
        let vq: Vec<Cq> = views.iter().map(|v| Cq::parse(&sig, v).unwrap()).collect();
        let q0 = Cq::parse(&sig, q0s).unwrap();
        let verdict = oracle.try_certify(&vq, &q0, 24).unwrap();
        let witness = if verdict.is_determined() {
            "—".to_string()
        } else {
            match search_counterexample(&oracle, &vq, &q0, 3) {
                Some(d) => format!("{} atoms", d.atom_count()),
                None => "none ≤ 3 nodes".into(),
            }
        };
        println!(
            "| {} | {} | {:?} | {} |",
            views.join("; "),
            q0s,
            verdict,
            witness
        );
    }
    println!();
}

fn e_fo() {
    println!("## E-FO1 / E-FO2 — Theorem 2: the girls and their views\n");
    let w = chase_world(10, false);
    println!("Attempt 1 — the §IX.A projection sentence (II-eq, III-eq):\n");
    println!("| stage | Grace (green) | Ruby (red) |");
    println!("|---|---|---|");
    for i in 4..=10 {
        let dy = w.stage_dalt(i, Color::Green);
        let dn = w.stage_dalt(i, Color::Red);
        println!(
            "| {i} | {:?} | {:?} |",
            projection_equalities(&w, &dy),
            projection_equalities(&w, &dn)
        );
    }
    let (vy, py, vn, pn) = attempt1(&w, 9);
    println!(
        "\nAttempt 1 EF ranks (stage 9): rank1 = {}, rank2 = {}, rank3 = {}",
        ef_equivalent(&vy, &py, &vn, &pn, 1),
        ef_equivalent(&vy, &py, &vn, &pn, 2),
        ef_equivalent(&vy, &py, &vn, &pn, 3)
    );
    println!("\nAttempt 2 (padded) EF equivalence:\n");
    println!("| i | rank 1 | rank 2 |");
    println!("|---|---|---|");
    for i in [2usize, 3, 4] {
        println!(
            "| {i} | {} | {} |",
            attempt2_equivalent(&w, i, 1),
            attempt2_equivalent(&w, i, 2)
        );
    }
    println!();
}
