//! The separating example of Theorem 14 (paper §VII), end to end.
//!
//! ```text
//! cargo run --release --example separating_example
//! ```
//!
//! `T = T∞ ∪ T□` does **not** lead to the red spider (the chase from `DI`
//! never develops a 1-2 pattern) but **finitely** leads to it (every
//! finite model of `T` containing `DI` has one). Through `Compile` and
//! `Precompile` this yields conjunctive queries `Q` that finitely
//! determine `Q0 = ∃*dalt(I)` without determining it — the first known
//! separation of finite from unrestricted CQ determinacy.

use cqfd::chase::ChaseBudget;
use cqfd::greengraph::{GreenGraph, Label};
use cqfd::reduction::reduce_l2;
use cqfd::separating::theorem14::{
    chase_from_di, chase_from_lasso, separating_space, t_separating,
};
use cqfd::separating::tinf::{lasso_model, t_infinity};

fn main() {
    let t = t_separating();
    println!(
        "T = T∞ ∪ T□: {} green-graph rewriting rules",
        t.rules().len()
    );

    println!("\n== Unrestricted side: chase(T, DI) stays clean ==");
    let (g, run, found) = chase_from_di(10);
    println!(
        "   {} stages, {} vertices, {} edges — 1-2 pattern: {found}",
        run.stage_count(),
        g.node_count(),
        g.edge_count()
    );
    assert!(!found);

    println!("\n== Finite side: every finite model folds, and folding is fatal ==");
    for (n, p) in [(3usize, 1usize), (4, 2), (5, 3)] {
        let m = lasso_model(separating_space(), n, p);
        let models_tinf = t_infinity().is_model(&m);
        let (out, run, found) = chase_from_lasso(n, p, 80);
        println!(
            "   lasso(n={n}, period={p}): models T∞ = {models_tinf}; chase {} stages, {} edges → 1-2 pattern: {found}",
            run.stage_count(),
            out.edge_count()
        );
        assert!(found);
    }

    println!("\n== The witness pattern ==");
    let (g, _, _) = chase_from_lasso(3, 1, 80);
    if let Some((x, xp, y)) = g.find_12_pattern() {
        println!(
            "   H[{}](n{}, n{}) and H[{}](n{}, n{}) share their target",
            Label::ONE,
            x.0,
            y.0,
            Label::TWO,
            xp.0,
            y.0
        );
    }

    println!("\n== Down to conjunctive queries (Lemma 12 + Observation 13) ==");
    let inst = reduce_l2(&t);
    println!(
        "   Q has {} CQs over a signature with {} predicates (spider parameter s = {});",
        inst.stats.queries, inst.stats.sigma_preds, inst.stats.s
    );
    println!(
        "   total body atoms: {}; Q0 = ∃*dalt(I) with {} atoms.",
        inst.stats.total_atoms,
        inst.q0.body.len()
    );
    println!("   This Q finitely determines Q0 but does not determine it (Theorem 14).");

    // A small bonus: DI really is the level-2 green spider seed.
    let di = GreenGraph::di(separating_space());
    println!(
        "\n(DI: {} vertices, {} edge, budget default = {:?} stages)",
        di.node_count(),
        di.edge_count(),
        ChaseBudget::default().max_stages
    );
}
