//! Quickstart: the determinacy oracle on classic view/query instances.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the chase-based semi-decision procedure of paper §IV on
//! three everyday instances: a determined one (join of views), an
//! undetermined one with a finite counter-example (projection), and one
//! where the chase cannot decide (the fundamental situation Theorem 1
//! proves unavoidable).

use cqfd::chase::ChaseBudget;
use cqfd::core::{Cq, Signature};
use cqfd::greenred::{search_counterexample, DeterminacyOracle, Verdict};

/// Renders a chase run's metrics the same way `cqfd batch` result lines do.
fn metrics_line(run: &cqfd::chase::ChaseRun) -> String {
    format!(
        "stages={} triggers={} homs={} elapsed_ms={:.1}",
        run.stage_count(),
        run.triggers_fired(),
        run.hom_nodes,
        run.elapsed.as_secs_f64() * 1e3
    )
}

fn main() {
    let mut sig = Signature::new();
    sig.add_predicate("R", 2);
    sig.add_predicate("S", 2);

    println!("== 1. Determined: V1 = R, V2 = S, Q0 = R ⋈ S ==");
    let v1 = Cq::parse(&sig, "V1(x,y) :- R(x,y)").unwrap();
    let v2 = Cq::parse(&sig, "V2(x,y) :- S(x,y)").unwrap();
    let q0 = Cq::parse(&sig, "Q0(x,z) :- R(x,y), S(y,z)").unwrap();
    let oracle = DeterminacyOracle::new(sig.clone());
    let cr = oracle.certify_run(&[v1, v2], &q0, &ChaseBudget::stages(16));
    match cr.verdict {
        Verdict::Determined { stage } => {
            println!("   determined — chase certificate at stage {stage}");
            println!("   (unrestricted determinacy, hence finite determinacy too)");
            println!("   metrics: {}", metrics_line(&cr.run));
            let report = cqfd::cert::check(&cr.certificate).expect("certificate checks");
            println!("   independently checked: {}", report.summary);
        }
        other => println!("   unexpected: {other:?}"),
    }

    println!("\n== 2. Not determined: V = ∃y R(x,y), Q0 = R(x,y) ==");
    let v = Cq::parse(&sig, "V(x) :- R(x,y)").unwrap();
    let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
    match oracle
        .try_certify(std::slice::from_ref(&v), &q0, 16)
        .unwrap()
    {
        Verdict::NotDeterminedUnrestricted { stages } => {
            println!("   chase reached a fixpoint after {stages} stages without red(Q0)");
        }
        other => println!("   unexpected: {other:?}"),
    }
    match search_counterexample(&oracle, &[v], &q0, 3) {
        Some(d) => {
            println!(
                "   finite counter-example found ({} atoms over Σ̄):",
                d.atom_count()
            );
            print!("{d}");
        }
        None => println!("   no small counter-example (unexpected)"),
    }

    println!("\n== 3. Sometimes neither side ever answers: the paper's Q∞ ==");
    // Q∞ = Compile(Precompile(T∞)) — the paper's §VII/§IX query set. Its
    // chase grows an infinite two-colored path and never reaches red(Q0),
    // yet no finite stage can rule determinacy out.
    let inst = cqfd::reduction::reduce_l2(&cqfd::separating::tinf::t_infinity());
    let oracle2 = DeterminacyOracle::from_greenred(inst.spider_ctx.greenred().clone());
    let cr = oracle2.certify_run(&inst.queries, &inst.q0, &ChaseBudget::stages(8));
    match cr.verdict {
        Verdict::Unknown { stages } => {
            println!("   chase still running after {stages} stages — no verdict.");
            println!("   Theorem 1 of the paper: no procedure decides this in general.");
            println!("   metrics: {}", metrics_line(&cr.run));
        }
        other => println!("   verdict: {other:?}"),
    }
}
