//! Theorem 2: finite determinacy without FO-rewriting (paper §IX).
//!
//! ```text
//! cargo run --release --example fo_rewriting
//! ```
//!
//! Grace watches the green part of the chase of `T_Q∞` from the full
//! green spider; Ruby watches the red part. Both see only the *views*
//! `Q∞(·)`. Attempt 1 (truncate the chase at stage `i`) is always
//! FO-distinguishable — a fixed sentence about projection equalities tells
//! the girls apart. Attempt 2 pads both sides with `i` copies of the late
//! chase fragments of both colors; the padded views are indistinguishable
//! in the `l`-round Ehrenfeucht–Fraïssé game for small `l`.

use cqfd::fogames::ef::ef_equivalent;
use cqfd::fogames::theorem2::{
    attempt1, attempt2, attempt2_equivalent, chase_world, projection_equalities,
};
use cqfd::greenred::Color;

fn main() {
    println!("building chase(T_Q∞, I) — Level 0, 10 stages…");
    let w = chase_world(10, false);
    println!(
        "   final: {} atoms, {} nodes; Q∞ has {} queries",
        w.run.structure.atom_count(),
        w.run.structure.node_count(),
        w.queries.len()
    );

    println!("\n== Attempt 1 (§IX.A): premature truncations are distinguishable ==");
    println!("   the sentence: π(IIA)=π(IIB) ∧ π(IIIA)=π(IIIB)");
    println!("   stage | Grace (green) | Ruby (red)");
    for i in 4..=10 {
        let dy = w.stage_dalt(i, Color::Green);
        let dn = w.stage_dalt(i, Color::Red);
        let (gy2, gy3) = projection_equalities(&w, &dy);
        let (rn2, rn3) = projection_equalities(&w, &dn);
        println!("   {i:>5} | II={gy2:<5} III={gy3:<5} | II={rn2:<5} III={rn3:<5}");
    }
    println!("   Ruby satisfies both at every stage; Grace never does — distinguishable.");

    println!("\n== …yet low-rank EF games cannot tell (the differences hide) ==");
    let (vy, py, vn, pn) = attempt1(&w, 9);
    for l in 1..=3 {
        println!(
            "   rank {l}: Duplicator wins = {}",
            ef_equivalent(&vy, &py, &vn, &pn, l)
        );
    }

    println!("\n== Attempt 2 (§IX.B): i-fold padding defeats every fixed rank ==");
    for i in [3usize, 4] {
        let (vy2, _, vn2, _) = attempt2(&w, i);
        println!(
            "   i = {i}: view sizes {} / {} atoms",
            vy2.atom_count(),
            vn2.atom_count()
        );
        for l in 1..=2 {
            println!(
                "      rank {l}: Duplicator wins = {}",
                attempt2_equivalent(&w, i, l)
            );
        }
    }
    println!("\nConclusion (Theorem 2): Q finitely determines Q0, but no FO formula");
    println!("over the views computes Q0 — finite determinacy without FO-rewriting.");
}
