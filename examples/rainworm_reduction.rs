//! Rainworms, their green-graph translations, and the full Theorem 5
//! reduction.
//!
//! ```text
//! cargo run --release --example rainworm_reduction
//! ```
//!
//! Shows a rainworm creeping (the Thue rewriting of §VIII.A), compiles a
//! Turing machine to a rainworm (Lemma 21), translates instruction sets to
//! green-graph rules (§VIII.C), builds the §VIII.E finite counter-model
//! for a halting worm, and produces the final CQfDP instances.

use cqfd::rainworm::countermodel::build_countermodel;
use cqfd::rainworm::encode::tm_to_rainworm;
use cqfd::rainworm::families::{counter_worm, forever_worm};
use cqfd::rainworm::run::{creep, trace, CreepOutcome};
use cqfd::rainworm::tm::TuringMachine;
use cqfd::rainworm::to_rules::tm_rules;
use cqfd::reduction::reduce;
use cqfd::separating::grid::t_square;

fn main() {
    println!("== A rainworm creeps (forever_worm, first 14 configurations) ==");
    let delta = forever_worm();
    for (k, c) in trace(&delta, 13).iter().enumerate() {
        println!("   {k:>2}: {c}");
    }

    println!("\n== A halting worm: counter_worm(3) ==");
    let halting = counter_worm(3);
    match creep(&halting, 100_000) {
        CreepOutcome::Halted {
            steps,
            final_config,
        } => {
            println!("   halts after k_M = {steps} steps");
            println!("   u_M = {final_config}");
            println!("   slime trail length: {}", final_config.slime().len());
        }
        _ => unreachable!(),
    }

    println!("\n== Lemma 21: compiling a Turing machine to a rainworm ==");
    let tm = TuringMachine::zigzag(3);
    let compiled = tm_to_rainworm(&tm);
    println!(
        "   zigzag(3): {} TM transitions → {} rainworm instructions",
        tm.transitions.len(),
        compiled.len()
    );
    match creep(&compiled, 500_000) {
        CreepOutcome::Halted { steps, .. } => {
            println!("   TM halts ⇒ worm halts (after {steps} rewriting steps)")
        }
        _ => println!("   unexpected: still creeping"),
    }

    println!("\n== §VIII.C: ∆ ↦ T_M∆ (green-graph rules) ==");
    let t_m = tm_rules(&delta);
    println!(
        "   forever_worm: {} instructions → {} rules",
        delta.len(),
        t_m.rules().len()
    );

    println!("\n== §VIII.E: the finite counter-model for a halting worm ==");
    let cm = build_countermodel(&counter_worm(2), &t_square(), 100_000).unwrap();
    println!(
        "   k_M = {}, |u_M| = {}; M has {} edges, M̂ (with grids) has {} edges",
        cm.k_m,
        cm.u_m.len(),
        cm.m.edge_count(),
        cm.m_hat.edge_count()
    );
    let tm_sys = tm_rules(&counter_worm(2));
    println!(
        "   M̂ |= T_M∆: {}   M̂ |= T□: {}   1-2 pattern: {}",
        tm_sys.is_model(&cm.m_hat),
        t_square().is_model(&cm.m_hat),
        cm.m_hat.has_12_pattern()
    );

    println!("\n== Theorem 5: the full reduction ∆ ↦ (Q, Q0) ==");
    for (name, delta) in [
        ("forever_worm", forever_worm()),
        ("counter_worm(2)", counter_worm(2)),
    ] {
        let inst = reduce(&delta);
        println!(
            "   {name}: |∆| = {:>3} → {} L2 rules → {} L1 rules → {} CQs, s = {}, {} atoms total",
            delta.len(),
            inst.stats.l2_rules,
            inst.stats.l1_rules,
            inst.stats.queries,
            inst.stats.s,
            inst.stats.total_atoms
        );
    }
    println!("   Q finitely determines Q0  ⇔  the worm creeps forever  (undecidable).");
}
