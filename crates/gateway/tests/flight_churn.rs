//! Regression: the flight recorder's black-box recording must survive
//! the `TraceRouter` installing and uninstalling the ordinary subscriber
//! as streams come and go — and the router must actually *uninstall*
//! when the last stream closes, returning tracing to its cheap state.
//!
//! This lives in its own integration-test binary because it asserts on
//! process-global subscriber state; sharing a process with tests that
//! run streaming jobs would race those assertions.

use cqfd_gateway::TraceRouter;
use cqfd_obs::trace::{flight_sink_installed, subscriber_installed};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn flight_recording_survives_trace_router_churn() {
    assert!(
        !subscriber_installed(),
        "test binary must start with no subscriber"
    );
    cqfd_flight::install();
    assert!(flight_sink_installed());
    let recorder = cqfd_flight::recorder();
    let baseline = recorder.total_recorded();

    let router = TraceRouter::global();
    let wake = Arc::new(polling::Poller::new().unwrap());

    // Several rounds of register → record → unregister. The router
    // toggles the subscriber slot each round; the flight sink must keep
    // recording through every toggle, including while no stream is live.
    for round in 0u64..5 {
        let job = 55_000 + round;
        let rx = router.register(job, Arc::clone(&wake));
        assert!(
            subscriber_installed(),
            "round {round}: first route installs the subscriber"
        );
        let t = std::thread::spawn(move || {
            cqfd_obs::trace::set_current_job(Some(job));
            cqfd_obs::event!("gateway.churn_event", round = round);
            cqfd_obs::trace::set_current_job(None);
        });
        t.join().unwrap();
        // The routed copy reached the stream...
        let line = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(line.contains("gateway.churn_event"), "{line}");
        router.unregister(job);
        assert!(
            !subscriber_installed(),
            "round {round}: last route must uninstall the subscriber"
        );
        assert!(
            flight_sink_installed(),
            "round {round}: churn must not evict the flight sink"
        );

        // ...and the flight ring keeps recording even with no stream.
        let before = recorder.total_recorded();
        cqfd_obs::event!("gateway.churn_idle_event", round = round);
        assert!(
            recorder.total_recorded() > before,
            "round {round}: flight ring stopped recording after unregister"
        );
    }

    // Every routed event also landed in the black box.
    assert!(recorder.total_recorded() >= baseline + 10);
    let dump = recorder.snapshot_jsonl(usize::MAX);
    assert!(dump.contains("gateway.churn_event"), "{dump}");
    assert!(dump.contains("gateway.churn_idle_event"), "{dump}");
}
