//! Property tests for the hand-rolled HTTP/1.1 codec: render→parse
//! round-trips, prefix-safety (a partial wire is never misread as
//! complete or bad), and no-panic on arbitrary bytes.
//!
//! The vendored proptest shim only supplies integer/bool/vec
//! strategies, so strings are built by mapping integer draws into safe
//! alphabets by hand.

use cqfd_gateway::http::{self, Limits, Parse, Request};
use proptest::prelude::*;

const METHODS: [&str; 3] = ["GET", "POST", "PUT"];
const TARGET_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/_-.~%";
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";
// Header values: printable ASCII minus edge whitespace (the parser
// trims leading/trailing blanks, so round-tripping them is lossy by
// design). Interior chars may be anything visible plus space.
const VALUE_CHARS: &[u8] =
    b"!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[]^_`abcdefghijklmnopqrstuvwxyz{|}~ ";

fn pick(alphabet: &[u8], draw: u8) -> char {
    alphabet[draw as usize % alphabet.len()] as char
}

fn build_request(
    method_idx: u8,
    target_draws: &[u8],
    header_draws: &[(u8, u8, u8)],
    body: &[u8],
) -> Request {
    let mut target = String::from("/");
    target.extend(target_draws.iter().map(|&d| pick(TARGET_CHARS, d)));
    // Names are prefixed "x-" so generated headers can never collide
    // with the framing headers (`Content-Length`/`Transfer-Encoding`)
    // that the renderer adds itself. Values must not start or end with
    // a blank (the parser trims), so edges draw from the no-space tail.
    let headers = header_draws
        .iter()
        .enumerate()
        .map(|(i, &(n1, n2, v))| {
            let name = format!("x-{}{}{}", pick(NAME_CHARS, n1), pick(NAME_CHARS, n2), i);
            let value = format!(
                "{}{}{}",
                pick(&VALUE_CHARS[..VALUE_CHARS.len() - 1], v),
                pick(VALUE_CHARS, v.wrapping_mul(7)),
                pick(&VALUE_CHARS[..VALUE_CHARS.len() - 1], v.wrapping_add(3)),
            );
            (name, value)
        })
        .collect();
    Request {
        method: METHODS[method_idx as usize % METHODS.len()].to_string(),
        target,
        headers,
        body: body.to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn render_then_parse_round_trips(
        method_idx in 0u8..=255,
        target_draws in prop::collection::vec(0u8..=255, 0..24),
        header_draws in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..6),
        body in prop::collection::vec(0u8..=255, 0..256),
        chunked in any::<bool>(),
    ) {
        let req = build_request(method_idx, &target_draws, &header_draws, &body);
        let wire = http::render_request(&req, chunked);
        match http::parse_request(&wire, &Limits::default()) {
            Parse::Complete { value, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(&value.method, &req.method);
                prop_assert_eq!(&value.target, &req.target);
                prop_assert_eq!(&value.body, &req.body);
                for (name, want) in &req.headers {
                    // Generated names are unique (index suffix), so a
                    // straight lookup must recover the exact value.
                    prop_assert_eq!(value.header(name), Some(want.as_str()));
                }
            }
            other => prop_assert!(false, "valid wire failed to parse: {:?}", other),
        }
    }

    #[test]
    fn every_proper_prefix_parses_partial(
        method_idx in 0u8..=255,
        target_draws in prop::collection::vec(0u8..=255, 0..12),
        header_draws in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..3),
        body in prop::collection::vec(0u8..=255, 0..64),
        chunked in any::<bool>(),
    ) {
        let req = build_request(method_idx, &target_draws, &header_draws, &body);
        let wire = http::render_request(&req, chunked);
        for cut in 0..wire.len() {
            match http::parse_request(&wire[..cut], &Limits::default()) {
                Parse::Partial => {}
                Parse::Complete { .. } => {
                    prop_assert!(false, "prefix of length {} of a {}-byte wire parsed Complete", cut, wire.len());
                }
                Parse::Bad { status, reason } => {
                    prop_assert!(false, "prefix of length {} rejected ({}): {}", cut, status, reason);
                }
            }
        }
    }

    #[test]
    fn response_round_trips_both_framings(
        status_draw in 0u16..=3,
        body in prop::collection::vec(0u8..=255, 0..256),
        chunked in any::<bool>(),
    ) {
        let (status, reason) = [
            (200u16, "OK"),
            (400, "Bad Request"),
            (429, "Too Many Requests"),
            (503, "Service Unavailable"),
        ][status_draw as usize];
        let wire = if chunked {
            let mut w = http::chunked_head(status, reason, "application/x-ndjson", &[]);
            if !body.is_empty() {
                w.extend(http::chunk(&body));
            }
            w.extend_from_slice(http::CHUNK_END);
            w
        } else {
            http::response(status, reason, "application/json", &[], &body)
        };
        match http::parse_response(&wire, &Limits::default()) {
            Parse::Complete { value, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(value.status, status);
                prop_assert_eq!(&value.body, &body);
            }
            other => prop_assert!(false, "rendered response failed to parse: {:?}", other),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_over_consume(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        if let Parse::Complete { consumed, .. } = http::parse_request(&bytes, &Limits::default()) {
            prop_assert!(consumed <= bytes.len());
        }
        if let Parse::Complete { consumed, .. } = http::parse_response(&bytes, &Limits::default()) {
            prop_assert!(consumed <= bytes.len());
        }
    }
}
