//! End-to-end exercises of the gateway reactor: protocol parity with the
//! legacy thread-per-connection server, transport byte-identity,
//! admission control, streaming, deadlines, and malformed-input
//! resilience.

use cqfd_gateway::http as ghttp;
use cqfd_gateway::{json, Gateway, GatewayConfig, Quota};
use cqfd_service::{PoolConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Connects a line-protocol client and consumes the version greeting.
fn line_client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut greeting = String::new();
    reader.read_line(&mut greeting).expect("greeting");
    assert_eq!(greeting.trim(), "cqfd-service v1");
    (reader, stream)
}

/// Reads one full job reply: the result line plus any framed payload
/// lines it announces (`cert_lines=` / `trace_lines=` / `lint_lines=`).
fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("result line");
    let mut extra = 0usize;
    for key in ["cert_lines=", "trace_lines=", "lint_lines="] {
        if let Some(tok) = line.split_whitespace().find_map(|t| t.strip_prefix(key)) {
            extra += tok.parse::<usize>().expect("payload count");
        }
    }
    let mut out = line;
    for _ in 0..extra {
        let mut payload = String::new();
        reader.read_line(&mut payload).expect("payload line");
        out.push_str(&payload);
    }
    out
}

/// Masks the per-run fields (`job=` ids, wall-clock `elapsed_ms=`) so two
/// answers can be compared byte-for-byte on everything that matters.
fn normalize(text: &str) -> String {
    text.lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| match tok.split_once('=') {
                    Some(("job" | "elapsed_ms", _)) => {
                        format!("{}=X", tok.split_once('=').unwrap().0)
                    }
                    _ => tok.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A blocking HTTP/1.1 client over the gateway's own codec, with
/// keep-alive (leftover bytes stay buffered for the next response).
struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect http");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        HttpClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, req: &ghttp::Request) {
        self.stream
            .write_all(&ghttp::render_request(req, false))
            .expect("write request");
    }

    fn read_response(&mut self) -> ghttp::Response {
        let limits = ghttp::Limits {
            max_head_bytes: 64 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        };
        loop {
            match ghttp::parse_response(&self.buf, &limits) {
                ghttp::Parse::Complete { value, consumed } => {
                    self.buf.drain(..consumed);
                    return value;
                }
                ghttp::Parse::Partial => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).expect("read response");
                    assert!(n > 0, "connection closed mid-response");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                ghttp::Parse::Bad { status, reason } => {
                    panic!("server sent an unparsable response ({status}): {reason}")
                }
            }
        }
    }

    fn request(&mut self, req: &ghttp::Request) -> ghttp::Response {
        self.send(req);
        self.read_response()
    }
}

fn post_jobs(body: &str, headers: &[(&str, &str)]) -> ghttp::Request {
    ghttp::Request {
        method: "POST".into(),
        target: "/v1/jobs".into(),
        headers: headers
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        body: body.as_bytes().to_vec(),
    }
}

fn get(target: &str) -> ghttp::Request {
    ghttp::Request {
        method: "GET".into(),
        target: target.into(),
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn one_worker() -> GatewayConfig {
    GatewayConfig::default().with_pool(PoolConfig::default().with_workers(1))
}

#[test]
fn gateway_needs_at_least_one_listener() {
    assert!(Gateway::bind(None, None, GatewayConfig::default()).is_err());
}

#[test]
fn line_protocol_matches_the_legacy_server() {
    let legacy = Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1))
        .expect("bind legacy")
        .spawn()
        .expect("spawn legacy");
    let gw = Gateway::bind(Some("127.0.0.1:0"), None, one_worker())
        .expect("bind gateway")
        .spawn()
        .expect("spawn gateway");

    let (mut legacy_rd, mut legacy_wr) = line_client(legacy.addr());
    let (mut gw_rd, mut gw_wr) = line_client(gw.line_addr().expect("line addr"));
    for request in [
        "v1",
        "creep worm=short cert=1",
        "determine instance=projection",
        "frobnicate x=1",
        "creep worm=short tenant=acme priority=batch",
    ] {
        writeln!(legacy_wr, "{request}").unwrap();
        writeln!(gw_wr, "{request}").unwrap();
        let a = read_reply(&mut legacy_rd);
        let b = read_reply(&mut gw_rd);
        assert_eq!(normalize(&a), normalize(&b), "diverged on `{request}`");
    }
    writeln!(legacy_wr, "quit").unwrap();
    writeln!(gw_wr, "quit").unwrap();
    assert_eq!(read_reply(&mut legacy_rd).trim(), "bye");
    assert_eq!(read_reply(&mut gw_rd).trim(), "bye");
    legacy.shutdown();
    gw.shutdown();
}

#[test]
fn both_transports_answer_byte_identically() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");

    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    writeln!(wr, "creep worm=short cert=1").unwrap();
    let line_answer = read_reply(&mut rd);

    let mut http = HttpClient::connect(gw.http_addr().unwrap());
    let resp = http.request(&post_jobs("{\"job\":\"creep worm=short cert=1\"}", &[]));
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let pairs = json::parse_object(&resp.body).expect("response is JSON");
    assert_eq!(
        json::get(&pairs, "verdict").and_then(|v| v.as_str()),
        Some("halted")
    );
    let http_answer = json::get(&pairs, "result")
        .and_then(|v| v.as_str())
        .expect("result field")
        .to_string();

    // The HTTP `result` field embeds the exact line-protocol rendering,
    // so modulo job id and wall time the payloads are byte-identical —
    // including the certificate, which must also check out.
    assert_eq!(
        normalize(line_answer.trim_end()),
        normalize(&http_answer),
        "transports diverged"
    );
    let cert_start = http_answer.find('\n').expect("certificate payload");
    let cert = cqfd_cert::parse(&http_answer[cert_start + 1..]).expect("valid certificate");
    assert!(cqfd_cert::check(&cert).is_ok());
    gw.shutdown();
}

#[test]
fn healthz_metrics_and_keepalive() {
    let gw = Gateway::bind(None, Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut http = HttpClient::connect(gw.http_addr().unwrap());

    let resp = http.request(&get("/healthz"));
    assert_eq!(resp.status, 200);
    let health = String::from_utf8_lossy(&resp.body).to_string();
    // Liveness contract: the first line is still the bare `ok`.
    assert_eq!(health.lines().next(), Some("ok"), "{health}");
    // Readiness payload behind it.
    assert!(health.contains("workers=1"), "{health}");
    assert!(health.contains("queue_depth="), "{health}");
    assert!(health.contains("lane_interactive_depth="), "{health}");
    assert!(health.contains("lane_batch_depth="), "{health}");
    assert!(health.contains("store=absent"), "{health}");

    let resp = http.request(&get("/metrics"));
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("content-type")
        .is_some_and(|v| v.starts_with("text/plain")));
    let text = String::from_utf8_lossy(&resp.body);
    assert!(text.contains("cqfd_gateway_connections"), "{text}");
    assert!(text.contains("# TYPE"), "{text}");

    let resp = http.request(&get("/nope"));
    assert_eq!(resp.status, 404);

    let resp = http.request(&post_jobs("not json at all", &[]));
    assert_eq!(resp.status, 400);

    // The connection survived all of the above (keep-alive).
    let resp = http.request(&get("/healthz"));
    assert_eq!(resp.status, 200);
    gw.shutdown();
}

#[test]
fn shutdown_is_honored_when_the_client_closes_without_reading() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), None, one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = gw.line_addr().unwrap();
    // Fire and forget: the command and the FIN ride in together, so the
    // reactor sees EOF on the very read that buffers the line. The
    // buffered command must still run — dropping it leaves the gateway
    // deaf forever (this was a real hang: `printf 'shutdown\n' >&3;
    // exec 3<&-` from a shell script never stopped the server).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"shutdown\n").expect("write");
    drop(stream);
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        gw.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("gateway should stop after a fire-and-forget shutdown");
}

/// Reads one framed debug reply (`<word>_lines=N` then N lines).
fn read_framed(rd: &mut BufReader<TcpStream>, word: &str) -> String {
    let mut head = String::new();
    rd.read_line(&mut head).expect("frame head");
    let n: usize = head
        .trim()
        .strip_prefix(&format!("{word}_lines="))
        .unwrap_or_else(|| panic!("bad frame head for {word}: {head}"))
        .parse()
        .expect("frame count");
    let mut out = String::new();
    for _ in 0..n {
        let mut l = String::new();
        rd.read_line(&mut l).expect("frame line");
        out.push_str(&l);
    }
    out
}

#[test]
fn debug_endpoints_serve_flight_attribution_and_profile() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // Run a real job first so the flight ring and the chase/hom counters
    // have something to report.
    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    writeln!(wr, "determine instance=projection").unwrap();
    assert!(read_reply(&mut rd).contains("verdict="));

    let mut http = HttpClient::connect(gw.http_addr().unwrap());

    let resp = http.request(&get("/debug/flight"));
    assert_eq!(resp.status, 200);
    let flight = String::from_utf8_lossy(&resp.body).to_string();
    assert!(!flight.trim().is_empty(), "flight ring empty after a job");
    let records = cqfd_obs::jsonl::parse_lines(&flight).expect("flight dump is valid JSONL");
    assert!(!records.is_empty());

    let resp = http.request(&get("/debug/attribution"));
    assert_eq!(resp.status, 200);
    let attr = String::from_utf8_lossy(&resp.body).to_string();
    assert!(attr.starts_with("# cqfd cost attribution"), "{attr}");
    assert!(attr.contains("totals:"), "{attr}");
    assert!(attr.contains("## rules"), "{attr}");

    // A profile window runs on a detached thread; the reactor must keep
    // answering other connections while it is open.
    http.send(&get("/debug/profile?seconds=1&hz=50"));
    let mut other = HttpClient::connect(gw.http_addr().unwrap());
    let started = Instant::now();
    let health = other.request(&get("/healthz"));
    assert_eq!(health.status, 200);
    assert!(
        started.elapsed() < Duration::from_millis(800),
        "reactor blocked during a profile window"
    );
    let resp = http.read_response();
    assert_eq!(resp.status, 200);
    assert!(!resp.body.is_empty(), "profile reply is never empty");

    // Bad query arguments are a 400, not a wedged connection.
    let resp = http.request(&get("/debug/profile?seconds=99"));
    assert_eq!(resp.status, 400);
    assert!(String::from_utf8_lossy(&resp.body).contains("seconds"));

    // The same three surfaces exist as line-protocol control words.
    writeln!(wr, "flight").unwrap();
    let flight = read_framed(&mut rd, "flight");
    assert!(cqfd_obs::jsonl::parse_lines(&flight).is_ok_and(|r| !r.is_empty()));
    writeln!(wr, "attribution").unwrap();
    let attr = read_framed(&mut rd, "attribution");
    assert!(attr.contains("# cqfd cost attribution"), "{attr}");
    writeln!(wr, "profile seconds=1 hz=50").unwrap();
    let folded = read_framed(&mut rd, "profile");
    assert!(!folded.trim().is_empty());
    writeln!(wr, "profile seconds=99").unwrap();
    let mut err = String::new();
    rd.read_line(&mut err).unwrap();
    assert!(err.starts_with("error:"), "{err}");
    gw.shutdown();
}

#[test]
fn quota_exhaustion_sheds_with_retry_after() {
    // One token, glacial refill: the second request must shed on either
    // transport (the bucket is shared across both).
    let config = one_worker().with_quota(
        "acme",
        Quota {
            rate: 0.05,
            burst: 1.0,
        },
    );
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), config)
        .expect("bind")
        .spawn()
        .expect("spawn");

    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    writeln!(wr, "creep worm=short tenant=acme").unwrap();
    assert!(read_reply(&mut rd).contains("verdict=halted"));
    writeln!(wr, "creep worm=short tenant=acme").unwrap();
    let shed = read_reply(&mut rd);
    assert!(shed.starts_with("busy retry-after-ms="), "{shed}");
    let ms: u64 = shed
        .trim()
        .strip_prefix("busy retry-after-ms=")
        .unwrap()
        .parse()
        .unwrap();
    assert!(ms > 0);

    let mut http = HttpClient::connect(gw.http_addr().unwrap());
    let resp = http.request(&post_jobs(
        "{\"job\":\"creep worm=short\"}",
        &[("X-Cqfd-Tenant", "acme")],
    ));
    assert_eq!(resp.status, 429);
    assert!(resp.header("retry-after").is_some(), "Retry-After header");
    let body = String::from_utf8_lossy(&resp.body);
    assert!(body.contains("retry_after_ms"), "{body}");

    // Other tenants are untouched by acme's empty bucket.
    let resp = http.request(&post_jobs("{\"job\":\"creep worm=short\"}", &[]));
    assert_eq!(resp.status, 200);
    gw.shutdown();
}

#[test]
fn saturated_lanes_shed_instead_of_queueing() {
    // worker=1 + pool queue=1 + lane=1: three jobs fit in flight, the
    // fourth and fifth must shed promptly while the first still runs.
    let config = GatewayConfig::default()
        .with_pool(PoolConfig::default().with_workers(1).with_queue_capacity(1))
        .with_lane_capacity(1);
    let gw = Gateway::bind(Some("127.0.0.1:0"), None, config)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = gw.line_addr().unwrap();

    let slow = "creep worm=forever steps=max timeout-ms=1000";
    let mut clients: Vec<(BufReader<TcpStream>, TcpStream)> = Vec::new();
    for _ in 0..5 {
        clients.push(line_client(addr));
    }
    for (_, wr) in clients.iter_mut() {
        writeln!(wr, "{slow}").unwrap();
        // Give the reactor a beat so arrival order is deterministic.
        std::thread::sleep(Duration::from_millis(30));
    }
    // Clients 4 and 5 found worker, pool queue, and lane all full.
    for (rd, _) in clients.iter_mut().skip(3) {
        let started = Instant::now();
        let reply = read_reply(rd);
        assert!(reply.starts_with("busy retry-after-ms="), "{reply}");
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "shedding must not wait for the running job"
        );
    }
    // Client 1's slow job still answers.
    let reply = read_reply(&mut clients[0].0);
    assert!(reply.contains("verdict="), "{reply}");
    gw.shutdown();
}

#[test]
fn streaming_delivers_trace_events_on_both_transports() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // Line protocol: `trace_event <jsonl>` lines precede the result.
    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    writeln!(wr, "creep worm=short stream=1").unwrap();
    let mut trace_lines = 0;
    let result = loop {
        let mut line = String::new();
        rd.read_line(&mut line).unwrap();
        if let Some(rec) = line.strip_prefix("trace_event ") {
            assert!(rec.trim_start().starts_with('{'), "{rec}");
            trace_lines += 1;
        } else {
            break line;
        }
    };
    assert!(trace_lines > 0, "no live trace records reached the client");
    assert!(result.contains("verdict=halted"), "{result}");

    // HTTP: a chunked NDJSON stream, closed by the result object.
    let mut http = HttpClient::connect(gw.http_addr().unwrap());
    let resp = http.request(&post_jobs(
        "{\"job\":\"creep worm=short\",\"stream\":true}",
        &[],
    ));
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked")));
    let body = String::from_utf8_lossy(&resp.body);
    let lines: Vec<&str> = body.lines().collect();
    assert!(
        lines.len() >= 2,
        "expected trace records before the result: {body}"
    );
    let final_obj = json::parse_object(lines.last().unwrap().as_bytes()).expect("result object");
    assert_eq!(
        json::get(&final_obj, "verdict").and_then(|v| v.as_str()),
        Some("halted")
    );
    assert!(
        lines[..lines.len() - 1]
            .iter()
            .all(|l| l.contains("\"seq\"")),
        "stream lines are obs JSONL records: {body}"
    );
    gw.shutdown();
}

#[test]
fn malformed_http_is_answered_and_never_wedges_the_reactor() {
    let gw = Gateway::bind(None, Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = gw.http_addr().unwrap();

    let mut oversized_head = b"GET / HTTP/1.1\r\nX-Filler: ".to_vec();
    oversized_head.extend(std::iter::repeat_n(b'a', 64 * 1024));
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"BOGUS LINE\r\n\r\n".to_vec(), 400),
        (b"GET / HTTP/9.9\r\n\r\n".to_vec(), 505),
        (
            b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".to_vec(),
            400,
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n"
                .to_vec(),
            400,
        ),
        (oversized_head, 431),
    ];
    for (wire, want) in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&wire).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read 4xx + close");
        let head = String::from_utf8_lossy(&reply);
        assert!(
            head.starts_with(&format!("HTTP/1.1 {want} ")),
            "for {:?}: {head}",
            String::from_utf8_lossy(&wire)
        );
    }

    // After all that abuse a well-formed request still answers.
    let mut http = HttpClient::connect(addr);
    let resp = http.request(&post_jobs("{\"job\":\"creep worm=short\"}", &[]));
    assert_eq!(resp.status, 200);
    gw.shutdown();
}

#[test]
fn mid_request_stalls_hit_the_read_deadline_but_idle_conns_survive() {
    let config = one_worker().with_read_deadline(Duration::from_millis(150));
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), config)
        .expect("bind")
        .spawn()
        .expect("spawn");

    // An idle connection (no partial request) outlives the deadline...
    let (mut idle_rd, mut idle_wr) = line_client(gw.line_addr().unwrap());

    // ...while a half-sent line is cut off.
    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    wr.write_all(b"creep worm=sho").unwrap();
    wr.flush().unwrap();
    let started = Instant::now();
    let mut line = String::new();
    rd.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error: request line not completed within"),
        "{line}"
    );
    assert!(started.elapsed() < Duration::from_secs(5));
    line.clear();
    assert_eq!(rd.read_line(&mut line).unwrap(), 0, "connection closed");

    // A half-sent HTTP head gets 408 and a close.
    let mut stream = TcpStream::connect(gw.http_addr().unwrap()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Le")
        .unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408 "),
        "{}",
        String::from_utf8_lossy(&reply)
    );

    // The idle connection is still serviceable well past the deadline.
    std::thread::sleep(Duration::from_millis(100));
    writeln!(idle_wr, "creep worm=short").unwrap();
    assert!(read_reply(&mut idle_rd).contains("verdict=halted"));
    gw.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"), one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // HTTP: two POSTs in one write; two responses, in order.
    let mut http = HttpClient::connect(gw.http_addr().unwrap());
    let mut wire = ghttp::render_request(&post_jobs("{\"job\":\"creep worm=short\"}", &[]), false);
    wire.extend(ghttp::render_request(
        &post_jobs("{\"job\":\"determine instance=projection\"}", &[]),
        true, // second one chunked, exercising the de-chunker in the pipeline
    ));
    http.stream.write_all(&wire).unwrap();
    let first = http.read_response();
    let second = http.read_response();
    let verdict = |resp: &ghttp::Response| {
        let pairs = json::parse_object(&resp.body).expect("json body");
        json::get(&pairs, "verdict")
            .and_then(|v| v.as_str())
            .map(str::to_string)
    };
    assert_eq!(verdict(&first).as_deref(), Some("halted"));
    assert_eq!(verdict(&second).as_deref(), Some("not-determined"));

    // Line protocol: two jobs in one write; two replies, in order.
    let (mut rd, mut wr) = line_client(gw.line_addr().unwrap());
    wr.write_all(b"creep worm=short\ndetermine instance=projection\n")
        .unwrap();
    assert!(read_reply(&mut rd).contains("verdict=halted"));
    assert!(read_reply(&mut rd).contains("verdict=not-determined"));
    gw.shutdown();
}

#[test]
fn shutdown_word_stops_the_gateway() {
    let gw = Gateway::bind(Some("127.0.0.1:0"), None, one_worker())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = gw.line_addr().unwrap();
    let (mut rd, mut wr) = line_client(addr);
    writeln!(wr, "shutdown").unwrap();
    let mut line = String::new();
    rd.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "bye");
    gw.join(); // returns only once the reactor and pool are gone
    assert!(TcpStream::connect(addr).is_err() || std::net::TcpListener::bind(addr).is_ok());
}
