//! A tiny flat-JSON codec for the HTTP ingress.
//!
//! The gateway's request/response bodies are single-level JSON objects
//! of scalars (`{"job": "...", "tenant": "...", "stream": true}`), so
//! rather than vendoring a JSON library, this module parses exactly that
//! shape — strings with the standard escapes, numbers, booleans, `null`
//! — and rejects nested arrays/objects. The obs JSONL records streamed
//! to clients are rendered by `cqfd-obs` itself and pass through here
//! untouched.

/// A scalar value from a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON string, unescaped.
    Str(String),
    /// Any JSON number, kept as its source text.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Scalar {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A lenient truthiness reading: `true`, `"1"`, `"true"` are true.
    pub fn truthy(&self) -> bool {
        match self {
            Scalar::Bool(b) => *b,
            Scalar::Str(s) => s == "1" || s == "true",
            Scalar::Num(n) => n != "0",
            Scalar::Null => false,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // protocol's ASCII-ish payloads; map them to
                            // the replacement character instead of erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-sync to UTF-8 boundaries for multibyte chars.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "string is not valid UTF-8")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => self.keyword("true", Scalar::Bool(true)),
            Some(b'f') => self.keyword("false", Scalar::Bool(false)),
            Some(b'n') => self.keyword("null", Scalar::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("number chars are ASCII");
                Ok(Scalar::Num(text.to_string()))
            }
            Some(b'{') | Some(b'[') => Err("nested objects/arrays are not supported".into()),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn keyword(&mut self, word: &str, value: Scalar) -> Result<Scalar, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }
}

/// Parses a flat JSON object into its key/value pairs, in source order.
pub fn parse_object(text: &[u8]) -> Result<Vec<(String, Scalar)>, String> {
    let mut cur = Cursor {
        bytes: text,
        pos: 0,
    };
    cur.eat(b'{')?;
    let mut pairs = Vec::new();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            let key = cur.string()?;
            cur.eat(b':')?;
            let value = cur.scalar()?;
            pairs.push((key, value));
            match cur.peek() {
                Some(b',') => {
                    cur.pos += 1;
                }
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != text.len() {
        return Err(format!("trailing bytes after object at {}", cur.pos));
    }
    Ok(pairs)
}

/// Looks up `key` in parsed pairs.
pub fn get<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_job_body_shape() {
        let pairs = parse_object(
            br#"{"job": "creep worm=short", "tenant": "acme", "stream": true, "n": 3}"#,
        )
        .unwrap();
        assert_eq!(
            get(&pairs, "job").unwrap().as_str(),
            Some("creep worm=short")
        );
        assert_eq!(get(&pairs, "tenant").unwrap().as_str(), Some("acme"));
        assert!(get(&pairs, "stream").unwrap().truthy());
        assert_eq!(get(&pairs, "n"), Some(&Scalar::Num("3".into())));
        assert_eq!(get(&pairs, "absent"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line one\nline \"two\"\t\\slash\u{1}";
        let body = format!(r#"{{"v": "{}"}}"#, escape(nasty));
        let pairs = parse_object(body.as_bytes()).unwrap();
        assert_eq!(get(&pairs, "v").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_object(br#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_object(br#"{"a": [1]}"#).is_err());
        assert!(parse_object(b"not json").is_err());
        assert!(parse_object(br#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(br#"{"a": "unterminated}"#).is_err());
        assert!(parse_object(b"{}").unwrap().is_empty());
    }
}
