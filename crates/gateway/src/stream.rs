//! Streaming partial results: routing live obs trace records to the
//! connection that asked for them (`stream=1` / `"stream": true`).
//!
//! The worker pool tags every trace record with its job id
//! (`cqfd_obs::trace::set_current_job`), and the obs facade delivers all
//! records to the global [`Subscriber`]. The [`TraceRouter`] is that
//! subscriber while at least one streaming job is live: it looks up the
//! record's job id in its route table and, on a match, sends the
//! JSONL-rendered line down the route's channel and pokes the owning
//! reactor's poller awake so the line is flushed to the client promptly.
//!
//! The router installs itself as the global subscriber on the first
//! route and uninstalls on the last, so tracing stays in its
//! one-relaxed-load "free" state whenever nothing is streaming. The
//! router owns the subscriber slot while streams are live; a process
//! that installs its own subscriber *and* serves streaming jobs would
//! contend for the slot (nothing in this workspace does).

use cqfd_obs::trace::{clear_subscriber, set_subscriber};
use cqfd_obs::{Subscriber, TraceRecord};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

struct Route {
    tx: Sender<String>,
    /// Wakes the reactor that owns the streaming connection.
    wake: Arc<polling::Poller>,
}

/// Routes trace records to streaming connections by job id.
pub struct TraceRouter {
    routes: Mutex<HashMap<u64, Route>>,
}

static ROUTER: OnceLock<Arc<TraceRouter>> = OnceLock::new();

impl TraceRouter {
    /// The process-wide router (shared across gateways; job ids are
    /// pool-scoped, so each reactor registers only ids it submitted —
    /// distinct pools can collide on raw ids, which is why routes carry
    /// their own wake handle and the reactor matches results to
    /// connections itself).
    pub fn global() -> &'static Arc<TraceRouter> {
        ROUTER.get_or_init(|| {
            Arc::new(TraceRouter {
                routes: Mutex::new(HashMap::new()),
            })
        })
    }

    /// Opens a route for `job`: returns the receiver the reactor drains.
    /// Installs the router as the global subscriber if this is the first
    /// live route. Call **before** submitting the job so no records are
    /// missed.
    pub fn register(&self, job: u64, wake: Arc<polling::Poller>) -> Receiver<String> {
        let (tx, rx) = mpsc::channel();
        let mut routes = self.routes.lock().expect("router lock");
        if routes.is_empty() {
            set_subscriber(Arc::clone(TraceRouter::global()) as Arc<dyn Subscriber>);
        }
        routes.insert(job, Route { tx, wake });
        rx
    }

    /// Closes the route for `job`; uninstalls the subscriber when no
    /// routes remain.
    pub fn unregister(&self, job: u64) {
        let mut routes = self.routes.lock().expect("router lock");
        routes.remove(&job);
        if routes.is_empty() {
            clear_subscriber();
        }
    }
}

impl Subscriber for TraceRouter {
    fn record(&self, rec: &TraceRecord<'_>) {
        let Some(job) = rec.job else { return };
        let routes = self.routes.lock().expect("router lock");
        if let Some(route) = routes.get(&job) {
            // A dropped receiver (conn died) is fine; the reactor
            // unregisters the route when it reaps the connection.
            let _ = route.tx.send(cqfd_obs::jsonl::render_record(rec));
            let _ = route.wake.notify();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_job_id_and_uninstalls_when_idle() {
        let router = TraceRouter::global();
        let wake = Arc::new(polling::Poller::new().unwrap());
        let rx = router.register(998877, Arc::clone(&wake));
        // Records on a thread tagged with the job id reach the route.
        let t = std::thread::spawn(|| {
            cqfd_obs::trace::set_current_job(Some(998877));
            cqfd_obs::event!("gateway.test_event", n = 1u64);
            cqfd_obs::trace::set_current_job(None);
        });
        t.join().unwrap();
        let line = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(line.contains("gateway.test_event"), "{line}");
        assert!(line.contains("\"job\":998877"), "{line}");
        // Untagged / other-job records do not.
        let t = std::thread::spawn(|| {
            cqfd_obs::trace::set_current_job(Some(112233));
            cqfd_obs::event!("gateway.other_event", n = 2u64);
            cqfd_obs::trace::set_current_job(None);
        });
        t.join().unwrap();
        router.unregister(998877);
        let leftovers: Vec<String> = rx.try_iter().collect();
        assert!(
            leftovers.iter().all(|l| !l.contains("other_event")),
            "{leftovers:?}"
        );
        // The wake fd was poked at least once for the routed record.
        let mut events = Vec::new();
        wake.wait(&mut events, Some(std::time::Duration::from_millis(10)))
            .unwrap();
    }
}
