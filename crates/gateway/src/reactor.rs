//! The epoll reactor: one thread, many connections, two protocols.
//!
//! The legacy `cqfd serve` daemon spends a whole OS thread per
//! connection; at a few thousand mostly-idle clients that is megabytes of
//! stacks and a scheduler fight. The gateway instead multiplexes every
//! connection onto a single event loop over the [`polling`] shim's
//! level-triggered epoll wrapper:
//!
//! * two listeners — the byte-compatible **line protocol** of
//!   [`cqfd_service::Server`] and an **HTTP/1.1 JSON** ingress — share
//!   the loop; both compile requests to the same [`cqfd_service::Job`],
//!   so a job answers byte-identically on either transport;
//! * each connection is a small state machine (read buffer, write
//!   buffer, one in-flight job) with nonblocking reads/writes and a
//!   **read deadline** that cuts off mid-request stalls without ever
//!   timing out idle keep-alive connections;
//! * admitted jobs pass **per-tenant token buckets**
//!   ([`crate::admission`]) and wait in two bounded **priority lanes**
//!   (interactive drains before batch) in front of the worker pool;
//!   when a bucket or lane is exhausted the request is **shed** with a
//!   retry-after hint (`busy retry-after-ms=` / HTTP 429) instead of
//!   queueing unboundedly;
//! * the loop never polls: the pool's completion hook
//!   ([`cqfd_service::PoolConfig::on_complete`]) pokes the poller's
//!   eventfd when a result is ready, and the [`crate::stream`] router
//!   does the same for live trace records, so the reactor sleeps in
//!   `epoll_wait` whenever there is nothing to do.

use crate::admission::{Admission, Decision, Quota};
use crate::http;
use crate::json;
use crate::stream::TraceRouter;
use cqfd_service::debug as svc_debug;
use cqfd_service::{
    lint_job, parse_request, Job, JobHandle, JobRequest, Pool, PoolConfig, Priority, SubmitError,
    PROTOCOL_VERSION,
};
use polling::{Event, Poller};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Event key of the line-protocol listener.
const LINE_LISTENER: usize = 0;
/// Event key of the HTTP listener.
const HTTP_LISTENER: usize = 1;
/// First key handed to an accepted connection.
const FIRST_CONN_KEY: usize = 2;
/// Stop reading from a connection whose buffered input outgrows this
/// (backpressure toward the peer; parsing drains it back down).
const READ_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Everything the gateway can be told at bind time.
pub struct GatewayConfig {
    /// Worker-pool sizing (and optionally a result store). The gateway
    /// installs its own completion hook on top.
    pub pool: PoolConfig,
    /// Bounded depth of **each** priority lane; a full lane sheds.
    pub lane_capacity: usize,
    /// Per-tenant token-bucket quotas.
    pub quotas: Vec<(String, Quota)>,
    /// Quota for tenants without an explicit one (`None` = unlimited).
    pub default_quota: Option<Quota>,
    /// HTTP head/body size bounds.
    pub http_limits: http::Limits,
    /// Line-protocol request-line size bound.
    pub max_line_bytes: usize,
    /// How long a *started* request may stall before the connection is
    /// cut (the reactor's slow-loris guard). Idle connections with no
    /// partial request pending never time out.
    pub read_deadline: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            pool: PoolConfig::default(),
            lane_capacity: 1024,
            quotas: Vec::new(),
            default_quota: None,
            http_limits: http::Limits::default(),
            max_line_bytes: 64 * 1024,
            read_deadline: Duration::from_secs(10),
        }
    }
}

impl GatewayConfig {
    /// Replaces the pool configuration.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the per-lane queue bound.
    pub fn with_lane_capacity(mut self, cap: usize) -> Self {
        self.lane_capacity = cap.max(1);
        self
    }

    /// Adds a per-tenant quota.
    pub fn with_quota(mut self, tenant: impl Into<String>, quota: Quota) -> Self {
        self.quotas.push((tenant.into(), quota));
        self
    }

    /// Sets the default quota for tenants without an explicit one.
    pub fn with_default_quota(mut self, quota: Quota) -> Self {
        self.default_quota = Some(quota);
        self
    }

    /// Sets the mid-request stall deadline.
    pub fn with_read_deadline(mut self, deadline: Duration) -> Self {
        self.read_deadline = deadline;
        self
    }

    /// Sets the line-protocol request-line bound.
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(1024);
        self
    }

    /// Sets the HTTP parsing limits.
    pub fn with_http_limits(mut self, limits: http::Limits) -> Self {
        self.http_limits = limits;
        self
    }
}

/// A bound, not-yet-running gateway (bind first, learn the port, then
/// [`run`](Gateway::run) or [`spawn`](Gateway::spawn) — same shape as
/// [`cqfd_service::Server`]).
pub struct Gateway {
    line_listener: Option<TcpListener>,
    http_listener: Option<TcpListener>,
    config: GatewayConfig,
    poller: Arc<Poller>,
    stop: Arc<AtomicBool>,
}

/// Handle to a gateway running on a background thread.
pub struct GatewayHandle {
    line_addr: Option<SocketAddr>,
    http_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    thread: JoinHandle<()>,
}

impl Gateway {
    /// Binds the requested listeners (at least one of `line_addr` /
    /// `http_addr`) and sets up the poller. Addresses are `host:port`
    /// strings; port 0 binds an ephemeral port.
    pub fn bind(
        line_addr: Option<&str>,
        http_addr: Option<&str>,
        config: GatewayConfig,
    ) -> io::Result<Gateway> {
        if line_addr.is_none() && http_addr.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one listener (line and/or http)",
            ));
        }
        let poller = Arc::new(Poller::new()?);
        let bind_one = |addr: &str, key: usize| -> io::Result<TcpListener> {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            poller.add(&l, Event::readable(key))?;
            Ok(l)
        };
        let line_listener = line_addr.map(|a| bind_one(a, LINE_LISTENER)).transpose()?;
        let http_listener = http_addr.map(|a| bind_one(a, HTTP_LISTENER)).transpose()?;
        Ok(Gateway {
            line_listener,
            http_listener,
            config,
            poller,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound line-protocol address, if that listener was requested.
    pub fn line_addr(&self) -> Option<SocketAddr> {
        self.line_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The bound HTTP address, if that listener was requested.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Runs the reactor on the calling thread until a client sends
    /// `shutdown` or [`GatewayHandle::shutdown`] fires. All connections,
    /// pool workers, and in-flight jobs are drained/joined on return.
    pub fn run(self) {
        let Gateway {
            line_listener,
            http_listener,
            config,
            poller,
            stop,
        } = self;
        // Job completions must wake the sleeping reactor: the pool's
        // workers poke the eventfd after every result send, and eventfd
        // readability persists until drained, so the wakeup can never be
        // lost between a `try_wait` miss and the next `epoll_wait`.
        let wake = Arc::clone(&poller);
        let pool_config = config.pool.clone().with_completion_hook(Arc::new(move || {
            let _ = wake.notify();
        }));
        let mut reactor = Reactor {
            pool: Pool::new(pool_config),
            poller,
            stop,
            line_listener,
            http_listener,
            conns: HashMap::new(),
            next_key: FIRST_CONN_KEY,
            lanes: [VecDeque::new(), VecDeque::new()],
            pending: Vec::new(),
            profiles: Vec::new(),
            admission: Admission::new(config.quotas.clone(), config.default_quota),
            submit_calls: 0,
            deadline_count: 0,
            meters: Meters::new(),
            config,
        };
        reactor.run();
    }

    /// Runs the gateway on a background thread.
    pub fn spawn(self) -> io::Result<GatewayHandle> {
        let line_addr = self.line_addr();
        let http_addr = self.http_addr();
        let stop = Arc::clone(&self.stop);
        let poller = Arc::clone(&self.poller);
        let thread = std::thread::Builder::new()
            .name("cqfd-gateway".into())
            .spawn(move || self.run())?;
        Ok(GatewayHandle {
            line_addr,
            http_addr,
            stop,
            poller,
            thread,
        })
    }
}

impl GatewayHandle {
    /// The line-protocol address, if that listener exists.
    pub fn line_addr(&self) -> Option<SocketAddr> {
        self.line_addr
    }

    /// The HTTP address, if that listener exists.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Stops the reactor and joins it (and, transitively, the pool).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
        let _ = self.thread.join();
    }

    /// Waits for the reactor to stop on its own (a client's `shutdown`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Which wire protocol a connection speaks (fixed by the listener that
/// accepted it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    Line,
    Http,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    key: usize,
    proto: Proto,
    /// Bytes read but not yet parsed.
    rbuf: Vec<u8>,
    /// Bytes rendered but not yet written; `wpos` marks the flushed
    /// prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// When the currently-started (partial) request must complete.
    read_deadline: Option<Instant>,
    /// A job is in flight for this connection; requests behind it stay
    /// buffered (natural pipelining).
    busy: bool,
    /// The in-flight HTTP response is chunked (streaming): finish with a
    /// result chunk + terminator instead of a full response.
    http_streaming: bool,
    /// No further requests; close once the write buffer drains and no
    /// job is in flight.
    closing: bool,
    /// Tear down now (I/O error / EOF).
    dead: bool,
    /// Interest last registered with the poller `(readable, writable)`.
    interest: (bool, bool),
}

impl Conn {
    fn push(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    fn push_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Nonblocking flush of the write buffer.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
    }

    fn has_unsent(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// A job admitted past quota, waiting in a priority lane for a pool slot.
struct Queued {
    conn_key: usize,
    job: Job,
    tenant: String,
    stream: bool,
    enqueued: Instant,
}

/// A job submitted to the pool, awaiting its result.
struct Pending {
    conn_key: usize,
    handle: JobHandle,
    /// Live trace lines from the [`TraceRouter`], for `stream=1` jobs.
    stream_rx: Option<Receiver<String>>,
    /// The connection died; discard the result when it lands.
    orphaned: bool,
}

/// A sampling-profile window running on a detached `cqfd-profiler`
/// thread for one connection. The reactor must never block for the
/// window (it is the only thread serving every other connection), so the
/// sampler publishes its folded-stack text here and pokes the poller;
/// the reactor delivers it on the next loop turn.
struct ProfileWait {
    conn_key: usize,
    /// Close the connection after delivering (HTTP `Connection: close`).
    close_after: bool,
    /// `Some(text)` once the window finished.
    done: Arc<Mutex<Option<String>>>,
}

/// The gateway's obs instruments.
struct Meters {
    conns_line: cqfd_obs::Gauge,
    conns_http: cqfd_obs::Gauge,
    requests_line: cqfd_obs::Counter,
    requests_http: cqfd_obs::Counter,
    sheds_quota: cqfd_obs::Counter,
    sheds_overload: cqfd_obs::Counter,
}

impl Meters {
    fn new() -> Meters {
        let reg = cqfd_obs::global();
        let conns = |proto| {
            reg.gauge(
                "cqfd_gateway_connections",
                "Open gateway connections by protocol.",
                &[("proto", proto)],
            )
        };
        let requests = |proto| {
            reg.counter(
                "cqfd_gateway_requests_total",
                "Job requests received by the gateway, by protocol.",
                &[("proto", proto)],
            )
        };
        let sheds = |reason| {
            reg.counter(
                "cqfd_gateway_sheds_total",
                "Requests shed with a retry-after hint, by cause.",
                &[("reason", reason)],
            )
        };
        Meters {
            conns_line: conns("line"),
            conns_http: conns("http"),
            requests_line: requests("line"),
            requests_http: requests("http"),
            sheds_quota: sheds("quota"),
            sheds_overload: sheds("overload"),
        }
    }

    fn conns(&self, proto: Proto) -> &cqfd_obs::Gauge {
        match proto {
            Proto::Line => &self.conns_line,
            Proto::Http => &self.conns_http,
        }
    }

    fn requests(&self, proto: Proto) -> &cqfd_obs::Counter {
        match proto {
            Proto::Line => &self.requests_line,
            Proto::Http => &self.requests_http,
        }
    }

    /// Per-tenant queue-wait observation; the registry dedupes the lazy
    /// per-tenant family registration.
    fn observe_queue_wait(&self, tenant: &str, wait: Duration) {
        cqfd_obs::global()
            .histogram(
                "cqfd_gateway_queue_wait_seconds",
                "Time a job waited in the gateway's priority lanes before pool dispatch.",
                &[("tenant", tenant)],
                cqfd_obs::Unit::Seconds,
            )
            .observe_duration(wait);
    }
}

/// One decision about an arriving job request.
enum Verdict {
    /// Queued into a lane; the connection is now busy.
    Queued,
    /// Answer `text` (an error or shed reply) and keep the connection.
    Reply(ReplyKind),
}

enum ReplyKind {
    /// A request-level error (`error:` line / HTTP 400).
    Error(String),
    /// Shed with a retry hint.
    Shed { retry_after: Duration },
}

struct Reactor {
    pool: Pool,
    poller: Arc<Poller>,
    stop: Arc<AtomicBool>,
    line_listener: Option<TcpListener>,
    http_listener: Option<TcpListener>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    /// `lanes[0]` interactive, `lanes[1]` batch; interactive drains first.
    lanes: [VecDeque<Queued>; 2],
    pending: Vec<Pending>,
    /// Profile windows in flight on detached sampler threads.
    profiles: Vec<ProfileWait>,
    admission: Admission,
    /// Mirror of the pool's id counter: the reactor is the pool's only
    /// submitter and every `submit` call consumes exactly one id, so the
    /// next job's id is predictable — which lets a streaming job's trace
    /// route be registered *before* the submit, closing the window where
    /// an early record could slip past the router.
    submit_calls: u64,
    /// How many connections currently carry a read deadline (skips the
    /// deadline scan when zero).
    deadline_count: usize,
    meters: Meters,
    config: GatewayConfig,
}

fn lane_index(p: Priority) -> usize {
    match p {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

fn is_version_token(line: &str) -> bool {
    line.strip_prefix('v')
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

fn valid_tenant(t: &str) -> bool {
    !t.is_empty()
        && t.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Does the raw job line already carry this `key=` routing token?
fn has_meta(line: &str, key: &str) -> bool {
    line.split_whitespace().skip(1).any(|t| t.starts_with(key))
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.next_deadline().map(|d| {
                d.checked_duration_since(Instant::now())
                    .unwrap_or(Duration::ZERO)
            });
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let mut touched: Vec<usize> = Vec::new();
            for ev in &events {
                match ev.key {
                    LINE_LISTENER => self.accept(Proto::Line, &mut touched),
                    HTTP_LISTENER => self.accept(Proto::Http, &mut touched),
                    key => {
                        if ev.readable {
                            self.read_conn(key);
                            self.process_input(key);
                        }
                        if ev.writable {
                            if let Some(conn) = self.conns.get_mut(&key) {
                                conn.flush();
                            }
                        }
                        touched.push(key);
                    }
                }
            }
            self.drain_pending(&mut touched);
            self.drain_profiles(&mut touched);
            self.dispatch_lanes();
            self.enforce_deadlines(&mut touched);
            touched.sort_unstable();
            touched.dedup();
            for key in touched {
                self.finish_conn(key);
            }
        }
        // Shutdown: cancel in-flight jobs (cooperative — the chase/creep
        // loops stop at their next poll), tear down routes, and let the
        // pool drain and join on drop.
        for p in &self.pending {
            p.handle.cancel();
            if p.stream_rx.is_some() {
                TraceRouter::global().unregister(p.handle.id);
            }
        }
    }

    /// The soonest read deadline across connections, if any.
    fn next_deadline(&self) -> Option<Instant> {
        if self.deadline_count == 0 {
            return None;
        }
        self.conns.values().filter_map(|c| c.read_deadline).min()
    }

    fn accept(&mut self, proto: Proto, touched: &mut Vec<usize>) {
        loop {
            let listener = match proto {
                Proto::Line => self.line_listener.as_ref(),
                Proto::Http => self.http_listener.as_ref(),
            };
            let Some(listener) = listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_key;
                    self.next_key += 1;
                    let mut conn = Conn {
                        stream,
                        key,
                        proto,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        read_deadline: None,
                        busy: false,
                        http_streaming: false,
                        closing: false,
                        dead: false,
                        interest: (true, false),
                    };
                    if proto == Proto::Line {
                        conn.push_line(&format!("cqfd-service {PROTOCOL_VERSION}"));
                        conn.flush();
                    }
                    if self.poller.add(&conn.stream, Event::readable(key)).is_err() {
                        continue;
                    }
                    self.meters.conns(proto).inc();
                    self.conns.insert(key, conn);
                    touched.push(key);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Nonblocking read into the connection's buffer, up to the
    /// high-water mark.
    fn read_conn(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        while conn.rbuf.len() < READ_HIGH_WATER {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Parses and answers as many buffered requests as possible. Stops at
    /// a partial request, a queued job (one in flight per connection), or
    /// a closing/dead connection.
    fn process_input(&mut self, key: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            // A dead connection (EOF already seen) still gets its buffered
            // requests parsed: a client that writes `shutdown` and closes in
            // one breath must not have the command dropped just because the
            // FIN rode in with the data. Replies are discarded at reap.
            if conn.busy || conn.closing {
                break;
            }
            let made_progress = match conn.proto {
                Proto::Line => self.process_line(key),
                Proto::Http => self.process_http(key),
            };
            if !made_progress {
                break;
            }
        }
        // Deadline bookkeeping: a partial request pending on an otherwise
        // idle connection starts the stall clock; anything else clears it.
        if let Some(conn) = self.conns.get_mut(&key) {
            let stalled = !conn.rbuf.is_empty() && !conn.busy && !conn.closing && !conn.dead;
            match (conn.read_deadline, stalled) {
                (None, true) => {
                    conn.read_deadline = Some(Instant::now() + self.config.read_deadline);
                    self.deadline_count += 1;
                }
                (Some(_), false) => {
                    conn.read_deadline = None;
                    self.deadline_count -= 1;
                }
                _ => {}
            }
        }
    }

    /// Handles one line-protocol request from the buffer. Returns whether
    /// a full line was consumed.
    fn process_line(&mut self, key: usize) -> bool {
        let line = {
            let Some(conn) = self.conns.get_mut(&key) else {
                return false;
            };
            let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                if conn.rbuf.len() > self.config.max_line_bytes {
                    conn.push_line(&format!(
                        "error: request line exceeds {} bytes",
                        self.config.max_line_bytes
                    ));
                    conn.closing = true;
                }
                return false;
            };
            let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
            String::from_utf8_lossy(&raw[..pos])
                .trim_end_matches('\r')
                .trim()
                .to_string()
        };
        match line.as_str() {
            "quit" => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.push_line("bye");
                conn.closing = true;
                return true;
            }
            "shutdown" => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.push_line("bye");
                conn.closing = true;
                self.stop.store(true, Ordering::SeqCst);
                return true;
            }
            "metrics" => {
                let text = cqfd_obs::prom::render(&cqfd_obs::global().snapshot());
                let conn = self.conns.get_mut(&key).expect("conn alive");
                let mut reply = format!("metrics_lines={}", text.lines().count());
                for l in text.lines() {
                    reply.push('\n');
                    reply.push_str(l);
                }
                conn.push_line(&reply);
                return true;
            }
            "flight" => {
                let reply = svc_debug::framed_reply("flight", &svc_debug::flight_text(256));
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.push_line(&reply);
                return true;
            }
            "attribution" => {
                let reply = svc_debug::framed_reply("attribution", &svc_debug::attribution_text());
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.push_line(&reply);
                return true;
            }
            v if v == "profile" || v.starts_with("profile ") => {
                let args = v.strip_prefix("profile").unwrap_or_default().to_string();
                match svc_debug::parse_profile_args(&args) {
                    Ok((seconds, hz)) => self.start_profile(key, seconds, hz, false),
                    Err(e) => {
                        let conn = self.conns.get_mut(&key).expect("conn alive");
                        conn.push_line(&format!("error: {e}"));
                    }
                }
                return true;
            }
            v if is_version_token(v) => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                if v == PROTOCOL_VERSION {
                    conn.push_line(&format!("ok {PROTOCOL_VERSION}"));
                } else {
                    conn.push_line(&format!(
                        "error: unsupported protocol version `{v}` \
                         (server speaks {PROTOCOL_VERSION})"
                    ));
                    conn.closing = true;
                }
                return true;
            }
            _ => {}
        }
        match parse_request(&line) {
            Ok(None) => true, // blank / comment: no reply
            Ok(Some(req)) => {
                match self.admit(key, req, Proto::Line) {
                    Verdict::Queued => {}
                    Verdict::Reply(kind) => {
                        let conn = self.conns.get_mut(&key).expect("conn alive");
                        match kind {
                            ReplyKind::Error(e) => conn.push_line(&format!("error: {e}")),
                            ReplyKind::Shed { retry_after } => conn.push_line(&format!(
                                "busy retry-after-ms={}",
                                retry_after.as_millis().max(1)
                            )),
                        }
                    }
                }
                true
            }
            Err(e) => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.push_line(&format!("error: {e}"));
                true
            }
        }
    }

    /// Handles one HTTP request from the buffer. Returns whether a full
    /// request was consumed.
    fn process_http(&mut self, key: usize) -> bool {
        let parsed = {
            let Some(conn) = self.conns.get_mut(&key) else {
                return false;
            };
            http::parse_request(&conn.rbuf, &self.config.http_limits)
        };
        let req = match parsed {
            http::Parse::Partial => return false,
            http::Parse::Bad { status, reason } => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                let body = format!("{{\"error\":\"{}\"}}", json::escape(&reason));
                conn.push(&http::response(
                    status,
                    status_reason(status),
                    "application/json",
                    &[("Connection", "close")],
                    body.as_bytes(),
                ));
                conn.closing = true;
                return false;
            }
            http::Parse::Complete { value, consumed } => {
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.rbuf.drain(..consumed);
                value
            }
        };
        let close_after = req
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let (path, query) = req
            .target
            .split_once('?')
            .unwrap_or((req.target.as_str(), ""));
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => {
                let body = self.healthz_body();
                self.respond(key, 200, "text/plain", body.as_bytes(), close_after);
            }
            ("GET", "/debug/flight") => {
                let text = svc_debug::flight_text(256);
                self.respond(key, 200, "text/plain", text.as_bytes(), close_after);
            }
            ("GET", "/debug/attribution") => {
                let text = svc_debug::attribution_text();
                self.respond(key, 200, "text/plain", text.as_bytes(), close_after);
            }
            ("GET", "/debug/profile") => {
                // Query string reuses the control-word grammar: `&`-joined
                // `seconds=N`/`hz=N` pairs become whitespace-joined tokens.
                match svc_debug::parse_profile_args(&query.replace('&', " ")) {
                    Ok((seconds, hz)) => self.start_profile(key, seconds, hz, close_after),
                    Err(e) => {
                        let body = format!("{{\"error\":\"{}\"}}", json::escape(&e));
                        self.respond_with(
                            key,
                            400,
                            "application/json",
                            &[],
                            body.as_bytes(),
                            close_after,
                        );
                    }
                }
            }
            ("GET", "/metrics") => {
                let text = cqfd_obs::prom::render(&cqfd_obs::global().snapshot());
                self.respond(
                    key,
                    200,
                    "text/plain; version=0.0.4",
                    text.as_bytes(),
                    close_after,
                );
            }
            ("POST", "/v1/jobs") => match self.http_job_request(&req) {
                Ok(jr) => {
                    let streaming = jr.stream;
                    match self.admit(key, jr, Proto::Http) {
                        Verdict::Queued => {
                            let conn = self.conns.get_mut(&key).expect("conn alive");
                            conn.closing = close_after; // still answers the in-flight job
                            if streaming {
                                conn.http_streaming = true;
                                conn.push(&http::chunked_head(
                                    200,
                                    "OK",
                                    "application/x-ndjson",
                                    &[],
                                ));
                            }
                        }
                        Verdict::Reply(ReplyKind::Error(e)) => {
                            let body = format!("{{\"error\":\"{}\"}}", json::escape(&e));
                            self.respond_with(
                                key,
                                400,
                                "application/json",
                                &[],
                                body.as_bytes(),
                                close_after,
                            );
                        }
                        Verdict::Reply(ReplyKind::Shed { retry_after }) => {
                            let ms = retry_after.as_millis().max(1);
                            let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
                            let body = format!("{{\"error\":\"busy\",\"retry_after_ms\":{ms}}}");
                            self.respond_with(
                                key,
                                429,
                                "application/json",
                                &[("Retry-After", &secs.to_string())],
                                body.as_bytes(),
                                close_after,
                            );
                        }
                    }
                }
                Err(e) => {
                    let body = format!("{{\"error\":\"{}\"}}", json::escape(&e));
                    self.respond_with(
                        key,
                        400,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        close_after,
                    );
                }
            },
            _ => {
                let body = format!(
                    "{{\"error\":\"no such endpoint: {} {}\"}}",
                    json::escape(&req.method),
                    json::escape(&req.target)
                );
                self.respond_with(
                    key,
                    404,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    close_after,
                );
            }
        }
        true
    }

    /// Builds the [`JobRequest`] for a `POST /v1/jobs` body, merging the
    /// three metadata channels: tokens inside the job line win, then JSON
    /// body fields, then `X-Cqfd-*` headers.
    fn http_job_request(&self, req: &http::Request) -> Result<JobRequest, String> {
        let pairs = json::parse_object(&req.body).map_err(|e| format!("bad JSON body: {e}"))?;
        let job_line = json::get(&pairs, "job")
            .and_then(|v| v.as_str())
            .ok_or("body needs a string `job` field")?;
        let mut jr = parse_request(job_line)?.ok_or("`job` is empty (blank line or comment)")?;
        if !has_meta(job_line, "tenant=") {
            let fallback = json::get(&pairs, "tenant")
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .or_else(|| req.header("x-cqfd-tenant").map(str::to_string));
            if let Some(t) = fallback {
                if !valid_tenant(&t) {
                    return Err(format!("bad tenant `{t}`"));
                }
                jr.tenant = t;
            }
        }
        if !has_meta(job_line, "priority=") {
            let fallback = json::get(&pairs, "priority")
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .or_else(|| req.header("x-cqfd-priority").map(str::to_string));
            if let Some(p) = fallback {
                jr.priority = Priority::parse(&p)?;
            }
        }
        if !has_meta(job_line, "stream=") {
            let body_stream = json::get(&pairs, "stream").map(|v| v.truthy());
            let header_stream = req
                .header("x-cqfd-stream")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"));
            if let Some(s) = body_stream.or(header_stream) {
                jr.stream = s;
            }
        }
        Ok(jr)
    }

    /// The admission pipeline: lint gate → tenant token bucket → lane
    /// capacity. On success the job is queued and the connection marked
    /// busy.
    fn admit(&mut self, key: usize, req: JobRequest, proto: Proto) -> Verdict {
        self.meters.requests(proto).inc();
        // A job whose rule set carries error-severity diagnostics would
        // chase garbage; reject it before it costs a quota token.
        let report = lint_job(&req.job);
        if let Some(d) = report.first_error() {
            return Verdict::Reply(ReplyKind::Error(format!("lint: {}", d.render_human())));
        }
        match self.admission.check(&req.tenant, Instant::now()) {
            Decision::Shed { retry_after } => {
                self.meters.sheds_quota.inc();
                return Verdict::Reply(ReplyKind::Shed { retry_after });
            }
            Decision::Admit => {}
        }
        let lane = lane_index(req.priority);
        if self.lanes[lane].len() >= self.config.lane_capacity {
            self.meters.sheds_overload.inc();
            // No bucket to consult here; hint proportionally to how much
            // work is already waiting.
            let depth = self.lanes[0].len() + self.lanes[1].len();
            let retry_after = Duration::from_millis((50 + 2 * depth as u64).min(2_000));
            return Verdict::Reply(ReplyKind::Shed { retry_after });
        }
        self.lanes[lane].push_back(Queued {
            conn_key: key,
            job: req.job,
            tenant: req.tenant,
            stream: req.stream,
            enqueued: Instant::now(),
        });
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.busy = true;
        }
        Verdict::Queued
    }

    /// Moves queued jobs into the pool, interactive lane first, until the
    /// pool pushes back.
    fn dispatch_lanes(&mut self) {
        for lane in [0, 1] {
            while let Some(q) = self.lanes[lane].front() {
                // Submit a clone: `Pool::submit` consumes its job even
                // when the bounded queue rejects it.
                let job = q.job.clone();
                let predicted_id = self.submit_calls + 1;
                let rx = q.stream.then(|| {
                    TraceRouter::global().register(predicted_id, Arc::clone(&self.poller))
                });
                self.submit_calls += 1;
                match self.pool.submit(job) {
                    Ok(handle) => {
                        debug_assert_eq!(
                            handle.id, predicted_id,
                            "reactor is the pool's only submitter"
                        );
                        let q = self.lanes[lane].pop_front().expect("front exists");
                        self.meters
                            .observe_queue_wait(&q.tenant, q.enqueued.elapsed());
                        self.pending.push(Pending {
                            conn_key: q.conn_key,
                            handle,
                            stream_rx: rx,
                            orphaned: false,
                        });
                    }
                    Err(SubmitError::QueueFull) => {
                        if rx.is_some() {
                            TraceRouter::global().unregister(predicted_id);
                        }
                        return; // pool full: batch lane can't help either
                    }
                }
            }
        }
    }

    /// Forwards live trace lines and delivers finished results.
    fn drain_pending(&mut self, touched: &mut Vec<usize>) {
        let mut i = 0;
        while i < self.pending.len() {
            self.forward_stream(i, touched);
            let done = self.pending[i].handle.try_wait();
            match done {
                Some(result) => {
                    // Records can land between the drain above and the
                    // result send; catch the stragglers before finishing.
                    self.forward_stream(i, touched);
                    let p = self.pending.swap_remove(i);
                    if p.stream_rx.is_some() {
                        TraceRouter::global().unregister(p.handle.id);
                    }
                    if !p.orphaned {
                        self.deliver_result(p.conn_key, &result);
                        touched.push(p.conn_key);
                    }
                }
                None => i += 1,
            }
        }
    }

    /// Drains `pending[i]`'s trace channel into its connection.
    fn forward_stream(&mut self, i: usize, touched: &mut Vec<usize>) {
        let p = &self.pending[i];
        let Some(rx) = &p.stream_rx else { return };
        let conn_key = p.conn_key;
        let orphaned = p.orphaned;
        let mut lines: Vec<String> = Vec::new();
        while let Ok(line) = rx.try_recv() {
            lines.push(line);
        }
        if lines.is_empty() || orphaned {
            return;
        }
        if let Some(conn) = self.conns.get_mut(&conn_key) {
            for line in lines {
                match conn.proto {
                    Proto::Line => conn.push_line(&format!("trace_event {line}")),
                    Proto::Http => {
                        let mut data = line.into_bytes();
                        data.push(b'\n');
                        conn.push(&http::chunk(&data));
                    }
                }
            }
            touched.push(conn_key);
        }
    }

    /// Renders a finished job's answer onto its connection and resumes
    /// parsing any pipelined requests behind it.
    fn deliver_result(&mut self, key: usize, result: &cqfd_service::JobResult) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        match conn.proto {
            Proto::Line => {
                conn.push_line(&result.render_protocol());
            }
            Proto::Http => {
                let body = format!(
                    "{{\"id\":{},\"kind\":\"{}\",\"verdict\":\"{}\",\"result\":\"{}\"}}",
                    result.id,
                    result.kind,
                    result.outcome.verdict(),
                    json::escape(&result.render_protocol()),
                );
                if conn.http_streaming {
                    let mut data = body.into_bytes();
                    data.push(b'\n');
                    conn.push(&http::chunk(&data));
                    conn.push(http::CHUNK_END);
                    conn.http_streaming = false;
                } else {
                    let close = conn.closing;
                    conn.push(&http::response(
                        200,
                        "OK",
                        "application/json",
                        if close {
                            &[("Connection", "close")]
                        } else {
                            &[]
                        },
                        body.as_bytes(),
                    ));
                }
            }
        }
        conn.busy = false;
        self.process_input(key);
    }

    /// Cuts off connections whose started request missed its deadline.
    fn enforce_deadlines(&mut self, touched: &mut Vec<usize>) {
        if self.deadline_count == 0 {
            return;
        }
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .values()
            .filter(|c| c.read_deadline.is_some_and(|d| d <= now))
            .map(|c| c.key)
            .collect();
        for key in expired {
            let ms = self.config.read_deadline.as_millis();
            let conn = self.conns.get_mut(&key).expect("conn alive");
            conn.read_deadline = None;
            self.deadline_count -= 1;
            match conn.proto {
                Proto::Line => {
                    conn.push_line(&format!("error: request line not completed within {ms} ms"));
                }
                Proto::Http => {
                    let body = format!("{{\"error\":\"request not completed within {ms} ms\"}}");
                    conn.push(&http::response(
                        408,
                        "Request Timeout",
                        "application/json",
                        &[("Connection", "close")],
                        body.as_bytes(),
                    ));
                }
            }
            conn.closing = true;
            touched.push(key);
        }
    }

    /// Flushes, re-registers interest, and reaps a connection after any
    /// activity touched it.
    fn finish_conn(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        conn.flush();
        let drained = !conn.has_unsent();
        if conn.dead || (conn.closing && drained && !conn.busy) {
            self.reap(key);
            return;
        }
        let conn = self.conns.get_mut(&key).expect("conn alive");
        let want = (
            !conn.closing && conn.rbuf.len() < READ_HIGH_WATER,
            conn.has_unsent(),
        );
        if want != conn.interest {
            let ev = Event {
                key,
                readable: want.0,
                writable: want.1,
            };
            if self.poller.modify(&conn.stream, ev).is_err() {
                conn.dead = true;
                self.reap(key);
                return;
            }
            conn.interest = want;
        }
    }

    /// Removes a connection: deregisters it, frees its deadline slot, and
    /// orphans any job still in flight for it (cancelled cooperatively;
    /// the result is discarded when it lands).
    fn reap(&mut self, key: usize) {
        let Some(conn) = self.conns.remove(&key) else {
            return;
        };
        let _ = self.poller.delete(&conn.stream);
        if conn.read_deadline.is_some() {
            self.deadline_count -= 1;
        }
        self.meters.conns(conn.proto).dec();
        self.lanes
            .iter_mut()
            .for_each(|lane| lane.retain(|q| q.conn_key != key));
        for p in &mut self.pending {
            if p.conn_key == key && !p.orphaned {
                p.orphaned = true;
                p.handle.cancel();
                if p.stream_rx.take().is_some() {
                    TraceRouter::global().unregister(p.handle.id);
                }
            }
        }
    }

    /// The `/healthz` readiness payload. The first line stays the bare
    /// `ok` the original liveness probe promised; the rest is one
    /// `key=value` per line so load balancers can gate on queue depth or
    /// store reachability without parsing JSON.
    fn healthz_body(&self) -> String {
        let store = match self.pool.store() {
            None => "absent",
            Some(s) => {
                if s.stat().is_ok() {
                    "ok"
                } else {
                    "error"
                }
            }
        };
        format!(
            "ok\nworkers={}\nqueue_depth={}\nlane_interactive_depth={}\nlane_batch_depth={}\nstore={store}\n",
            self.pool.worker_count(),
            self.pool.queue_depth(),
            self.lanes[0].len(),
            self.lanes[1].len(),
        )
    }

    /// Kicks off a sampling window for one connection on a detached
    /// `cqfd-profiler` thread. The connection is marked busy for the
    /// window so pipelined requests behind it queue up (same rule as a
    /// job); `drain_profiles` delivers the folded stacks when the sampler
    /// pokes the poller.
    fn start_profile(&mut self, key: usize, seconds: u64, hz: u32, close_after: bool) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        conn.busy = true;
        let done: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&done);
        let poller = Arc::clone(&self.poller);
        let spawned = std::thread::Builder::new()
            .name("cqfd-profiler".into())
            .spawn(move || {
                let text = svc_debug::profile_folded(seconds, hz);
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(text);
                let _ = poller.notify();
            });
        match spawned {
            Ok(_) => self.profiles.push(ProfileWait {
                conn_key: key,
                close_after,
                done,
            }),
            Err(_) => {
                // Could not spawn the sampler; fail the request rather
                // than leave the connection busy forever.
                let conn = self.conns.get_mut(&key).expect("conn alive");
                conn.busy = false;
                match conn.proto {
                    Proto::Line => conn.push_line("error: could not start profiler thread"),
                    Proto::Http => {
                        let body = b"{\"error\":\"could not start profiler thread\"}";
                        self.respond(key, 500, "application/json", body, close_after);
                    }
                }
            }
        }
    }

    /// Delivers finished profile windows to their connections.
    fn drain_profiles(&mut self, touched: &mut Vec<usize>) {
        let mut i = 0;
        while i < self.profiles.len() {
            let text = {
                let pw = &self.profiles[i];
                pw.done.lock().unwrap_or_else(|e| e.into_inner()).take()
            };
            let Some(text) = text else {
                i += 1;
                continue;
            };
            let pw = self.profiles.swap_remove(i);
            let Some(conn) = self.conns.get_mut(&pw.conn_key) else {
                continue; // connection died mid-window; drop the text
            };
            match conn.proto {
                Proto::Line => {
                    let reply = svc_debug::framed_reply("profile", &text);
                    conn.push_line(&reply);
                    conn.busy = false;
                }
                Proto::Http => {
                    conn.busy = false;
                    self.respond(
                        pw.conn_key,
                        200,
                        "text/plain",
                        text.as_bytes(),
                        pw.close_after,
                    );
                }
            }
            touched.push(pw.conn_key);
            self.process_input(pw.conn_key);
        }
    }

    /// Sends a plain (non-streaming) HTTP response.
    fn respond(&mut self, key: usize, status: u16, ctype: &str, body: &[u8], close: bool) {
        self.respond_with(key, status, ctype, &[], body, close);
    }

    fn respond_with(
        &mut self,
        key: usize,
        status: u16,
        ctype: &str,
        extra: &[(&str, &str)],
        body: &[u8],
        close: bool,
    ) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut headers: Vec<(&str, &str)> = extra.to_vec();
        if close {
            headers.push(("Connection", "close"));
        }
        conn.push(&http::response(
            status,
            status_reason(status),
            ctype,
            &headers,
            body,
        ));
        if close {
            conn.closing = true;
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}
