//! # cqfd-gateway — the epoll-reactor front end
//!
//! The thread-per-connection daemon in `cqfd-service` is fine for a
//! handful of trusted clients; it falls over when a determinacy service
//! is put in front of many tenants. This crate is the production front
//! end:
//!
//! * [`reactor`] — a single-threaded epoll event loop (over the vendored
//!   [`polling`] shim, the workspace's one `unsafe` enclave) multiplexing
//!   thousands of connections: nonblocking accept/read/write,
//!   per-connection state machines, read deadlines against slow-loris
//!   stalls, and zero idle polling (job completions and trace records
//!   wake the loop through the poller's eventfd);
//! * two transports on the same loop — the byte-compatible **line
//!   protocol** of `cqfd serve` and an **HTTP/1.1 JSON** ingress
//!   (`POST /v1/jobs`, `GET /metrics`, `GET /healthz`) — both compiling
//!   to the same [`cqfd_service::Job`], so answers are byte-identical
//!   across transports;
//! * [`admission`] — multi-tenant token-bucket quotas and two bounded
//!   priority lanes; saturation **sheds** with a retry-after hint
//!   (`busy retry-after-ms=` / HTTP 429) instead of queueing without
//!   bound;
//! * [`stream`] — live streaming of `cqfd-obs` trace records to
//!   `stream=1` requests (`trace_event` lines / chunked NDJSON);
//! * [`http`] and [`json`] — the hand-rolled, bounded HTTP/1.1 codec and
//!   flat-JSON parser behind the ingress (the build is offline; no
//!   dependency to lean on).
//!
//! ```no_run
//! use cqfd_gateway::{Gateway, GatewayConfig};
//!
//! let gw = Gateway::bind(Some("127.0.0.1:0"), Some("127.0.0.1:0"),
//!                        GatewayConfig::default()).unwrap();
//! let handle = gw.spawn().unwrap();
//! // ... speak either protocol to handle.line_addr() / handle.http_addr()
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod json;
pub mod reactor;
pub mod stream;

pub use admission::{Admission, Decision, Quota};
pub use reactor::{Gateway, GatewayConfig, GatewayHandle};
pub use stream::TraceRouter;
