//! Multi-tenant admission control: token buckets and shed decisions.
//!
//! Every job request names a tenant (defaulting to `anon`). A tenant may
//! have a configured token-bucket quota (`rate` tokens/second, capacity
//! `burst`); unknown tenants fall back to the gateway's default quota,
//! or run unthrottled when no default is set. A request that finds no
//! token is **shed** with a `retry-after` hint — the bucket's own
//! estimate of when a token will exist — rather than queued; the
//! client retries, so quota pressure degrades latency, never
//! correctness.
//!
//! The second shed source — the bounded priority lanes in front of the
//! worker pool — lives in the reactor; this module only decides
//! per-tenant token admission and computes retry hints.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A per-tenant rate limit: `rate` jobs/second sustained, bursts up to
/// `burst` at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Sustained admission rate, tokens per second.
    pub rate: f64,
    /// Bucket capacity (instantaneous burst allowance).
    pub burst: f64,
}

impl Quota {
    /// Parses `rate:burst` (e.g. `100:20`), as taken by the CLI's
    /// `--tenant-quota`/`--default-quota` flags.
    pub fn parse(spec: &str) -> Result<Quota, String> {
        let (rate, burst) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad quota `{spec}` (want rate:burst)"))?;
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("bad quota rate `{rate}`"))?;
        let burst: f64 = burst
            .parse()
            .map_err(|_| format!("bad quota burst `{burst}`"))?;
        if rate.is_nan() || rate <= 0.0 || burst.is_nan() || burst < 1.0 {
            return Err(format!("quota `{spec}` needs rate > 0 and burst ≥ 1"));
        }
        Ok(Quota { rate, burst })
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
    quota: Quota,
}

impl Bucket {
    fn refill(&mut self, now: Instant) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.tokens = (self.tokens + dt * self.quota.rate).min(self.quota.burst);
        self.last_refill = now;
    }
}

/// Whether a request is admitted past the tenant's quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Token taken; dispatch the job.
    Admit,
    /// No token; the client should retry after roughly this long.
    Shed {
        /// Estimated wait until the bucket holds a token again.
        retry_after: Duration,
    },
}

/// Per-tenant token-bucket state for one gateway.
pub struct Admission {
    quotas: HashMap<String, Quota>,
    default_quota: Option<Quota>,
    buckets: HashMap<String, Bucket>,
}

impl Admission {
    /// Builds the admission table. `quotas` are per-tenant overrides;
    /// `default_quota` governs tenants without one (`None` = unlimited).
    pub fn new(quotas: Vec<(String, Quota)>, default_quota: Option<Quota>) -> Admission {
        Admission {
            quotas: quotas.into_iter().collect(),
            default_quota,
            buckets: HashMap::new(),
        }
    }

    /// Takes one token from `tenant`'s bucket if available.
    pub fn check(&mut self, tenant: &str, now: Instant) -> Decision {
        let Some(quota) = self.quotas.get(tenant).copied().or(self.default_quota) else {
            return Decision::Admit;
        };
        let bucket = self
            .buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                tokens: quota.burst,
                last_refill: now,
                quota,
            });
        bucket.refill(now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Decision::Admit
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = deficit / bucket.quota.rate;
            Decision::Shed {
                retry_after: Duration::from_secs_f64(secs.clamp(0.001, 60.0)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_spec_parses_and_rejects_garbage() {
        let q = Quota::parse("100:20").unwrap();
        assert_eq!(q.rate, 100.0);
        assert_eq!(q.burst, 20.0);
        assert!(Quota::parse("100").is_err());
        assert!(Quota::parse("fast:20").is_err());
        assert!(Quota::parse("0:20").is_err());
        assert!(Quota::parse("5:0").is_err());
    }

    #[test]
    fn burst_then_shed_then_refill() {
        let mut adm = Admission::new(
            vec![(
                "acme".into(),
                Quota {
                    rate: 10.0,
                    burst: 2.0,
                },
            )],
            None,
        );
        let t0 = Instant::now();
        assert_eq!(adm.check("acme", t0), Decision::Admit);
        assert_eq!(adm.check("acme", t0), Decision::Admit);
        let Decision::Shed { retry_after } = adm.check("acme", t0) else {
            panic!("third instantaneous request must shed");
        };
        // Deficit of 1 token at 10/s ⇒ ~100ms.
        assert!(retry_after >= Duration::from_millis(50), "{retry_after:?}");
        assert!(retry_after <= Duration::from_millis(200), "{retry_after:?}");
        // After the hinted wait the bucket has a token again.
        assert_eq!(adm.check("acme", t0 + retry_after), Decision::Admit);
        // Unquota'd tenants are unlimited when no default is set.
        for _ in 0..100 {
            assert_eq!(adm.check("other", t0), Decision::Admit);
        }
    }

    #[test]
    fn default_quota_governs_unknown_tenants() {
        let mut adm = Admission::new(
            Vec::new(),
            Some(Quota {
                rate: 1.0,
                burst: 1.0,
            }),
        );
        let t0 = Instant::now();
        assert_eq!(adm.check("anyone", t0), Decision::Admit);
        assert!(matches!(adm.check("anyone", t0), Decision::Shed { .. }));
        // Buckets are per tenant: a different tenant has its own burst.
        assert_eq!(adm.check("someone-else", t0), Decision::Admit);
    }
}
