//! A small, strict HTTP/1.1 codec for the gateway.
//!
//! Hand-rolled (the build is offline, and the gateway needs only a
//! sliver of HTTP): request parsing with `Content-Length` and chunked
//! bodies, bounded head size, pipelining-aware `consumed` accounting,
//! and response rendering — plus the inverse pair
//! ([`render_request`] / [`parse_response`]) used by the load harness
//! and the round-trip property tests.
//!
//! Parsing is **incremental**: the caller hands in its whole read buffer
//! and gets back [`Parse::Complete`] with the number of bytes consumed
//! (pipelined requests stay in the buffer for the next call),
//! [`Parse::Partial`] (read more), or [`Parse::Bad`] with the 4xx status
//! the connection should answer before closing. A malformed request is
//! never silently dropped and can never wedge the reactor: every input
//! resolves to one of the three.

/// Size bounds enforced during parsing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line + headers (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum body bytes, after de-chunking (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Maximum number of header lines (counted against 431).
const MAX_HEADERS: usize = 128;

/// A parsed request (or, for [`parse_response`], the shared field layout
/// is mirrored by [`Response`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (any token; routing rejects what it doesn't know).
    pub method: String,
    /// The request target, e.g. `/v1/jobs`.
    pub target: String,
    /// Header name/value pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked if it arrived chunked.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed response (client side: the load harness and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked if it arrived chunked.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of an incremental parse over a read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse<T> {
    /// One complete message; `consumed` bytes belong to it (anything
    /// after is the next pipelined message).
    Complete {
        /// The parsed message.
        value: T,
        /// Bytes of the buffer this message occupied.
        consumed: usize,
    },
    /// Not enough bytes yet — read more and call again.
    Partial,
    /// Irrecoverably malformed; answer `status` and close.
    Bad {
        /// The 4xx status to answer with.
        status: u16,
        /// Human-readable cause (goes in the error body).
        reason: String,
    },
}

fn bad<T>(status: u16, reason: impl Into<String>) -> Parse<T> {
    Parse::Bad {
        status,
        reason: reason.into(),
    }
}

/// Finds the end of the head (the blank line), returning
/// `(head_bytes, body_start)`. Accepts CRLF and bare-LF line endings.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some((i + 1, i + 2));
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some((i + 1, i + 3));
            }
        }
    }
    None
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Splits head lines (request/status line + headers). Returns `Err` with
/// a 400 reason on a malformed header.
fn parse_headers(lines: &mut std::str::Lines<'_>) -> Result<Vec<(String, String)>, String> {
    let mut headers = Vec::new();
    for line in lines {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(format!("more than {MAX_HEADERS} header lines"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("header line without `:`: `{line}`"));
        };
        if !is_token(name) {
            return Err(format!("bad header name `{name}`"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

/// How the body is framed, per the head.
enum Framing {
    Length(usize),
    Chunked,
    None,
}

fn body_framing(headers: &[(String, String)], limits: &Limits) -> Result<Framing, (u16, String)> {
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    for (name, value) in headers {
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| (400, format!("bad Content-Length `{value}`")))?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err((400, "conflicting Content-Length headers".into()));
                }
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if !value.eq_ignore_ascii_case("chunked") {
                return Err((400, format!("unsupported Transfer-Encoding `{value}`")));
            }
            chunked = true;
        }
    }
    if chunked && content_length.is_some() {
        // Request-smuggling shape: refuse rather than pick a winner.
        return Err((400, "both Transfer-Encoding and Content-Length".into()));
    }
    if chunked {
        return Ok(Framing::Chunked);
    }
    match content_length {
        Some(n) if n > limits.max_body_bytes => Err((
            413,
            format!("body of {n} bytes exceeds limit {}", limits.max_body_bytes),
        )),
        Some(n) => Ok(Framing::Length(n)),
        None => Ok(Framing::None),
    }
}

/// De-chunks a chunked body starting at `buf[start..]`.
fn parse_chunked(buf: &[u8], start: usize, limits: &Limits) -> Parse<(Vec<u8>, usize)> {
    let mut pos = start;
    let mut body = Vec::new();
    loop {
        // The chunk-size line: hex digits, optional `;extension`, CRLF.
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // A size line is tiny; a long run without a newline is garbage,
            // not a partial read.
            return if buf.len() - pos > 128 {
                bad(400, "unterminated chunk-size line")
            } else {
                Parse::Partial
            };
        };
        let line = &buf[pos..pos + nl];
        let line = std::str::from_utf8(line)
            .map(|s| s.trim_end_matches('\r'))
            .unwrap_or("");
        let size_part = line.split(';').next().unwrap_or("").trim();
        let Ok(size) = usize::from_str_radix(size_part, 16) else {
            return bad(400, format!("bad chunk size `{line}`"));
        };
        pos += nl + 1;
        if size == 0 {
            // Trailer section: zero or more header lines, then a blank line.
            loop {
                let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
                    return Parse::Partial;
                };
                let tline = &buf[pos..pos + nl];
                pos += nl + 1;
                if tline.is_empty() || tline == b"\r" {
                    return Parse::Complete {
                        value: (body, pos),
                        consumed: pos,
                    };
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return bad(
                413,
                format!("chunked body exceeds limit {}", limits.max_body_bytes),
            );
        }
        if buf.len() < pos + size + 1 {
            return Parse::Partial;
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        pos += size;
        // The CRLF (or LF) closing the chunk data.
        match buf[pos] {
            b'\n' => pos += 1,
            b'\r' => {
                if buf.len() < pos + 2 {
                    return Parse::Partial;
                }
                if buf[pos + 1] != b'\n' {
                    return bad(400, "chunk data not followed by CRLF");
                }
                pos += 2;
            }
            _ => return bad(400, "chunk data not followed by CRLF"),
        }
    }
}

/// Shared head+body machinery for requests and responses. `first_line`
/// is handed to `on_first` to build the value skeleton.
fn parse_message<T>(
    buf: &[u8],
    limits: &Limits,
    on_first: impl FnOnce(&str) -> Result<T, (u16, String)>,
    assemble: impl FnOnce(T, Vec<(String, String)>, Vec<u8>) -> T,
) -> Parse<T> {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        return if buf.len() > limits.max_head_bytes {
            bad(431, format!("head exceeds {} bytes", limits.max_head_bytes))
        } else {
            Parse::Partial
        };
    };
    if head_len > limits.max_head_bytes {
        return bad(431, format!("head exceeds {} bytes", limits.max_head_bytes));
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return bad(400, "head is not valid UTF-8");
    };
    let mut lines = head.lines();
    let first = lines.next().unwrap_or("");
    let skeleton = match on_first(first) {
        Ok(v) => v,
        Err((status, reason)) => return bad(status, reason),
    };
    let headers = match parse_headers(&mut lines) {
        Ok(h) => h,
        Err(reason) => return bad(400, reason),
    };
    let (body, consumed) = match body_framing(&headers, limits) {
        Err((status, reason)) => return bad(status, reason),
        Ok(Framing::None) => (Vec::new(), body_start),
        Ok(Framing::Length(n)) => {
            if buf.len() < body_start + n {
                return Parse::Partial;
            }
            (buf[body_start..body_start + n].to_vec(), body_start + n)
        }
        Ok(Framing::Chunked) => match parse_chunked(buf, body_start, limits) {
            Parse::Complete {
                value: (body, end), ..
            } => (body, end),
            Parse::Partial => return Parse::Partial,
            Parse::Bad { status, reason } => return bad(status, reason),
        },
    };
    Parse::Complete {
        value: assemble(skeleton, headers, body),
        consumed,
    }
}

/// Incrementally parses one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Parse<Request> {
    parse_message(
        buf,
        limits,
        |first| {
            let mut parts = first.split(' ').filter(|p| !p.is_empty());
            let (Some(method), Some(target), Some(version), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err((400, format!("bad request line `{first}`")));
            };
            if !is_token(method) {
                return Err((400, format!("bad method `{method}`")));
            }
            if !target.starts_with('/') && target != "*" {
                return Err((400, format!("bad request target `{target}`")));
            }
            if version != "HTTP/1.1" && version != "HTTP/1.0" {
                return Err((505, format!("unsupported version `{version}`")));
            }
            Ok(Request {
                method: method.to_string(),
                target: target.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            })
        },
        |mut req, headers, body| {
            req.headers = headers;
            req.body = body;
            req
        },
    )
}

/// Incrementally parses one response from the front of `buf` (client
/// side: the load harness and the integration tests).
pub fn parse_response(buf: &[u8], limits: &Limits) -> Parse<Response> {
    parse_message(
        buf,
        limits,
        |first| {
            let rest = first
                .strip_prefix("HTTP/1.1 ")
                .or_else(|| first.strip_prefix("HTTP/1.0 "))
                .ok_or_else(|| (400u16, format!("bad status line `{first}`")))?;
            let (code, reason) = rest.split_once(' ').unwrap_or((rest, ""));
            let status: u16 = code
                .parse()
                .map_err(|_| (400u16, format!("bad status code `{code}`")))?;
            Ok(Response {
                status,
                reason: reason.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
            })
        },
        |mut resp, headers, body| {
            resp.headers = headers;
            resp.body = body;
            resp
        },
    )
}

/// Renders a complete response with a `Content-Length` body.
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    for (k, v) in extra_headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Renders the head of a chunked (streaming) response; follow with
/// [`chunk`] calls and a final [`CHUNK_END`].
pub fn chunked_head(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
    for (k, v) in extra_headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Renders one chunk of a chunked body. Empty data renders nothing (an
/// empty chunk would terminate the stream).
pub fn chunk(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(data.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminal chunk closing a chunked body.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

/// Renders a request. `chunked = false` frames the body with
/// `Content-Length`; `true` sends it as a single chunk (exercising the
/// server's de-chunker).
pub fn render_request(req: &Request, chunked: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + req.body.len());
    out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", req.method, req.target).as_bytes());
    for (k, v) in &req.headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if chunked {
        out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
        out.extend_from_slice(&chunk(&req.body));
        out.extend_from_slice(CHUNK_END);
    } else {
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", req.body.len()).as_bytes());
        out.extend_from_slice(&req.body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete<T>(p: Parse<T>) -> (T, usize) {
        match p {
            Parse::Complete { value, consumed } => (value, consumed),
            other => panic!("expected Complete, got {:?}", type_name(&other)),
        }
    }

    fn type_name<T>(p: &Parse<T>) -> &'static str {
        match p {
            Parse::Complete { .. } => "Complete",
            Parse::Partial => "Partial",
            Parse::Bad { .. } => "Bad",
        }
    }

    #[test]
    fn get_without_body() {
        let buf = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, consumed) = complete(parse_request(buf, &Limits::default()));
        assert_eq!(consumed, buf.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_with_length_and_pipelined_tail() {
        let one = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd".to_vec();
        let mut buf = one.clone();
        buf.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
        let (req, consumed) = complete(parse_request(&buf, &Limits::default()));
        assert_eq!(consumed, one.len(), "pipelined tail left in the buffer");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn chunked_round_trip() {
        let req = Request {
            method: "POST".into(),
            target: "/v1/jobs".into(),
            headers: vec![("X-Cqfd-Tenant".into(), "acme".into())],
            body: b"{\"job\":\"creep worm=short\"}".to_vec(),
        };
        for chunked in [false, true] {
            let wire = render_request(&req, chunked);
            let (parsed, consumed) = complete(parse_request(&wire, &Limits::default()));
            assert_eq!(consumed, wire.len());
            assert_eq!(parsed.method, req.method);
            assert_eq!(parsed.body, req.body);
            assert_eq!(parsed.header("x-cqfd-tenant"), Some("acme"));
        }
    }

    #[test]
    fn partial_inputs_ask_for_more() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(parse_request(wire, &Limits::default()), Parse::Partial);
        assert_eq!(parse_request(b"GET /", &Limits::default()), Parse::Partial);
        assert_eq!(
            parse_request(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab",
                &Limits::default()
            ),
            Parse::Partial
        );
    }

    #[test]
    fn malformed_inputs_get_4xx() {
        let cases: &[(&[u8], u16)] = &[
            (b"BOGUS LINE\r\n\r\n", 400),
            (b"GET nothing HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/9.9\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
                400,
            ),
            (b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
        ];
        for (wire, want) in cases {
            match parse_request(wire, &Limits::default()) {
                Parse::Bad { status, .. } => {
                    assert_eq!(status, *want, "{}", String::from_utf8_lossy(wire))
                }
                other => panic!(
                    "`{}` should be Bad, got {}",
                    String::from_utf8_lossy(wire),
                    type_name(&other)
                ),
            }
        }
    }

    #[test]
    fn oversized_head_is_431_not_a_stall() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        let mut wire = b"GET / HTTP/1.1\r\nX-Filler: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', 200));
        match parse_request(&wire, &limits) {
            Parse::Bad { status, .. } => assert_eq!(status, 431),
            other => panic!("expected Bad, got {}", type_name(&other)),
        }
    }

    #[test]
    fn response_round_trip() {
        let wire = response(200, "OK", "application/json", &[("X-Job-Id", "7")], b"{}");
        let (resp, consumed) = complete(parse_response(&wire, &Limits::default()));
        assert_eq!(consumed, wire.len());
        assert_eq!(resp.status, 200);
        assert_eq!(resp.reason, "OK");
        assert_eq!(resp.header("x-job-id"), Some("7"));
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn chunked_response_round_trip() {
        let mut wire = chunked_head(200, "OK", "application/jsonl", &[]);
        wire.extend_from_slice(&chunk(b"line one\n"));
        wire.extend_from_slice(&chunk(b"line two\n"));
        wire.extend_from_slice(CHUNK_END);
        let (resp, consumed) = complete(parse_response(&wire, &Limits::default()));
        assert_eq!(consumed, wire.len());
        assert_eq!(resp.body, b"line one\nline two\n");
    }
}
