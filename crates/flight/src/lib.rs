//! # cqfd-flight — always-on forensics for determinacy workloads
//!
//! The chase of Theorem 1 may legitimately run forever, so when a worker
//! wedges or a job blows its deadline the interesting question is *what
//! was it doing right before* — and by then it is too late to attach a
//! tracer. This crate keeps the answer on hand at all times:
//!
//! * [`ring`] — the **flight recorder**: a fixed-capacity, drop-oldest
//!   ring of rendered trace records fed from the obs facade's dedicated
//!   flight-sink slot. Always on, no steady-state allocation, drained as
//!   the same JSONL the streaming tracer emits;
//! * [`sampler`] — a cooperative **sampling profiler**: worker threads
//!   publish their current span path into per-thread slots (one relaxed
//!   load when idle), a sampling window aggregates them into flamegraph
//!   folded-stack text;
//! * [`attribution`] — deterministic **per-rule cost attribution**:
//!   registry-snapshot deltas (per-TGD triggers/firings, per-predicate
//!   atoms, hom-search nodes) joined with span wall times from the ring,
//!   ranked so the most-triggered TGD always tops the report.
//!
//! The service pool installs the recorder at startup; the gateway's
//! `/debug/flight`, `/debug/profile`, and `/debug/attribution` endpoints
//! and the `cqfd flight` / `cqfd profile` subcommands surface all three.
//! On a worker panic or a job deadline the pool calls [`dump_to_stderr`],
//! writing the ring's tail as a black-box dump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod ring;
pub mod sampler;

pub use attribution::{Attribution, PredicateCost, RuleCost, SpanCost};
pub use ring::{FlightRecord, FlightRecorder, DEFAULT_SEGMENTS, DEFAULT_SLOTS_PER_SEGMENT};
pub use sampler::{sample, sample_with, Profile, ProfileOptions};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn global_recorder() -> &'static Arc<FlightRecorder> {
    static RECORDER: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Arc::new(FlightRecorder::new(
            DEFAULT_SEGMENTS,
            DEFAULT_SLOTS_PER_SEGMENT,
        ))
    })
}

/// The process-wide flight recorder. Created on first use; records only
/// while [`install`]ed.
pub fn recorder() -> &'static FlightRecorder {
    global_recorder()
}

static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Wires the global recorder into the obs flight-sink slot. Idempotent;
/// returns `true` if this call performed the installation. Recording
/// survives subscriber install/uninstall churn (streaming front ends use
/// the separate subscriber slot).
pub fn install() -> bool {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return false;
    }
    cqfd_obs::trace::set_flight_sink(global_recorder().clone() as Arc<dyn cqfd_obs::Subscriber>);
    true
}

/// Detaches the global recorder from the flight-sink slot (held records
/// stay drainable). Idempotent; returns `true` if this call detached it.
pub fn uninstall() -> bool {
    if !INSTALLED.swap(false, Ordering::SeqCst) {
        return false;
    }
    cqfd_obs::trace::clear_flight_sink();
    true
}

/// Whether [`install`] is currently in effect.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::SeqCst)
}

/// Snapshots the newest `max_lines` records from the global ring as
/// JSONL and counts the dump under `cqfd_flight_dumps_total{cause=…}`.
/// `cause` is a label value — keep it low-cardinality (`"panic"`,
/// `"timeout"`, `"request"`).
pub fn dump(cause: &'static str, max_lines: usize) -> String {
    cqfd_obs::global()
        .counter(
            "cqfd_flight_dumps_total",
            "Flight-ring dumps taken, by cause.",
            &[("cause", cause)],
        )
        .inc();
    recorder().snapshot_jsonl(max_lines)
}

/// [`dump`], written to stderr between marker lines so operators can cut
/// the black-box section out of a service log.
pub fn dump_to_stderr(cause: &'static str, max_lines: usize) {
    let text = dump(cause, max_lines);
    let records = text.lines().count();
    eprintln!("=== cqfd-flight dump begin (cause={cause}, records={records}) ===");
    eprint!("{text}");
    eprintln!("=== cqfd-flight dump end (cause={cause}) ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global install/uninstall state is shared across the test binary's
    // threads, so everything that toggles it lives in this one test.
    #[test]
    fn install_is_idempotent_and_records_through_the_facade() {
        assert!(install(), "first install wins");
        assert!(!install(), "second install is a no-op");
        assert!(installed());
        assert!(cqfd_obs::trace::flight_sink_installed());

        let before = recorder().total_recorded();
        cqfd_obs::event!("flight.lib_test", probe = 1u64);
        assert!(
            recorder().total_recorded() > before,
            "event reached the ring"
        );

        let text = dump("request", 16);
        assert!(text.contains("flight.lib_test"), "{text}");
        let snap = cqfd_obs::global().snapshot();
        let fam = snap
            .family("cqfd_flight_dumps_total")
            .expect("dump counter");
        assert!(fam
            .series
            .iter()
            .any(|(labels, _)| labels.iter().any(|(k, v)| k == "cause" && v == "request")));

        assert!(uninstall());
        assert!(!uninstall());
        assert!(!cqfd_obs::trace::flight_sink_installed());
        let idle = recorder().total_recorded();
        cqfd_obs::event!("flight.lib_test_off", probe = 2u64);
        assert_eq!(
            recorder().total_recorded(),
            idle,
            "uninstalled ring sees nothing"
        );
    }
}
