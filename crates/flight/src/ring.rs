//! The flight recorder: a fixed-capacity, drop-oldest ring of rendered
//! trace records, cheap enough to leave on in production.
//!
//! The recorder is a [`Subscriber`] wired into the obs facade's dedicated
//! *flight sink* slot (`cqfd_obs::trace::set_flight_sink`), so it keeps
//! recording while the ordinary subscriber slot is claimed and released
//! by streaming front ends. Capacity is split into **per-thread
//! segments**: each recording thread claims a segment once (one relaxed
//! `fetch_add`) and then appends with a relaxed cursor bump plus an
//! uncontended mutex around its slot — contention only occurs when more
//! threads record than there are segments, or while a drain is reading.
//!
//! The record path performs **no steady-state allocation**: each slot
//! owns a `String` that is cleared and re-rendered in place, so after the
//! ring has gone around once every write reuses existing capacity.
//! Overwrite order is per-segment FIFO — the oldest record in the
//! claiming thread's segment is dropped first, and the newest record is
//! always retained.

use cqfd_obs::{Subscriber, TraceRecord};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default number of per-thread segments.
pub const DEFAULT_SEGMENTS: usize = 8;
/// Default records per segment (total default capacity: 4096 records).
pub const DEFAULT_SLOTS_PER_SEGMENT: usize = 512;

#[derive(Default)]
struct Slot {
    filled: bool,
    /// Global obs sequence number of the record (total order for drains).
    seq: u64,
    /// The record, rendered in the workspace JSONL trace format.
    line: String,
}

struct Segment {
    /// Records ever written to this segment; `head % slots.len()` is the
    /// next slot to (over)write.
    head: AtomicU64,
    slots: Vec<Mutex<Slot>>,
}

/// The drop-oldest ring. See the [module docs](self).
pub struct FlightRecorder {
    segments: Vec<Segment>,
    /// Next segment to hand to a newly-recording thread (round-robin).
    next_claim: AtomicUsize,
}

thread_local! {
    /// The segment index this thread claimed, if any.
    static MY_SEGMENT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// A drained record: the obs sequence number and the rendered JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global obs sequence number.
    pub seq: u64,
    /// The record in the workspace JSONL trace format.
    pub line: String,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    /// A recorder with `segments` per-thread segments of `slots_per_segment`
    /// records each (both forced to at least 1).
    pub fn new(segments: usize, slots_per_segment: usize) -> FlightRecorder {
        let segments = segments.max(1);
        let slots = slots_per_segment.max(1);
        FlightRecorder {
            segments: (0..segments)
                .map(|_| Segment {
                    head: AtomicU64::new(0),
                    slots: (0..slots).map(|_| Mutex::new(Slot::default())).collect(),
                })
                .collect(),
            next_claim: AtomicUsize::new(0),
        }
    }

    /// Total record capacity across all segments.
    pub fn capacity(&self) -> usize {
        self.segments.iter().map(|s| s.slots.len()).sum()
    }

    /// Records currently held (filled slots).
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|seg| {
                let written = seg.head.load(Ordering::Relaxed) as usize;
                written.min(seg.slots.len())
            })
            .sum()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever written (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Non-destructive read of every held record, sorted by obs sequence
    /// number — a consistent, process-wide "most recent activity" suffix
    /// (records a concurrent writer overwrites mid-drain are simply the
    /// ones that would have been dropped next).
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            for slot in &seg.slots {
                let slot = lock_unpoisoned(slot);
                if slot.filled {
                    out.push(FlightRecord {
                        seq: slot.seq,
                        line: slot.line.clone(),
                    });
                }
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// [`Self::snapshot`] of at most the `limit` newest records, rendered
    /// as JSONL text (one record per line; empty string for an empty ring).
    pub fn snapshot_jsonl(&self, limit: usize) -> String {
        let records = self.snapshot();
        let skip = records.len().saturating_sub(limit);
        let mut out = String::new();
        for r in &records[skip..] {
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }

    /// Empties the ring (slots stay allocated; capacity is retained).
    pub fn clear(&self) {
        for seg in &self.segments {
            for slot in &seg.slots {
                let mut slot = lock_unpoisoned(slot);
                slot.filled = false;
                slot.line.clear();
            }
            seg.head.store(0, Ordering::Relaxed);
        }
    }

    fn segment_for_this_thread(&self) -> &Segment {
        let idx = MY_SEGMENT.with(|c| match c.get() {
            Some(i) => i,
            None => {
                let i = self.next_claim.fetch_add(1, Ordering::Relaxed) % self.segments.len();
                c.set(Some(i));
                i
            }
        });
        // A thread that recorded into a differently-sized recorder first
        // (tests build private instances) could carry an out-of-range
        // claim; wrap rather than panic.
        &self.segments[idx % self.segments.len()]
    }
}

impl Subscriber for FlightRecorder {
    fn record(&self, rec: &TraceRecord<'_>) {
        let seg = self.segment_for_this_thread();
        let i = seg.head.fetch_add(1, Ordering::Relaxed) as usize % seg.slots.len();
        let mut slot = lock_unpoisoned(&seg.slots[i]);
        slot.filled = true;
        slot.seq = rec.seq;
        slot.line.clear();
        cqfd_obs::jsonl::render_record_into(&mut slot.line, rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_obs::trace::FieldValue;
    use cqfd_obs::RecordKind;

    fn rec(seq: u64, name: &'static str) -> TraceRecord<'static> {
        TraceRecord {
            seq,
            depth: 0,
            job: None,
            kind: RecordKind::Event,
            name,
            elapsed_ns: None,
            fields: &[],
        }
    }

    #[test]
    fn drop_oldest_keeps_the_newest() {
        let ring = FlightRecorder::new(1, 4);
        for seq in 0..10 {
            ring.record(&rec(seq, "ring.test"));
        }
        let held: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(held, vec![6, 7, 8, 9], "exact newest suffix");
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 10);
    }

    #[test]
    fn snapshot_jsonl_parses_and_respects_limit() {
        let ring = FlightRecorder::new(2, 8);
        let fields: &[(&str, FieldValue)] = &[("stage", FieldValue::U64(3))];
        for seq in 0..5 {
            ring.record(&TraceRecord {
                fields,
                ..rec(seq, "chase.stage")
            });
        }
        let text = ring.snapshot_jsonl(3);
        let parsed = cqfd_obs::jsonl::parse_lines(&text).expect("ring lines parse");
        assert_eq!(parsed.len(), 3);
        assert!(parsed.iter().all(|r| r.name == "chase.stage"));
        assert_eq!(parsed.last().unwrap().seq, 4, "newest survives the limit");
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let ring = FlightRecorder::new(2, 4);
        ring.record(&rec(1, "a"));
        assert!(!ring.is_empty());
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 8);
        ring.record(&rec(2, "b"));
        assert_eq!(ring.len(), 1);
    }
}
