//! Cooperative sampling profiler over the obs facade's per-thread span
//! slots.
//!
//! Worker threads publish their current span path through
//! [`cqfd_obs::profile`] — pushes and pops cost one relaxed atomic load
//! while no sampler is attached. [`sample`] flips the global sampling
//! gate on, wakes at the requested frequency, snapshots every live
//! thread's stack, and folds the observations into flamegraph
//! "folded stack" lines (`thread;span_a;span_b count`). Thread names
//! are normalised by collapsing a trailing `-<digits>` suffix so pool
//! workers (`cqfd-worker-0`, `cqfd-worker-1`, …) aggregate into one
//! `cqfd-worker` row regardless of pool size.

use std::collections::BTreeMap;
use std::thread;
use std::time::{Duration, Instant};

/// How a sampling window runs.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Wall-clock length of the window.
    pub duration: Duration,
    /// Target samples per second, clamped to `1..=1000`.
    pub hz: u32,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions {
            duration: Duration::from_secs(5),
            // A prime rate avoids phase-locking with periodic work.
            hz: 97,
        }
    }
}

/// An aggregated sampling window: folded stacks and their sample counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Sampling ticks taken (including ticks where no thread had frames).
    pub ticks: u64,
    /// Folded stack (`thread;span;span…`) → samples observed. `BTreeMap`
    /// keeps rendering deterministic for a given set of observations.
    pub stacks: BTreeMap<String, u64>,
}

impl Profile {
    /// Total stack samples across all threads (≥ 0, can exceed `ticks`
    /// when several threads were active per tick).
    pub fn total_samples(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Flamegraph "folded" text: one `stack count` line per entry, in
    /// lexicographic stack order, trailing newline (empty string when no
    /// frames were ever observed).
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Merge another window into this one (used by tests and by callers
    /// that sample in slices).
    pub fn merge(&mut self, other: &Profile) {
        self.ticks += other.ticks;
        for (stack, count) in &other.stacks {
            *self.stacks.entry(stack.clone()).or_insert(0) += count;
        }
    }
}

/// Collapses a trailing `-<digits>` suffix: `cqfd-worker-12` →
/// `cqfd-worker`. Names without the suffix pass through unchanged.
pub fn normalize_thread_name(name: &str) -> &str {
    match name.rsplit_once('-') {
        Some((base, tail)) if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) => base,
        _ => name,
    }
}

/// Samples for `opts.duration` at `opts.hz`. Blocks the calling thread
/// for the whole window — run it from a dedicated thread when the caller
/// must stay responsive (the gateway does).
pub fn sample(opts: ProfileOptions) -> Profile {
    sample_with(opts, || false)
}

/// [`sample`], but also stops early once `should_stop` returns true
/// (checked once per tick).
pub fn sample_with(opts: ProfileOptions, should_stop: impl Fn() -> bool) -> Profile {
    let hz = opts.hz.clamp(1, 1000);
    let tick = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let deadline = Instant::now() + opts.duration;

    cqfd_obs::profile::sampling_begin();
    let mut profile = Profile::default();
    loop {
        if should_stop() {
            break;
        }
        profile.ticks += 1;
        for (thread_name, frames) in cqfd_obs::profile::snapshot_stacks() {
            if frames.is_empty() {
                continue;
            }
            let mut key = normalize_thread_name(&thread_name).to_string();
            for f in frames {
                key.push(';');
                key.push_str(f);
            }
            *profile.stacks.entry(key).or_insert(0) += 1;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        thread::sleep(tick.min(deadline - now));
    }
    cqfd_obs::profile::sampling_end();
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn normalizes_worker_suffixes() {
        assert_eq!(normalize_thread_name("cqfd-worker-12"), "cqfd-worker");
        assert_eq!(normalize_thread_name("cqfd-worker"), "cqfd-worker");
        assert_eq!(normalize_thread_name("main"), "main");
        assert_eq!(normalize_thread_name("a-"), "a-");
    }

    #[test]
    fn folded_text_is_sorted_and_parseable() {
        let mut p = Profile::default();
        p.stacks.insert("w;chase.run;chase.stage".into(), 3);
        p.stacks.insert("w;chase.run".into(), 1);
        assert_eq!(
            p.folded_text(),
            "w;chase.run 1\nw;chase.run;chase.stage 3\n"
        );
        assert_eq!(p.total_samples(), 4);
    }

    #[test]
    fn samples_a_busy_thread_and_survives_its_exit() {
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("flight-busy-7".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _f = cqfd_obs::profile::frame("flight.busy");
                        thread::sleep(Duration::from_millis(1));
                    }
                })
                .unwrap()
        };
        let profile = sample(ProfileOptions {
            duration: Duration::from_millis(200),
            hz: 200,
        });
        stop.store(true, Ordering::SeqCst);
        worker.join().unwrap();
        assert!(
            profile
                .stacks
                .keys()
                .any(|k| k == "flight-busy;flight.busy"),
            "expected the busy frame, got {:?}",
            profile.stacks
        );
        // A second window after the worker exited must not see it.
        let after = sample(ProfileOptions {
            duration: Duration::from_millis(20),
            hz: 100,
        });
        assert!(
            !after.stacks.keys().any(|k| k.starts_with("flight-busy")),
            "dead thread leaked into {:?}",
            after.stacks
        );
    }
}
