//! Deterministic per-rule cost attribution.
//!
//! The chase engine publishes per-rule trigger/firing counters, a
//! per-predicate atoms-added counter, and hom-search node/backtrack
//! totals into the global registry; spans in the flight ring carry wall
//! times. This module joins the two: diff a registry [`Snapshot`] taken
//! before a workload against one taken after, optionally fold in span
//! timings parsed from flight-ring JSONL, and render a ranked report.
//!
//! Rule ranking is **deterministic**: rules sort by trigger count
//! descending, then by name ascending, so the same workload always
//! yields the same ordering and the top-ranked TGD is exactly the rule
//! with the highest trigger count. Wall-clock timings are inherently
//! run-to-run variable, so the renderer confines them to a clearly
//! marked trailing section.

use cqfd_obs::jsonl::OwnedRecord;
use cqfd_obs::{RecordKind, Snapshot, Value};
use std::collections::BTreeMap;

/// Work attributed to one TGD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCost {
    /// Rule name (the chase engine's `rule` label).
    pub rule: String,
    /// Trigger evaluations (homomorphism matches found).
    pub triggers: u64,
    /// Firings that actually added atoms.
    pub firings: u64,
}

/// Atoms added per head predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateCost {
    /// Predicate name.
    pub predicate: String,
    /// Atoms the chase added under it.
    pub atoms: u64,
}

/// Aggregated wall time of one span name (from flight-ring records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanCost {
    /// Span name (`chase.stage`, `job.execute`, …).
    pub name: String,
    /// Span-end records seen.
    pub count: u64,
    /// Sum of their `elapsed_ns`.
    pub total_ns: u64,
}

/// A cost-attribution report. Build with [`Attribution::between`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Per-rule work, ranked by triggers descending then name ascending.
    pub rules: Vec<RuleCost>,
    /// Atoms added per predicate, ranked by atoms descending then name.
    pub predicates: Vec<PredicateCost>,
    /// Hom-search nodes explored in the window.
    pub hom_nodes: u64,
    /// Hom-search backtracks in the window.
    pub hom_backtracks: u64,
    /// Chase stages run in the window.
    pub stages: u64,
    /// Span wall times (variable across runs), name-sorted.
    pub spans: Vec<SpanCost>,
}

/// Sums counter deltas of `family` between two snapshots, keyed by the
/// value of `key_label` (series without the label fold under `""`).
fn counter_deltas(
    before: &Snapshot,
    after: &Snapshot,
    family: &str,
    key_label: &str,
) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(fam) = after.family(family) else {
        return out;
    };
    for (labels, value) in &fam.series {
        let Value::Counter(now) = value else { continue };
        let was = before
            .family(family)
            .and_then(|f| {
                f.series
                    .iter()
                    .find(|(l, _)| l == labels)
                    .and_then(|(_, v)| v.as_counter())
            })
            .unwrap_or(0);
        let delta = now.saturating_sub(was);
        if delta == 0 {
            continue;
        }
        let key = labels
            .iter()
            .find(|(k, _)| k == key_label)
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        *out.entry(key).or_insert(0) += delta;
    }
    out
}

fn total_delta(before: &Snapshot, after: &Snapshot, family: &str) -> u64 {
    counter_deltas(before, after, family, "").values().sum()
}

impl Attribution {
    /// Builds the report from registry snapshots taken before and after
    /// the workload. Counters that did not move are omitted.
    pub fn between(before: &Snapshot, after: &Snapshot) -> Attribution {
        let triggers = counter_deltas(before, after, "cqfd_chase_triggers_total", "rule");
        let firings = counter_deltas(before, after, "cqfd_chase_firings_total", "rule");
        let mut rules: Vec<RuleCost> = triggers
            .iter()
            .map(|(rule, &t)| RuleCost {
                rule: rule.clone(),
                triggers: t,
                firings: firings.get(rule).copied().unwrap_or(0),
            })
            .collect();
        // Rules that fired without registering triggers (shouldn't happen,
        // but keep the report total) still get a row.
        for (rule, &f) in &firings {
            if !triggers.contains_key(rule) {
                rules.push(RuleCost {
                    rule: rule.clone(),
                    triggers: 0,
                    firings: f,
                });
            }
        }
        rules.sort_by(|a, b| {
            b.triggers
                .cmp(&a.triggers)
                .then_with(|| a.rule.cmp(&b.rule))
        });

        let mut predicates: Vec<PredicateCost> =
            counter_deltas(before, after, "cqfd_chase_atoms_total", "predicate")
                .into_iter()
                .map(|(predicate, atoms)| PredicateCost { predicate, atoms })
                .collect();
        predicates.sort_by(|a, b| {
            b.atoms
                .cmp(&a.atoms)
                .then_with(|| a.predicate.cmp(&b.predicate))
        });

        Attribution {
            rules,
            predicates,
            hom_nodes: total_delta(before, after, "cqfd_hom_search_nodes_total"),
            hom_backtracks: total_delta(before, after, "cqfd_hom_search_backtracks_total"),
            stages: total_delta(before, after, "cqfd_chase_stages_total"),
            spans: Vec::new(),
        }
    }

    /// Folds span-end wall times from flight-ring records into the
    /// report (typically `cqfd_obs::jsonl::parse_lines` of a ring dump).
    pub fn with_spans(mut self, records: &[OwnedRecord]) -> Attribution {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for rec in records {
            if rec.kind != RecordKind::SpanEnd {
                continue;
            }
            let slot = by_name.entry(rec.name.as_str()).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += rec.elapsed_ns.unwrap_or(0);
        }
        self.spans = by_name
            .into_iter()
            .map(|(name, (count, total_ns))| SpanCost {
                name: name.to_string(),
                count,
                total_ns,
            })
            .collect();
        self
    }

    /// The top-ranked rule (highest trigger count; name breaks ties).
    pub fn top_rule(&self) -> Option<&RuleCost> {
        self.rules.first()
    }

    /// Renders the report as stable plain text. Everything above the
    /// `span timings` section is deterministic for a given workload.
    pub fn render(&self) -> String {
        let mut out = String::from("# cqfd cost attribution\n");
        out.push_str(&format!(
            "totals: stages={} hom_nodes={} hom_backtracks={}\n",
            self.stages, self.hom_nodes, self.hom_backtracks
        ));
        out.push_str("## rules (by triggers desc, name asc)\n");
        if self.rules.is_empty() {
            out.push_str("(no rule activity in window)\n");
        }
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. rule={} triggers={} firings={}\n",
                i + 1,
                r.rule,
                r.triggers,
                r.firings
            ));
        }
        out.push_str("## predicates (atoms added)\n");
        if self.predicates.is_empty() {
            out.push_str("(no atoms added in window)\n");
        }
        for p in &self.predicates {
            out.push_str(&format!("predicate={} atoms={}\n", p.predicate, p.atoms));
        }
        out.push_str("## span timings (wall-clock; varies run to run)\n");
        if self.spans.is_empty() {
            out.push_str("(no span records in window)\n");
        }
        for s in &self.spans {
            out.push_str(&format!(
                "span={} count={} total_ms={:.3}\n",
                s.name,
                s.count,
                s.total_ns as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_obs::Registry;

    #[test]
    fn ranks_rules_by_trigger_count_then_name() {
        let reg = Registry::new();
        let before = reg.snapshot();
        for (rule, n, f) in [("t_beta", 5u64, 2u64), ("t_alpha", 9, 4), ("t_zed", 9, 1)] {
            reg.counter("cqfd_chase_triggers_total", "t", &[("rule", rule)])
                .add(n);
            reg.counter("cqfd_chase_firings_total", "f", &[("rule", rule)])
                .add(f);
        }
        let after = reg.snapshot();
        let attr = Attribution::between(&before, &after);
        let order: Vec<&str> = attr.rules.iter().map(|r| r.rule.as_str()).collect();
        assert_eq!(order, vec!["t_alpha", "t_zed", "t_beta"]);
        let top = attr.top_rule().unwrap();
        assert_eq!(top.rule, "t_alpha");
        assert_eq!((top.triggers, top.firings), (9, 4));
        let max_triggers = attr.rules.iter().map(|r| r.triggers).max().unwrap();
        assert_eq!(top.triggers, max_triggers, "top rule has max trigger count");
    }

    #[test]
    fn diffs_against_the_before_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("cqfd_chase_triggers_total", "t", &[("rule", "t0")]);
        c.add(100);
        let before = reg.snapshot();
        c.add(7);
        let attr = Attribution::between(&before, &reg.snapshot());
        assert_eq!(attr.rules.len(), 1);
        assert_eq!(attr.rules[0].triggers, 7, "only the window's delta counts");
    }

    #[test]
    fn folds_span_timings_from_ring_jsonl() {
        let reg = Registry::new();
        let attr = Attribution::between(&reg.snapshot(), &reg.snapshot());
        let text = "\
{\"seq\":1,\"depth\":0,\"type\":\"span_end\",\"name\":\"chase.stage\",\"elapsed_ns\":1500000}\n\
{\"seq\":2,\"depth\":0,\"type\":\"span_end\",\"name\":\"chase.stage\",\"elapsed_ns\":500000}\n\
{\"seq\":3,\"depth\":0,\"type\":\"event\",\"name\":\"chase.stage\"}\n";
        let records = cqfd_obs::jsonl::parse_lines(text).expect("test lines parse");
        let attr = attr.with_spans(&records);
        assert_eq!(attr.spans.len(), 1);
        assert_eq!(attr.spans[0].count, 2, "events are not timings");
        assert_eq!(attr.spans[0].total_ns, 2_000_000);
        let rendered = attr.render();
        assert!(rendered.contains("span=chase.stage count=2 total_ms=2.000"));
        assert!(rendered.contains("(no rule activity in window)"));
    }
}
