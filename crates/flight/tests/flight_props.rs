//! Property tests for the flight recorder and sampling profiler
//! (satellite coverage for the forensics layer):
//!
//! * interleaved writers never panic the ring, and its occupancy
//!   invariants hold under arbitrary thread/record-count mixes;
//! * a drain yields a consistent suffix — records sorted by sequence
//!   number, each seq distinct and actually written;
//! * drop-oldest never loses the newest record;
//! * the sampler tolerates publisher threads exiting mid-window.
//!
//! The vendored proptest shim supplies integer/bool/vec strategies;
//! record names draw from a fixed static alphabet (the facade hands the
//! ring `&'static str` names in production too).

use cqfd_flight::FlightRecorder;
use cqfd_obs::{RecordKind, Subscriber, TraceRecord};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const NAMES: [&str; 4] = ["chase.stage", "hom.search", "job.execute", "creep.step"];

fn write(ring: &FlightRecorder, seq: u64, name_draw: u8) {
    ring.record(&TraceRecord {
        seq,
        depth: 0,
        job: Some(seq % 7),
        kind: RecordKind::Event,
        name: NAMES[name_draw as usize % NAMES.len()],
        elapsed_ns: None,
        fields: &[],
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_writers_never_panic_and_keep_invariants(
        threads in 1usize..5,
        per_thread in 0usize..80,
        segments in 1usize..4,
        slots in 1usize..16,
        name_draw in 0u8..=255,
    ) {
        let ring = Arc::new(FlightRecorder::new(segments, slots));
        let next_seq = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let next_seq = Arc::clone(&next_seq);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        let seq = next_seq.fetch_add(1, Ordering::SeqCst);
                        write(&ring, seq, name_draw.wrapping_add(seq as u8));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked");
        }
        let written = (threads * per_thread) as u64;
        prop_assert_eq!(ring.total_recorded(), written);
        prop_assert!(ring.len() <= ring.capacity());
        prop_assert!(ring.len() as u64 <= written);
    }

    #[test]
    fn drain_is_a_consistent_suffix_and_newest_survives(
        threads in 1usize..5,
        per_thread in 1usize..60,
        slots in 1usize..12,
    ) {
        let ring = Arc::new(FlightRecorder::new(2, slots));
        let next_seq = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let next_seq = Arc::clone(&next_seq);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        let seq = next_seq.fetch_add(1, Ordering::SeqCst);
                        write(&ring, seq, seq as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked");
        }
        // Quiescent now: one more record is the newest by construction,
        // and drop-oldest must never evict it.
        let newest = next_seq.fetch_add(1, Ordering::SeqCst);
        write(&ring, newest, 0);

        let drained = ring.snapshot();
        let seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&seqs, &sorted, "drain sorted by seq, no duplicates");
        prop_assert!(seqs.iter().all(|&s| s <= newest), "only written seqs drain");
        prop_assert_eq!(
            seqs.last().copied(),
            Some(newest),
            "newest record was dropped"
        );
        // Every drained line is still valid trace JSONL.
        let parsed = cqfd_obs::jsonl::parse_lines(&ring.snapshot_jsonl(usize::MAX));
        prop_assert!(parsed.is_ok(), "ring line failed to parse: {:?}", parsed);
    }

    #[test]
    fn single_writer_drop_oldest_is_exact(
        writes in 0u64..64,
        slots in 1usize..16,
    ) {
        let ring = FlightRecorder::new(1, slots);
        for seq in 0..writes {
            write(&ring, seq, seq as u8);
        }
        let held: Vec<u64> = ring.snapshot().iter().map(|r| r.seq).collect();
        let expect: Vec<u64> = (writes.saturating_sub(slots as u64)..writes).collect();
        prop_assert_eq!(held, expect, "exact newest suffix for one writer");
    }

    #[test]
    fn sampler_tolerates_threads_exiting_mid_window(
        publishers in 1usize..4,
        lifetimes_ms in prop::collection::vec(1u64..25, 1..4),
        frame_draw in 0u8..=255,
    ) {
        let handles: Vec<_> = (0..publishers)
            .map(|i| {
                let live = Duration::from_millis(
                    lifetimes_ms[i % lifetimes_ms.len()],
                );
                thread::Builder::new()
                    .name(format!("flight-prop-{i}"))
                    .spawn(move || {
                        let _f = cqfd_obs::profile::frame(
                            NAMES[frame_draw as usize % NAMES.len()],
                        );
                        thread::sleep(live);
                        // Frame pops, then the thread exits while the
                        // sampler may still be mid-window.
                    })
                    .expect("spawn publisher")
            })
            .collect();
        let profile = cqfd_flight::sample(cqfd_flight::ProfileOptions {
            duration: Duration::from_millis(40),
            hz: 500,
        });
        for h in handles {
            h.join().expect("publisher panicked");
        }
        for stack in profile.stacks.keys() {
            let (thread_part, frames) = stack.split_once(';').unwrap_or((stack.as_str(), ""));
            if thread_part == "flight-prop" {
                prop_assert!(
                    NAMES.contains(&frames),
                    "unknown frame path {stack:?}"
                );
            }
        }
        // After every publisher joined, a fresh window must not see them.
        let after = cqfd_flight::sample(cqfd_flight::ProfileOptions {
            duration: Duration::from_millis(5),
            hz: 200,
        });
        prop_assert!(
            !after.stacks.keys().any(|k| k.starts_with("flight-prop")),
            "exited publishers leaked into {:?}",
            after.stacks
        );
    }
}
