//! `T∞` and its models (paper §VII Step 1, Figure 1).

use cqfd_greengraph::{GreenGraph, L2Rule, L2System, Label, LabelSpace};
use std::sync::Arc;

/// The three rules of `T∞`:
///
/// ```text
/// (I)   ∅ &·· ∅  ]  α  &·· η1
/// (II)  ∅ /·· η1 ]  η0 /·· β1
/// (III) ∅ &·· η0 ]  η1 &·· β0
/// ```
///
/// `chase(T∞, DI)` is an infinite "path": rule (I) fires once, then (II)
/// and (III) alternate forever, growing the sequences `b1, b2, …` (sinks)
/// and `a1, a2, …` (sources) of Figure 1.
pub fn t_infinity() -> L2System {
    L2System::new(vec![
        L2Rule::antenna(Label::Empty, Label::Empty, Label::Alpha, Label::Eta1),
        L2Rule::tail(Label::Empty, Label::Eta1, Label::Eta0, Label::Beta1),
        L2Rule::antenna(Label::Empty, Label::Eta0, Label::Eta1, Label::Beta0),
    ])
}

/// The labels `T∞` and its models live over.
pub fn tinf_labels() -> Vec<Label> {
    vec![
        Label::Alpha,
        Label::Beta0,
        Label::Beta1,
        Label::Eta0,
        Label::Eta1,
    ]
}

/// Directly constructs the structure `chase(T∞, DI)` truncated to `n` pairs
/// `(a_t, b_t)` — the Figure 1 shape, without running the chase:
///
/// * `H∅(a, b)`, `Hα(a, b1)`;
/// * `Hη1(a, b_t)` and `Hβ1(a_t, b_t)` and `Hη0(a_t, b)` for `1 ≤ t ≤ n`;
/// * `Hβ0(a_t, b_{t+1})` for `1 ≤ t < n`.
///
/// Returns the graph plus the vertex lists `(b_1…b_n, a_1…a_n)`.
/// Tests verify this against the actual chase (E-FIG1).
pub fn alpha_beta_chase_graph(
    space: Arc<LabelSpace>,
    n: usize,
) -> (GreenGraph, Vec<cqfd_core::Node>, Vec<cqfd_core::Node>) {
    let mut g = GreenGraph::di(space);
    let bs: Vec<_> = (0..n).map(|_| g.fresh_node()).collect();
    let as_: Vec<_> = (0..n).map(|_| g.fresh_node()).collect();
    let (a, b) = (g.a(), g.b());
    if n > 0 {
        g.add_edge(Label::Alpha, a, bs[0]);
    }
    for t in 0..n {
        g.add_edge(Label::Eta1, a, bs[t]);
        g.add_edge(Label::Beta1, as_[t], bs[t]);
        g.add_edge(Label::Eta0, as_[t], b);
        if t + 1 < n {
            g.add_edge(Label::Beta0, as_[t], bs[t + 1]);
        }
    }
    (g, bs, as_)
}

/// A finite **lasso model** of `T∞`: the infinite αβ-path folded into a ρ.
///
/// `n` pairs `(a_t, b_t)` as in [`alpha_beta_chase_graph`], but the last
/// β0 edge wraps around: `Hβ0(a_n, b_{n-period+1})`. Every finite model of
/// `T∞` containing `DI` receives the chase homomorphically and therefore
/// identifies two `b` vertices (§VII Step 2, Figure 2) — the lasso is the
/// canonical such identification. Requires `1 ≤ period ≤ n - 1`.
///
/// The returned graph **is a model of `T∞`** (tested), so after the grid
/// rules are added (`T = T∞ ∪ T□`), any model of `T` extending it must
/// contain the 1-2 pattern: the wrap point `b_{n-period+1}` receives β0
/// edges from both `a_{n-period}` and `a_n`, i.e. two αβ-paths of lengths
/// differing by `period` share an endpoint.
pub fn lasso_model(space: Arc<LabelSpace>, n: usize, period: usize) -> GreenGraph {
    assert!(n >= 2, "need at least two pairs to fold");
    assert!(
        (1..n).contains(&period),
        "period must be in 1..n (got {period} with n={n})"
    );
    let (mut g, bs, as_) = alpha_beta_chase_graph(space, n);
    g.add_edge(Label::Beta0, as_[n - 1], bs[n - period]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_chase::ChaseBudget;
    use cqfd_greengraph::pg::words_of;

    fn space() -> Arc<LabelSpace> {
        Arc::new(LabelSpace::new(tinf_labels()))
    }

    /// E-FIG1: the chase of `T∞` from `DI` applies exactly one rule per
    /// stage and produces the Figure 1 structure.
    #[test]
    fn chase_matches_figure1() {
        let sys = t_infinity();
        let g = GreenGraph::di(space());
        let (out, run) = sys.chase(&g, &ChaseBudget::stages(9));
        for s in &run.stages {
            assert_eq!(
                s.applications, 1,
                "Figure 1 caption: exactly one application per stage"
            );
        }
        // Stages: (I), then (II)/(III) alternating: 9 stages = 1 + 4 pairs
        // = b1..b5? Count pairs: stage 1 makes b1; stages 2,4,6,8 make a_t;
        // stages 3,5,7,9 make b_{t+1}. After 9 stages: b1..b5, a1..a4.
        // Each stage adds two edges: 1 (∅ of DI) + 9·2 = 19 edges, of which
        // 1 α + 5 η1 (stages 1,3,5,7,9) + 4 β1/η0 (stages 2,4,6,8) + 4 β0.
        assert_eq!(out.edge_count(), 19);
        assert_eq!(out.edges_with(Label::Eta1).count(), 5);
        assert_eq!(out.edges_with(Label::Beta0).count(), 4);
        assert_eq!(out.edges_with(Label::Beta1).count(), 4);
        assert_eq!(out.edges_with(Label::Eta0).count(), 4);
        // Through parity glasses the words are exactly the Figure 1 language.
        let ws = words_of(&out, 12, 1000);
        for w in &ws {
            let ok_eta1 = is_alpha_beta_eta1(w);
            let ok_eta0 = is_alpha_beta_beta1_eta0(w);
            assert!(ok_eta1 || ok_eta0, "unexpected word {w:?}");
        }
        // Both families are populated.
        assert!(ws.iter().any(|w| is_alpha_beta_eta1(w)));
        assert!(ws.iter().any(|w| is_alpha_beta_beta1_eta0(w)));
    }

    /// `α(β1β0)^k η1`?
    fn is_alpha_beta_eta1(w: &[Label]) -> bool {
        if w.first() != Some(&Label::Alpha) || w.last() != Some(&Label::Eta1) {
            return false;
        }
        let mid = &w[1..w.len() - 1];
        mid.len().is_multiple_of(2) && mid.chunks(2).all(|c| c == [Label::Beta1, Label::Beta0])
    }

    /// `α(β1β0)^k β1 η0`?
    fn is_alpha_beta_beta1_eta0(w: &[Label]) -> bool {
        if w.first() != Some(&Label::Alpha) || w.last() != Some(&Label::Eta0) {
            return false;
        }
        let mid = &w[1..w.len() - 1];
        if mid.last() != Some(&Label::Beta1) {
            return false;
        }
        let mid = &mid[..mid.len() - 1];
        mid.len().is_multiple_of(2) && mid.chunks(2).all(|c| c == [Label::Beta1, Label::Beta0])
    }

    #[test]
    fn direct_graph_agrees_with_chase_words() {
        let sys = t_infinity();
        let g = GreenGraph::di(space());
        let (out, _) = sys.chase(&g, &ChaseBudget::stages(13));
        let (direct, _, _) = alpha_beta_chase_graph(space(), 7);
        let wc = words_of(&out, 10, 1000);
        let wd = words_of(&direct, 10, 1000);
        assert_eq!(wc, wd, "chase and direct construction read the same");
    }

    /// The lasso is a genuine finite model of `T∞` (both rule directions).
    #[test]
    fn lasso_models_t_infinity() {
        let sys = t_infinity();
        for (n, p) in [(3, 1), (4, 2), (5, 3), (6, 2)] {
            let m = lasso_model(space(), n, p);
            assert!(
                sys.is_model(&m),
                "lasso(n={n}, p={p}) must model T∞: violation {:?}",
                sys.first_violation(&m)
            );
        }
    }

    #[test]
    fn unfolded_prefix_is_not_a_model() {
        // The truncated path is *not* a model (rule III demands the next β0).
        let sys = t_infinity();
        let (g, _, _) = alpha_beta_chase_graph(space(), 4);
        assert!(!sys.is_model(&g));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn bad_period_is_rejected() {
        let _ = lasso_model(space(), 3, 3);
    }

    /// Universality in action (§VII Step 2): the chase prefix maps
    /// homomorphically into the lasso.
    #[test]
    fn chase_prefix_maps_into_lasso() {
        use cqfd_core::structure_homomorphism;
        let sys = t_infinity();
        let g = GreenGraph::di(space());
        let (out, _) = sys.chase(&g, &ChaseBudget::stages(9));
        let m = lasso_model(space(), 6, 2);
        let h = structure_homomorphism(out.structure(), m.structure());
        assert!(h.is_some(), "chase(T∞, DI) prefix must map into the lasso");
    }
}
