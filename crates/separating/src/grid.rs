//! `T□` — the 41 grid-building rules of §VII Step 2 (Figures 2–3).
//!
//! The rules tile the rectangle spanned by two αβ-paths that share their
//! endpoint. Each rule consumes the southern and eastern edge of one little
//! square and adds its western and northern edge (footnote 12: "adding two
//! missing edges of a square is exactly what green graph rewriting rules
//! are good at"). The `d`/`d̄` component tracks the grid diagonal; if and
//! only if the two paths have *different* lengths does the north-western
//! corner land off the diagonal, producing the labels
//! `⟨n,α,d̄,b̄⟩` (= "1") and `⟨w,α,d̄,b̄⟩` (= "2") — a 1-2 pattern.
//!
//! ## Transcription note (documented repair)
//!
//! The fourth eastern-strip rule is printed in the paper as
//!
//! ```text
//! α &·· ⟨w,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,α,d̄,b̄⟩
//! ```
//!
//! whose left-hand side can never match: eastern-strip tiles alternate
//! source-joins at the path's `a`-vertices (consuming `⟨w,·,·,b⟩` edges,
//! rules 1 and 3) and target-joins at its `b`-vertices (consuming
//! `⟨e,·,·,b⟩` edges, rule 2), and the closing α-step is a target-join at
//! `b1` — where only an `⟨e,β,d̄,b⟩` edge can be present (`⟨w,·,·,b⟩` edges
//! always point into fresh tile corners, never into `b1`). The repaired
//! rule, by exact symmetry with the second eastern rule, is
//!
//! ```text
//! α &·· ⟨e,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,α,d̄,b̄⟩
//! ```
//!
//! — a one-letter fix (`w` → `e`) on the left-hand side. [`t_square`]
//! ships the repaired rule; [`t_square_as_printed`] keeps the literal
//! transcription so the discrepancy can be measured: with the literal rule
//! the label `⟨n,α,d̄,b̄⟩` is never produced and no folded model ever shows
//! a 1-2 pattern (experiment E-GRID in EXPERIMENTS.md).

use cqfd_greengraph::{Dir, GridLabel, Kind, L2Rule, L2System, Label};

/// Shorthand for a grid label.
pub fn gl(dir: Dir, kind: Kind, diag: bool, border: bool) -> Label {
    Label::Grid(GridLabel {
        dir,
        kind,
        diag,
        border,
    })
}

/// The **grid triggering rule**: `β0 &·· β0 ] ⟨n,β,d,b⟩ &·· ⟨w,β,d,b⟩` —
/// creates the tile in the south-eastern corner of the grid, at a vertex
/// where two β0 edges end.
pub fn trigger_rule() -> L2Rule {
    L2Rule::antenna(
        Label::Beta0,
        Label::Beta0,
        gl(Dir::N, Kind::B, true, true),
        gl(Dir::W, Kind::B, true, true),
    )
}

/// The four southern-strip rules (tiles adjacent to the southern border).
pub fn southern_strip() -> Vec<L2Rule> {
    vec![
        // β1 /·· ⟨n,β,d,b⟩ ] ⟨s,β,d̄,b⟩ /·· ⟨e,β,d,b̄⟩
        L2Rule::tail(
            Label::Beta1,
            gl(Dir::N, Kind::B, true, true),
            gl(Dir::S, Kind::B, false, true),
            gl(Dir::E, Kind::B, true, false),
        ),
        // β0 &·· ⟨s,β,d̄,b⟩ ] ⟨n,β,d̄,b⟩ &·· ⟨w,β,d̄,b̄⟩
        L2Rule::antenna(
            Label::Beta0,
            gl(Dir::S, Kind::B, false, true),
            gl(Dir::N, Kind::B, false, true),
            gl(Dir::W, Kind::B, false, false),
        ),
        // β1 /·· ⟨n,β,d̄,b⟩ ] ⟨s,β,d̄,b⟩ /·· ⟨e,β,d̄,b̄⟩
        L2Rule::tail(
            Label::Beta1,
            gl(Dir::N, Kind::B, false, true),
            gl(Dir::S, Kind::B, false, true),
            gl(Dir::E, Kind::B, false, false),
        ),
        // α &·· ⟨s,β,d̄,b⟩ ] ⟨n,β,d̄,b⟩ &·· ⟨w,α,d̄,b̄⟩
        L2Rule::antenna(
            Label::Alpha,
            gl(Dir::S, Kind::B, false, true),
            gl(Dir::N, Kind::B, false, true),
            gl(Dir::W, Kind::A, false, false),
        ),
    ]
}

/// The four eastern-strip rules. `repaired = true` substitutes the
/// symmetric form for the fourth rule's left-hand side (see the module
/// docs).
pub fn eastern_strip(repaired: bool) -> Vec<L2Rule> {
    let fourth_lhs_second = if repaired {
        gl(Dir::E, Kind::B, false, true)
    } else {
        gl(Dir::W, Kind::B, false, true) // literal transcription
    };
    vec![
        // β1 /·· ⟨w,β,d,b⟩ ] ⟨e,β,d̄,b⟩ /·· ⟨s,β,d,b̄⟩
        L2Rule::tail(
            Label::Beta1,
            gl(Dir::W, Kind::B, true, true),
            gl(Dir::E, Kind::B, false, true),
            gl(Dir::S, Kind::B, true, false),
        ),
        // β0 &·· ⟨e,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,β,d̄,b̄⟩
        L2Rule::antenna(
            Label::Beta0,
            gl(Dir::E, Kind::B, false, true),
            gl(Dir::W, Kind::B, false, true),
            gl(Dir::N, Kind::B, false, false),
        ),
        // β1 /·· ⟨w,β,d̄,b⟩ ] ⟨e,β,d̄,b⟩ /·· ⟨s,β,d̄,b̄⟩
        L2Rule::tail(
            Label::Beta1,
            gl(Dir::W, Kind::B, false, true),
            gl(Dir::E, Kind::B, false, true),
            gl(Dir::S, Kind::B, false, false),
        ),
        // α &·· ⟨e|w,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,α,d̄,b̄⟩
        L2Rule::antenna(
            Label::Alpha,
            fourth_lhs_second,
            gl(Dir::W, Kind::B, false, true),
            gl(Dir::N, Kind::A, false, false),
        ),
    ]
}

/// The 32 inner rules (two schemes of 16), which tile the interior:
///
/// ```text
/// ⟨e,Θ,X,b̄⟩ &·· ⟨s,Ω,Y,b̄⟩ ] ⟨n,Ω,X,b̄⟩ &·· ⟨w,Θ,Y,b̄⟩
/// ⟨w,Θ,X,b̄⟩ /·· ⟨n,Ω,Y,b̄⟩ ] ⟨s,Ω,X,b̄⟩ /·· ⟨e,Θ,Y,b̄⟩
/// ```
///
/// for `X, Y ∈ {d, d̄}` and `Θ, Ω ∈ {α, β}`.
pub fn inner_rules() -> Vec<L2Rule> {
    let mut out = Vec::with_capacity(32);
    for theta in [Kind::A, Kind::B] {
        for omega in [Kind::A, Kind::B] {
            for x in [true, false] {
                for y in [true, false] {
                    out.push(L2Rule::antenna(
                        gl(Dir::E, theta, x, false),
                        gl(Dir::S, omega, y, false),
                        gl(Dir::N, omega, x, false),
                        gl(Dir::W, theta, y, false),
                    ));
                    out.push(L2Rule::tail(
                        gl(Dir::W, theta, x, false),
                        gl(Dir::N, omega, y, false),
                        gl(Dir::S, omega, x, false),
                        gl(Dir::E, theta, y, false),
                    ));
                }
            }
        }
    }
    out
}

/// `T□` with the documented repair — 41 rules.
pub fn t_square() -> L2System {
    build(true)
}

/// `T□` exactly as printed in the paper — 41 rules, fourth eastern rule
/// left verbatim. Kept for the E-GRID ablation.
pub fn t_square_as_printed() -> L2System {
    build(false)
}

fn build(repaired: bool) -> L2System {
    let mut rules = vec![trigger_rule()];
    rules.extend(southern_strip());
    rules.extend(eastern_strip(repaired));
    rules.extend(inner_rules());
    L2System::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_one_rules() {
        assert_eq!(t_square().rules().len(), 41);
        assert_eq!(t_square_as_printed().rules().len(), 41);
        assert_eq!(inner_rules().len(), 32);
    }

    #[test]
    fn repair_changes_exactly_one_label() {
        let a = t_square();
        let b = t_square_as_printed();
        let diff: Vec<_> = a
            .rules()
            .iter()
            .zip(b.rules())
            .filter(|(x, y)| x != y)
            .collect();
        assert_eq!(diff.len(), 1);
        let (rep, lit) = diff[0];
        assert_eq!(rep.lhs.0, lit.lhs.0);
        assert_ne!(rep.lhs.1, lit.lhs.1);
        assert_eq!(rep.rhs, lit.rhs);
    }

    #[test]
    fn pattern_labels_are_produced_by_the_strips() {
        // ⟨w,α,d̄,b̄⟩ ("2") comes from the southern strip, ⟨n,α,d̄,b̄⟩ ("1")
        // from the eastern strip — the α ends of the two borders.
        let s4 = &southern_strip()[3];
        assert_eq!(s4.rhs.1, Label::TWO);
        let e4 = &eastern_strip(true)[3];
        assert_eq!(e4.rhs.1, Label::ONE);
    }

    #[test]
    fn trigger_only_consumes_beta0() {
        let t = trigger_rule();
        assert_eq!(t.lhs, (Label::Beta0, Label::Beta0));
    }

    #[test]
    fn inner_rules_only_touch_non_border_labels() {
        for r in inner_rules() {
            for l in r.labels() {
                match l {
                    Label::Grid(g) => assert!(!g.border),
                    other => panic!("inner rule with non-grid label {other}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod analysis_tests {
    use super::*;
    use cqfd_greengraph::analysis::{label_closure, provably_never_red_spider};
    use cqfd_greengraph::Label;

    /// The static label-flow certificate works where it can: `T∞` alone
    /// produces no grid labels, and `T□` alone cannot even fire its
    /// trigger from `DI` (no `β0` is producible) — both provably never
    /// lead to the red spider, for *any* input labelled within `{∅}`.
    #[test]
    fn components_are_statically_safe_in_isolation() {
        assert!(provably_never_red_spider(&crate::tinf::t_infinity()));
        assert!(provably_never_red_spider(&t_square()));
        let c = label_closure(&t_square(), [Label::Empty]);
        assert_eq!(c.len(), 1, "T□'s trigger needs β0: nothing flows from ∅");
    }

    /// The union is beyond the analysis — as it must be: for the repaired
    /// rules the pattern really forms (no sound analysis may certify
    /// safety), and for the literal rules the failure is *structural*
    /// (two edges that never share a target), invisible to label flow.
    /// The E-GRID ablation therefore rests on the dynamic experiment.
    #[test]
    fn unions_are_beyond_label_flow() {
        let repaired = crate::tinf::t_infinity().union(&t_square());
        assert!(!provably_never_red_spider(&repaired));
        let literal = crate::tinf::t_infinity().union(&t_square_as_printed());
        assert!(!provably_never_red_spider(&literal));
    }
}
