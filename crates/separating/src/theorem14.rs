//! Theorem 14, executably: `T = T∞ ∪ T□` finitely leads to the red spider
//! but does not lead to it.

use crate::grid::t_square;
use crate::tinf::{lasso_model, t_infinity, tinf_labels};
use cqfd_chase::{ChaseBudget, ChaseRun};
use cqfd_greengraph::{GreenGraph, L2System, Label, LabelSpace};
use std::sync::Arc;

/// `T = T∞ ∪ T□` (44 rules): the separating rule set of Theorem 14.
pub fn t_separating() -> L2System {
    t_infinity().union(&t_square())
}

/// The label space of the separating example: `∅`, the five skeleton
/// labels, and the 32 grid labels.
pub fn separating_space() -> Arc<LabelSpace> {
    let mut labels = tinf_labels();
    labels.extend(Label::all_grid_labels());
    Arc::new(LabelSpace::new(labels))
}

/// Evidence for the "does not lead to the red spider" half: chases
/// `T` from `DI` for `stages` stages and reports whether a 1-2 pattern ever
/// appeared (it must not — the chase builds only the harmless diagonal
/// grids `M_t` of Figure 4).
pub fn chase_from_di(stages: usize) -> (GreenGraph, ChaseRun, bool) {
    chase_from_di_with(&separating_budget(stages))
}

/// [`chase_from_di`] under a caller-supplied budget: same start structure
/// and rule set, but the caller controls cancellation, deadline and the
/// enumeration thread count (see [`separating_budget`] for the stock
/// limits).
pub fn chase_from_di_with(budget: &ChaseBudget) -> (GreenGraph, ChaseRun, bool) {
    let sys = t_separating();
    let g = GreenGraph::di(separating_space());
    sys.chase_until_12(&g, budget)
}

/// The stock budget the Theorem 14 drivers run under: `stages` stages and
/// the generous 4 Mi atom/node caps the separating chases need.
pub fn separating_budget(stages: usize) -> ChaseBudget {
    ChaseBudget {
        max_stages: stages,
        max_atoms: 1 << 22,
        max_nodes: 1 << 22,
        ..ChaseBudget::default()
    }
}

/// Evidence for the "finitely leads to the red spider" half: starting from
/// the lasso model of `T∞` (a ρ-folded αβ-path, `n` pairs, loop length
/// `period`), chases `T` and reports whether the 1-2 pattern appeared.
///
/// The lasso contains two αβ-paths of lengths differing by `period` that
/// share their endpoint, so the grid the chase builds between them is a
/// non-square rectangle: its north-western corner is off the diagonal and
/// gets the labels `⟨n,α,d̄,b̄⟩ / ⟨w,α,d̄,b̄⟩` — the 1-2 pattern. Since every
/// finite model of `T` containing `DI` receives a homomorphism from the
/// chase (and homomorphisms preserve the pattern), every such model
/// contains it (Lemma 17).
pub fn chase_from_lasso(n: usize, period: usize, stages: usize) -> (GreenGraph, ChaseRun, bool) {
    chase_from_lasso_with(n, period, &separating_budget(stages))
}

/// [`chase_from_lasso`] under a caller-supplied budget (cancellation,
/// deadline, thread count).
pub fn chase_from_lasso_with(
    n: usize,
    period: usize,
    budget: &ChaseBudget,
) -> (GreenGraph, ChaseRun, bool) {
    let sys = t_separating();
    let g = lasso_model(separating_space(), n, period);
    sys.chase_until_12(&g, budget)
}

/// A machine-checkable certificate for the positive half of Theorem 14:
/// the chase of `T` from the smallest lasso contains the 1-2 pattern, with
/// the witness edges spelled out as a [`cqfd_cert::Certificate`]
/// (`finite-model` kind). Returns `None` if `stages` was too small for the
/// pattern to emerge (60 suffices for the (3, 1) lasso).
pub fn separation_certificate(stages: usize) -> Option<cqfd_cert::Certificate> {
    let (g, _, found) = chase_from_lasso(3, 1, stages);
    if !found {
        return None;
    }
    cqfd_cert::emit::pattern_certificate(&g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_count() {
        assert_eq!(t_separating().rules().len(), 44);
    }

    /// E-SEP (positive half): chasing from the smallest lasso produces the
    /// 1-2 pattern — `T` finitely leads to the red spider.
    #[test]
    fn lasso_chase_finds_12_pattern() {
        let (_, run, found) = chase_from_lasso(3, 1, 60);
        assert!(
            found,
            "1-2 pattern must emerge from the folded model (ran {} stages, {} atoms)",
            run.stage_count(),
            run.structure.atom_count()
        );
    }

    /// E-SEP (negative half): the unfolded chase never develops a pattern.
    #[test]
    fn di_chase_stays_clean() {
        let (_, _, found) = chase_from_di(12);
        assert!(!found, "chase(T, DI) must not contain a 1-2 pattern");
    }

    /// E-SEP: different lasso geometries all yield the pattern.
    #[test]
    fn various_lassos_all_fold_to_a_pattern() {
        for (n, p) in [(4, 2), (4, 1), (5, 3)] {
            let (_, _, found) = chase_from_lasso(n, p, 80);
            assert!(found, "lasso(n={n}, p={p}) must develop a 1-2 pattern");
        }
    }

    /// E-GRID ablation: with the fourth eastern-strip rule exactly as
    /// printed in the paper, `⟨n,α,d̄,b̄⟩` is never produced and the folded
    /// model never shows a pattern — evidence that the printed rule is a
    /// typo and our one-letter repair is the intended rule.
    #[test]
    fn as_printed_rules_never_produce_label_one() {
        let sys = t_infinity().union(&crate::grid::t_square_as_printed());
        let g = lasso_model(separating_space(), 3, 1);
        let budget = ChaseBudget {
            max_stages: 25,
            max_atoms: 1 << 20,
            max_nodes: 1 << 20,
            ..ChaseBudget::default()
        };
        let (out, _, found) = sys.chase_until_12(&g, &budget);
        assert!(!found);
        assert_eq!(out.edges_with(Label::ONE).count(), 0);
    }

    /// E-FIG4: chasing `T□` alone over an *unfolded* αβ-path prefix builds
    /// only the harmless diagonal grids `M_t` — the chase terminates and no
    /// 1-2 pattern appears. (All β0 edges have distinct endpoints, so only
    /// the degenerate x = x′ trigger matches fire, producing the grids of
    /// Figure 4 whose north-western corners sit *on* the diagonal.)
    #[test]
    fn unfolded_prefix_grids_are_harmless() {
        let sys = t_square();
        let (g, _, _) = crate::tinf::alpha_beta_chase_graph(separating_space(), 4);
        let budget = ChaseBudget {
            max_stages: 200,
            max_atoms: 1 << 20,
            max_nodes: 1 << 20,
            ..ChaseBudget::default()
        };
        let (out, run, found) = sys.chase_until_12(&g, &budget);
        assert!(!found, "diagonal grids must not contain a 1-2 pattern");
        assert!(
            run.reached_fixpoint(),
            "T□ over a finite unfolded path terminates"
        );
        // The square grids' far corners land *on* the diagonal: the
        // d-flavored α corner labels ⟨n,α,d,b̄⟩ / ⟨w,α,d,b̄⟩ exist.
        // (Isolated ONE/TWO edges do appear — the strip rules emit them at
        // each grid's first row and column — but they never share a target.)
        use crate::grid::gl;
        use cqfd_greengraph::{Dir, Kind};
        assert!(
            out.edges_with(gl(Dir::N, Kind::A, true, false))
                .next()
                .is_some()
                || out
                    .edges_with(gl(Dir::W, Kind::A, true, false))
                    .next()
                    .is_some(),
            "the α corner is reached on the diagonal"
        );
    }

    /// E-SEP as a certificate: the lasso-chase pattern witness survives the
    /// independent checker, and a forged witness does not.
    #[test]
    fn separation_certificate_checks() {
        let cert = separation_certificate(60).expect("pattern emerges by stage 60");
        assert_eq!(cert.kind(), "finite-model");
        let report = cqfd_cert::check(&cert).unwrap();
        assert!(!report.attestation);
        // Round-trips through the wire format, too.
        let text = cqfd_cert::encode(&cert);
        assert_eq!(cqfd_cert::parse(&text).unwrap(), cert);
    }

    /// Lemma 17 mechanics: the pattern labels are exactly where §VII says —
    /// a ONE and a TWO edge sharing their target.
    #[test]
    fn pattern_witness_shape() {
        let (out, _, found) = chase_from_lasso(3, 1, 60);
        assert!(found);
        let g = out;
        let (x, xp, y) = g.find_12_pattern().unwrap();
        assert!(g.has_edge(Label::ONE, x, y));
        assert!(g.has_edge(Label::TWO, xp, y));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    #[ignore]
    fn debug_lasso_grid() {
        let sys = t_separating();
        let g = lasso_model(separating_space(), 3, 1);
        let budget = ChaseBudget {
            max_stages: 30,
            max_atoms: 1 << 20,
            max_nodes: 1 << 20,
            ..ChaseBudget::default()
        };
        let (out, run, found) = sys.chase_until_12(&g, &budget);
        println!(
            "stages={} atoms={} found={}",
            run.stage_count(),
            out.edge_count(),
            found
        );
        for (i, s) in run.stages.iter().enumerate() {
            println!(
                "stage {}: apps={} atoms={}",
                i + 1,
                s.applications,
                s.atoms_after
            );
        }
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (l, _, _) in out.edges() {
            *counts.entry(format!("{l}")).or_default() += 1;
        }
        for (l, c) in &counts {
            println!("{l}: {c}");
        }
        println!("has ONE: {}", out.edges_with(Label::ONE).count());
        println!("has TWO: {}", out.edges_with(Label::TWO).count());
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::tinf::lasso_model;
    use cqfd_chase::Strategy;

    /// The semi-naive chase strategy reaches the same Theorem 14 verdicts:
    /// pattern from the fold, no pattern from DI.
    #[test]
    fn seminaive_strategy_agrees_on_theorem14() {
        let sys = t_separating();
        let budget = ChaseBudget {
            max_stages: 60,
            max_atoms: 1 << 22,
            max_nodes: 1 << 22,
            ..ChaseBudget::default()
        };
        let lasso = lasso_model(separating_space(), 3, 1);
        let (_, _, found) = sys.chase_until_12_with(&lasso, &budget, Strategy::SemiNaive);
        assert!(found, "semi-naive must find the pattern too");
        let di = GreenGraph::di(separating_space());
        let small = ChaseBudget {
            max_stages: 10,
            max_atoms: 1 << 22,
            max_nodes: 1 << 22,
            ..ChaseBudget::default()
        };
        let (_, _, found) = sys.chase_until_12_with(&di, &small, Strategy::SemiNaive);
        assert!(!found, "and must stay clean on DI");
    }
}
