//! # cqfd-separating — the separating example (paper §VII, Theorem 14)
//!
//! Theorem 14: there is a set `T ⊆ L2` of green-graph rewriting rules that
//! does **not** lead to the red spider but **finitely** leads to it — i.e.
//! the chase never develops a 1-2 pattern, yet every *finite* model of `T`
//! containing `DI` contains one. Through Lemma 12 this separates finite
//! from unrestricted determinacy of conjunctive queries (no separating
//! example was known before this paper).
//!
//! The construction:
//!
//! * [`tinf`] — the three rules of `T∞` whose chase from `DI` is the
//!   infinite αβ-path of **Figure 1**, plus the finite "lasso" models of
//!   `T∞` (an αβ-path folded into a ρ shape), which are what a finite model
//!   of `T∞` must look like up to homomorphism;
//! * [`grid`] — the 41 grid-building rules `T□` of Step 2 (**Figures 2–3**):
//!   a trigger tile at a shared β0-endpoint, two border strips, and 32
//!   inner rules that tile the rectangle between two αβ-paths, tracking the
//!   diagonal in the `d`/`d̄` label component. If the two paths have
//!   different lengths the north-western corner falls off the diagonal and
//!   its labels `⟨n,α,d̄,b̄⟩ / ⟨w,α,d̄,b̄⟩` form the 1-2 pattern;
//! * [`theorem14`] — `T = T∞ ∪ T□` and the executable evidence: unfolded
//!   chase prefixes never contain the pattern (**Figure 4**'s harmless
//!   grids `M_t`), while chasing from any lasso model produces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod theorem14;
pub mod tinf;

pub use grid::{t_square, t_square_as_printed};
pub use theorem14::t_separating;
pub use tinf::{alpha_beta_chase_graph, lasso_model, t_infinity};
