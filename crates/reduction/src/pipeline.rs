//! The composed reduction: rainworm → CQfDP instance.

use crate::precompile::{precompile, Precompiled};
use cqfd_core::Cq;
use cqfd_greengraph::L2System;
use cqfd_rainworm::{to_rules::tm_rules, Delta};
use cqfd_separating::grid::t_square;
use cqfd_spider::{SpiderContext, SpiderQuery};
use cqfd_swarm::compile;
use std::sync::Arc;

/// Size statistics of a produced instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStats {
    /// Number of green-graph rules (`|T_M∆ ∪ T□|`).
    pub l2_rules: usize,
    /// Number of swarm rules after `Precompile`.
    pub l1_rules: usize,
    /// Number of conjunctive queries in `Q`.
    pub queries: usize,
    /// The spider parameter `s`.
    pub s: u16,
    /// Total body atoms across all queries in `Q`.
    pub total_atoms: usize,
    /// Number of predicates in the base signature `Σ`.
    pub sigma_preds: usize,
}

/// A CQfDP instance `(Q, Q0)` over the spider signature `Σ`, with its
/// provenance.
#[derive(Debug, Clone)]
pub struct CqfdpInstance {
    /// The view queries `Q`.
    pub queries: Vec<Cq>,
    /// The query `Q0 = ∃* dalt(I)`.
    pub q0: Cq,
    /// The Level-0 world the instance lives in.
    pub spider_ctx: Arc<SpiderContext>,
    /// The precompilation record (numbering, `s`, swarm rules).
    pub precompiled: Precompiled,
    /// Size statistics.
    pub stats: InstanceStats,
}

/// Reduces an arbitrary Level-2 rule system to a CQfDP instance:
/// `Compile(Precompile(T))` plus `Q0` (Observation 13 + Lemma 12). The
/// produced `Q` finitely determines `Q0` iff `T` finitely leads to the red
/// spider.
pub fn reduce_l2(t: &L2System) -> CqfdpInstance {
    let pre = precompile(t);
    let spider_ctx = Arc::new(SpiderContext::new(pre.s));
    let binaries = compile(&pre.rules);
    let queries: Vec<Cq> = binaries.iter().map(|b| b.cq(&spider_ctx)).collect();
    let q0 = SpiderQuery::dalt_full_boolean(&spider_ctx);
    let stats = InstanceStats {
        l2_rules: t.rules().len(),
        l1_rules: pre.rules.len(),
        queries: queries.len(),
        s: pre.s,
        total_atoms: queries.iter().map(|q| q.body.len()).sum(),
        sigma_preds: spider_ctx.base().pred_count(),
    };
    CqfdpInstance {
        queries,
        q0,
        spider_ctx,
        precompiled: pre,
        stats,
    }
}

/// Theorem 5's full reduction: from a rainworm instruction set `∆` to the
/// CQfDP instance `(Q, Q0)` such that **`Q` finitely determines `Q0` iff
/// the worm creeps forever** (Lemma 24 + Lemma 12 + Observation 13).
pub fn reduce(delta: &Delta) -> CqfdpInstance {
    let t = tm_rules(delta).union(&t_square());
    reduce_l2(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_chase::{ChaseBudget, ChaseEngine};
    use cqfd_greengraph::{L2Rule, Label};
    use cqfd_greenred::{tq::greenred_tgds, DeterminacyOracle, Verdict};
    use cqfd_rainworm::families::forever_worm;

    fn tiny_positive() -> L2System {
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::ONE,
            Label::TWO,
        )])
    }

    fn tiny_negative() -> L2System {
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::Alpha,
            Label::Eta1,
        )])
    }

    /// The full descent to Level 0, judged by the actual determinacy
    /// oracle: the tiny positive instance is a *determined* CQfDP instance
    /// (the chase of `T_Q` from `green(A[Q0])` reaches `red(Q0)`).
    #[test]
    fn oracle_certifies_positive_tiny_instance() {
        let inst = reduce_l2(&tiny_positive());
        let oracle = DeterminacyOracle::from_greenred(inst.spider_ctx.greenred().clone());
        let verdict = oracle.try_certify(&inst.queries, &inst.q0, 16).unwrap();
        assert!(
            verdict.is_determined(),
            "the ONE/TWO rule leads to the red spider, so Q determines Q0; got {verdict:?}"
        );
    }

    /// …and the tiny negative instance is not certified (here the chase
    /// even terminates, so non-determinacy in the unrestricted sense is
    /// *decided*).
    #[test]
    fn oracle_rejects_negative_tiny_instance() {
        let inst = reduce_l2(&tiny_negative());
        let oracle = DeterminacyOracle::from_greenred(inst.spider_ctx.greenred().clone());
        let verdict = oracle.try_certify(&inst.queries, &inst.q0, 10).unwrap();
        assert!(!verdict.is_determined());
        assert!(matches!(
            verdict,
            Verdict::NotDeterminedUnrestricted { .. } | Verdict::Unknown { .. }
        ));
    }

    /// Q0's canonical structure is a model-of-nothing sanity check: the
    /// instance's queries all validate against Σ.
    #[test]
    fn instance_queries_are_well_formed() {
        let inst = reduce_l2(&tiny_positive());
        let sig = inst.spider_ctx.base();
        for q in inst.queries.iter().chain([&inst.q0]) {
            for atom in &q.body {
                assert_eq!(atom.args.len(), sig.arity(atom.pred), "{}", q.name);
            }
        }
        assert!(inst.q0.head_vars.is_empty(), "Q0 is boolean");
        assert_eq!(inst.stats.queries, inst.queries.len());
        assert_eq!(inst.stats.l1_rules, 5);
    }

    /// The headline Theorem 5 artifact: reducing a real rainworm produces a
    /// complete, well-formed CQfDP instance; its statistics are reported in
    /// EXPERIMENTS.md (E-RED).
    #[test]
    fn full_rainworm_reduction_builds() {
        let delta = forever_worm();
        let inst = reduce(&delta);
        // T_M∆ has 2 + (12 - 1) rules; T□ has 41.
        assert_eq!(inst.stats.l2_rules, 13 + 41);
        assert_eq!(inst.stats.l1_rules, 3 + 2 * inst.stats.l2_rules);
        assert_eq!(inst.stats.queries, inst.stats.l1_rules);
        // Lower leg indices reach 2(k+1)+2 with k = 54 + 1.
        assert!(inst.stats.s >= 2 * (inst.stats.l2_rules as u16 + 1) + 2);
        assert!(
            inst.stats.total_atoms > 10_000,
            "a genuinely large instance"
        );
        // Every query speaks the spider language: 2 HEAD atoms each.
        let head = inst.spider_ctx.head_pred();
        for q in &inst.queries {
            assert_eq!(
                q.body.iter().filter(|a| a.pred == head).count(),
                2,
                "binary queries have two spiders"
            );
        }
    }

    /// Level-0 chase on the tiny positive instance by hand (not through the
    /// oracle): the full red spider emerges from the full green one.
    #[test]
    fn level0_chase_reaches_red_spider() {
        let inst = reduce_l2(&tiny_positive());
        let ctx = &inst.spider_ctx;
        let tgds = greenred_tgds(ctx.greenred(), &inst.queries);
        let engine = ChaseEngine::new(tgds);
        let mut d = cqfd_core::Structure::new(Arc::clone(ctx.colored()));
        let t = d.fresh_node();
        let a = d.fresh_node();
        ctx.build_spider(&mut d, cqfd_spider::IdealSpider::full_green(), t, a);
        let cc = Arc::clone(ctx);
        let run = engine.chase_with_monitor(&d, &ChaseBudget::stages(12), move |st, _| {
            cc.contains_full_red(st)
        });
        assert!(ctx.contains_full_red(&run.structure));
    }
}
