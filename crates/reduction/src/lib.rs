//! # cqfd-reduction — the Theorem 1/5 pipeline, end to end
//!
//! Chains every translation in the paper into the executable reduction
//!
//! ```text
//! rainworm ∆  ──tm_rules──►  T_M∆ ∪ T□  ⊆ L2          (§VIII.C + §VII)
//!            ──Precompile──►  T ⊆ L1                   (Definition 9)
//!            ──Compile──►     Q ⊆ F2 (CQs over Σ)      (Definition 8)
//! ```
//!
//! together with `Q0 = ∃* dalt(I)` (Observation 13). The produced
//! [`CqfdpInstance`] is a *bona fide* instance of the Conjunctive Query
//! Finite Determinacy Problem: `Q` finitely determines `Q0` iff the worm
//! `∆` creeps forever. Since creeping-forever is undecidable (Lemma 21),
//! CQfDP is undecidable (Theorem 1).
//!
//! Both computable translations are implemented here:
//! [`precompile::precompile`] (Level 2 → Level 1, with the label → leg
//! numbering the paper leaves to "some fixed bijection") and the
//! composition [`pipeline::reduce`]. Lemma 12's level-agreement is
//! exercised on tiny instances in the tests, including a full descent to
//! Level 0 where the [`cqfd_greenred::DeterminacyOracle`] itself certifies
//! the produced CQfDP instance.
//!
//! ```
//! use cqfd_rainworm::families::forever_worm;
//! use cqfd_reduction::reduce;
//!
//! let instance = reduce(&forever_worm());
//! // A genuine CQfDP instance: views + a boolean target query over Σ.
//! assert_eq!(instance.stats.queries, instance.queries.len());
//! assert!(instance.q0.head_vars.is_empty());
//! // Q finitely determines Q0 ⇔ the worm creeps forever (undecidable).
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod levels;
pub mod pipeline;
pub mod precompile;

pub use levels::{deprecompile, precompile_map};
pub use pipeline::{reduce, reduce_l2, CqfdpInstance, InstanceStats};
pub use precompile::{precompile, LabelNumbering, Precompiled};
