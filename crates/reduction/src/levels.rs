//! The Appendix A.2 structure maps between Levels 1 and 2:
//! `deprecompile` (Definition 35) and the `precompile` structure map
//! (Definition 36), with Lemma 32's preservation laws and Lemma 34's
//! color/lowerness invariant as tests.

use crate::precompile::Precompiled;
use cqfd_chase::ChaseBudget;
use cqfd_greengraph::{GreenGraph, LabelSpace};
use cqfd_greenred::Color;
use cqfd_spider::{IdealSpider, Legs};
use cqfd_swarm::{L1System, Swarm, SwarmContext};
use std::collections::HashMap;
use std::sync::Arc;

/// Definition 35: `deprecompile(D)` — what remains of a swarm after
/// removing everything that is not a valid green-graph edge: the **full or
/// upper-1-lame green** edges (green body, no lower flip). Each surviving
/// edge `H(I^{i}, x, y)` becomes `H_{label(i)}(x, y)`.
///
/// Swarm vertices are carried to green-graph vertices one-for-one; the
/// caller supplies which swarm vertices play `a` and `b`.
pub fn deprecompile(
    pre: &Precompiled,
    space: Arc<LabelSpace>,
    swarm: &Swarm,
    a: cqfd_core::Node,
    b: cqfd_core::Node,
) -> GreenGraph {
    let mut g = GreenGraph::empty(space);
    let mut map: HashMap<cqfd_core::Node, cqfd_core::Node> =
        [(a, g.a()), (b, g.b())].into_iter().collect();
    let mut translate = |g: &mut GreenGraph, n: cqfd_core::Node| -> cqfd_core::Node {
        if let Some(&m) = map.get(&n) {
            m
        } else {
            let m = g.fresh_node();
            map.insert(n, m);
            m
        }
    };
    for e in swarm.edges() {
        if e.spider.base != Color::Green || e.spider.flips.lower.is_some() {
            continue;
        }
        let Some(label) = pre.numbering.label_of(e.spider.flips.upper) else {
            continue; // a rule-numbering leg: not a green-graph edge
        };
        let from = translate(&mut g, e.tail);
        let to = translate(&mut g, e.antenna);
        g.add_edge(label, from, to);
    }
    g
}

/// Definition 36: the `precompile` structure map — realises a green graph
/// as a swarm (`H_ℓ(x,y) ↦ H(I^{code(ℓ)}, x, y)`) and adds **one chase
/// stage** of `Precompile(T)`: exactly the red witness edges the rules
/// demand for arguments from `D`. No green edges are added.
pub fn precompile_map(
    pre: &Precompiled,
    ctx: Arc<SwarmContext>,
    g: &GreenGraph,
) -> (Swarm, cqfd_core::Node, cqfd_core::Node) {
    let mut sw = Swarm::empty(Arc::clone(&ctx));
    let mut map: HashMap<cqfd_core::Node, cqfd_core::Node> = HashMap::new();
    for n in 0..g.node_count() {
        let n = cqfd_core::Node(n);
        map.insert(n, sw.fresh_node());
    }
    for (l, x, y) in g.edges() {
        let spider = IdealSpider::green(Legs::new(pre.numbering.leg(l), None));
        sw.add_edge(spider, map[&x], map[&y]);
    }
    let sys = L1System::new(pre.rules.clone());
    let engine = cqfd_chase::ChaseEngine::new(sys.tgds(&ctx));
    let run = engine.chase(sw.structure(), &ChaseBudget::stages(1));
    let out = Swarm::from_structure(ctx, run.structure.clone());
    (out, map[&g.a()], map[&g.b()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompile::precompile;
    use cqfd_greengraph::{L2Rule, L2System, Label};

    fn tiny_negative() -> L2System {
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::Alpha,
            Label::Eta1,
        )])
    }

    /// Lemma 32 round trip on a minimal green-graph model: `precompile`
    /// yields a swarm model of `Precompile(T)` with no full red spider,
    /// and `deprecompile` recovers a model of `T` (in fact, `D` itself).
    #[test]
    fn lemma32_round_trip() {
        let t = tiny_negative();
        // D = chase(T, DI): a finite minimal model of T without a 1-2
        // pattern (no grid labels at all here).
        let space = t.space_with([]);
        let d = GreenGraph::di(Arc::clone(&space));
        let (d, run) = t.chase(&d, &ChaseBudget::stages(16));
        assert!(run.reached_fixpoint());
        assert!(t.is_model(&d));

        let pre = precompile(&t);
        let ctx = Arc::new(SwarmContext::with_s(pre.s));
        let sys = L1System::new(pre.rules.clone());

        // Lemma 32(ii): the mapped swarm models Precompile(T)…
        let (sw, a, b) = precompile_map(&pre, Arc::clone(&ctx), &d);
        assert!(sys.is_model(&sw), "precompile(D) must model Precompile(T)");
        // …and contains no full red spider.
        assert!(!sw.contains_red_spider());

        // Lemma 32(i): deprecompiling it returns a model of T…
        let back = deprecompile(&pre, Arc::clone(&space), &sw, a, b);
        assert!(t.is_model(&back), "deprecompile must model T");
        assert!(!back.has_12_pattern());
        // …which is exactly D (same edge multiset up to renaming).
        assert_eq!(back.edge_count(), d.edge_count());
        let mut labels_d: Vec<Label> = d.edges().map(|(l, _, _)| l).collect();
        let mut labels_b: Vec<Label> = back.edges().map(|(l, _, _)| l).collect();
        labels_d.sort();
        labels_b.sort();
        assert_eq!(labels_d, labels_b);
    }

    /// The `precompile` map adds only red edges (Definition 36: "no green
    /// edges are added").
    #[test]
    fn precompile_map_adds_only_red() {
        let t = tiny_negative();
        let space = t.space_with([]);
        let d = GreenGraph::di(Arc::clone(&space));
        let (d, _) = t.chase(&d, &ChaseBudget::stages(16));
        let pre = precompile(&t);
        let ctx = Arc::new(SwarmContext::with_s(pre.s));
        let (sw, _, _) = precompile_map(&pre, Arc::clone(&ctx), &d);
        let green = sw
            .edges()
            .iter()
            .filter(|e| e.spider.base == Color::Green)
            .count();
        let red = sw.edges().len() - green;
        assert_eq!(green, d.edge_count(), "green part = D verbatim");
        assert!(red > 0, "the demanded witnesses are red");
    }

    /// Lemma 34's inductive content: under **lower** rules only, every
    /// edge the chase derives from the green seed is red iff its spider is
    /// lower (has a nonempty `J`).
    #[test]
    fn lemma34_red_iff_lower() {
        let t = tiny_negative();
        let pre = precompile(&t);
        let lower_rules: Vec<_> = pre.rules.iter().copied().filter(|r| r.is_lower()).collect();
        assert!(
            lower_rules.len() < pre.rules.len(),
            "the third start rule is not lower and must be dropped"
        );
        let ctx = Arc::new(SwarmContext::with_s(pre.s));
        let sys = L1System::new(lower_rules);
        let (sw, _, _) = Swarm::green_seed(Arc::clone(&ctx));
        let engine = cqfd_chase::ChaseEngine::new(sys.tgds(&ctx));
        let run = engine.chase(sw.structure(), &ChaseBudget::stages(6));
        let out = Swarm::from_structure(Arc::clone(&ctx), run.structure.clone());
        for e in out.edges() {
            let lower = e.spider.flips.lower.is_some();
            let red = e.spider.base == Color::Red;
            assert_eq!(red, lower, "Lemma 34 violated at {:?}", e.spider);
        }
    }

    /// Numbering inverse: `label_of ∘ leg = id` on the labels in play.
    /// (Upper-leg label codes and lower-leg rule indices live on separate
    /// axes of the spider, so they may share numbers; only codes beyond
    /// the label range are unassigned.)
    #[test]
    fn numbering_inverse() {
        let t = tiny_negative();
        let pre = precompile(&t);
        for l in t.labels() {
            assert_eq!(pre.numbering.label_of(pre.numbering.leg(l)), Some(l));
        }
        assert_eq!(
            pre.numbering.label_of(Some(pre.numbering.max_code() + 1)),
            None
        );
    }
}
