//! `Precompile` (Definition 9): from green-graph rules to swarm rules.

use cqfd_greengraph::{Join, L2System, Label};
use cqfd_spider::{Legs, SpiderQuery};
use cqfd_swarm::L1Rule;
use std::collections::{BTreeSet, HashMap};

/// The "fixed bijection" of footnote 13, made concrete: every non-`∅`
/// label in play gets an element of `S`, with the 1-2 pattern labels at 1
/// and 2 and the `Precompile` reserved indices at 3 and 4. Rule-numbering
/// indices `2i+1 / 2i+2` (for the paper's rule numbers `i = 2..k+1`)
/// extend `S` beyond the label codes.
#[derive(Debug, Clone)]
pub struct LabelNumbering {
    code_of: HashMap<Label, u16>,
    max_code: u16,
}

impl LabelNumbering {
    /// Numbers the given labels; `∅` gets no code (it denotes the *empty*
    /// leg set `I^∅ = I`).
    pub fn new(labels: &BTreeSet<Label>) -> LabelNumbering {
        let mut code_of = HashMap::new();
        code_of.insert(Label::ONE, 1);
        code_of.insert(Label::TWO, 2);
        code_of.insert(Label::Reserved3, 3);
        code_of.insert(Label::Reserved4, 4);
        let mut next = 5u16;
        for &l in labels {
            if l == Label::Empty || code_of.contains_key(&l) {
                continue;
            }
            code_of.insert(l, next);
            next += 1;
        }
        LabelNumbering {
            code_of,
            max_code: next - 1,
        }
    }

    /// The leg-set encoding of a label: `∅ ↦ None`, anything else its code.
    pub fn leg(&self, l: Label) -> Option<u16> {
        if l == Label::Empty {
            None
        } else {
            Some(self.code_of[&l])
        }
    }

    /// The inverse of [`LabelNumbering::leg`]: `None ↦ ∅`, a code back to
    /// its label (if any label carries it — rule-numbering legs have none).
    pub fn label_of(&self, leg: Option<u16>) -> Option<Label> {
        match leg {
            None => Some(Label::Empty),
            Some(code) => self
                .code_of
                .iter()
                .find(|&(_, &c)| c == code)
                .map(|(&l, _)| l),
        }
    }

    /// The largest label code in use.
    pub fn max_code(&self) -> u16 {
        self.max_code
    }
}

/// The result of `Precompile`.
#[derive(Debug, Clone)]
pub struct Precompiled {
    /// The `L1` rules.
    pub rules: Vec<L1Rule>,
    /// The label numbering used.
    pub numbering: LabelNumbering,
    /// The spider parameter `s` large enough for every leg index in use.
    pub s: u16,
}

/// Definition 9. The output starts with the three fixed rules
/// `f^1_1 &· f^2_2`, `f^3_1 &· f^4_2`, `f^3 &· f^4_3` (which turn a 1-2
/// pattern into the full red spider in three steps — footnote 10); then
/// each green-graph rule `I1 ⋈·· I2 ] I3 ⋈·· I4`, numbered `i` from 2,
/// contributes `f^{I1}_{2i+1} ⋈· f^{I2}_{2i+2}` and
/// `f^{I3}_{2i+1} ⋈· f^{I4}_{2i+2}`.
pub fn precompile(t: &L2System) -> Precompiled {
    let numbering = LabelNumbering::new(&t.labels());
    let f = |u: Option<u16>, l: Option<u16>| SpiderQuery::new(Legs::new(u, l));
    let mut rules = vec![
        L1Rule::antenna(f(Some(1), Some(1)), f(Some(2), Some(2))),
        L1Rule::antenna(f(Some(3), Some(1)), f(Some(4), Some(2))),
        L1Rule::antenna(f(Some(3), None), f(Some(4), Some(3))),
    ];
    let mut max_lower = 3u16;
    for (j, rule) in t.rules().iter().enumerate() {
        let i = j as u16 + 2; // the paper numbers rules from 2
        let (lo1, lo2) = (2 * i + 1, 2 * i + 2);
        max_lower = lo2;
        let mk = |l2join: Join, a: Label, b: Label| {
            let fa = f(numbering.leg(a), Some(lo1));
            let fb = f(numbering.leg(b), Some(lo2));
            match l2join {
                Join::Antenna => L1Rule::antenna(fa, fb),
                Join::Tail => L1Rule::tail(fa, fb),
            }
        };
        rules.push(mk(rule.join, rule.lhs.0, rule.lhs.1));
        rules.push(mk(rule.join, rule.rhs.0, rule.rhs.1));
    }
    let s = numbering.max_code().max(max_lower).max(4);
    Precompiled {
        rules,
        numbering,
        s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_chase::ChaseBudget;
    use cqfd_greengraph::{GreenGraph, L2Rule};
    use cqfd_swarm::{L1System, Swarm, SwarmContext};
    use std::sync::Arc;

    fn tiny_positive() -> L2System {
        // DI immediately produces a 1-2 pattern.
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::ONE,
            Label::TWO,
        )])
    }

    fn tiny_negative() -> L2System {
        // Produces only α/η1 edges — never the pattern labels.
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::Alpha,
            Label::Eta1,
        )])
    }

    #[test]
    fn shape_of_precompiled_output() {
        let p = precompile(&tiny_positive());
        assert_eq!(p.rules.len(), 3 + 2);
        // rule 2 ⇒ lower legs 5, 6; labels ONE=1, TWO=2 ⇒ s = 6.
        assert_eq!(p.s, 6);
        assert_eq!(p.numbering.leg(Label::ONE), Some(1));
        assert_eq!(p.numbering.leg(Label::TWO), Some(2));
        assert_eq!(p.numbering.leg(Label::Empty), None);
    }

    #[test]
    fn numbering_is_injective_and_reserved() {
        let t = tiny_negative();
        let p = precompile(&t);
        let mut codes = std::collections::BTreeSet::new();
        for l in t.labels() {
            if l != Label::Empty {
                assert!(codes.insert(p.numbering.leg(l).unwrap()));
            }
        }
        // α and η1 got fresh codes ≥ 5.
        assert!(codes.iter().all(|&c| c >= 5));
    }

    /// Lemma 12(2) on the positive instance: Level 2 finds the 1-2 pattern
    /// and Level 1 finds the red spider.
    #[test]
    fn lemma12_2_positive_instance() {
        let t = tiny_positive();
        // Level 2:
        let space = t.space_with([]);
        let g = GreenGraph::di(Arc::clone(&space));
        let (_, _, found2) = t.chase_until_12(&g, &ChaseBudget::stages(8));
        assert!(found2);
        // Level 1:
        let p = precompile(&t);
        let ctx = Arc::new(SwarmContext::with_s(p.s));
        let sys = L1System::new(p.rules.clone());
        let (sw, _, _) = Swarm::green_seed(Arc::clone(&ctx));
        let (_, _, found1) = sys.chase_until_red(&sw, &ChaseBudget::stages(16));
        assert!(found1, "precompiled rules must reach the red spider");
    }

    /// Lemma 12(2) on the negative instance: neither level reaches its
    /// target within the budget.
    #[test]
    fn lemma12_2_negative_instance() {
        let t = tiny_negative();
        let space = t.space_with([Label::ONE, Label::TWO]);
        let g = GreenGraph::di(Arc::clone(&space));
        let (_, _, found2) = t.chase_until_12(&g, &ChaseBudget::stages(8));
        assert!(!found2);
        let p = precompile(&t);
        let ctx = Arc::new(SwarmContext::with_s(p.s));
        let sys = L1System::new(p.rules.clone());
        let (sw, _, _) = Swarm::green_seed(Arc::clone(&ctx));
        let (_, _, found1) = sys.chase_until_red(&sw, &ChaseBudget::stages(12));
        assert!(!found1);
    }
}
