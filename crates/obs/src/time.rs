//! [`Stopwatch`]: the one wall-clock measurement primitive.
//!
//! Before this crate, `Instant::now()` pairs were scattered across the
//! chase engine, the service executor, and two CLI subcommands, each with
//! slightly different start/stop points. Every `elapsed` figure the
//! workspace reports now comes from a `Stopwatch` started at the same
//! boundary the corresponding span opens at, so batch and serve paths
//! report identical timing semantics.

use std::time::{Duration, Instant};

/// A started wall clock. Construct with [`Stopwatch::start`], read with
/// [`Stopwatch::elapsed`] as many times as needed.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall time since [`start`](Stopwatch::start). Monotone across calls.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in whole nanoseconds, saturating at `u64::MAX`
    /// (the raw unit histograms record).
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ns() >= b.as_nanos() as u64 || sw.elapsed_ns() > 0 || b.is_zero());
    }
}
