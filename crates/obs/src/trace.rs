//! Span/event tracing: [`span!`](crate::span), [`event!`](crate::event),
//! subscribers, and per-job capture.
//!
//! The facade is built around one invariant: **when nothing is listening,
//! instrumentation costs one relaxed atomic load and allocates nothing.**
//! "Listening" means a global [`Subscriber`] is installed and/or the
//! current thread has an active capture; a single process-wide sink count
//! ([`enabled`]) gates both. The `span!`/`event!` macros check it *before*
//! evaluating their field expressions, so a disabled
//! `span!("chase.stage", stage = expensive())` never calls `expensive()`.
//!
//! Records are delivered synchronously and borrowed ([`TraceRecord`]
//! holds `&str`s and a field slice on the caller's stack) — no queue, no
//! boxing. Two sinks exist:
//!
//! * the global subscriber (e.g. [`JsonlWriter`] streaming to a file, or
//!   [`RegistryAggregator`] folding span latencies into a registry);
//! * a **thread-local capture** ([`capture_begin`]/[`capture_end`]) that
//!   renders records to JSONL in a per-thread buffer. `cqfd-service` runs
//!   each job entirely on one pool worker, so wrapping a job's execution
//!   in a capture yields exactly that job's trace — this is what the wire
//!   protocol's `trace=1` returns.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of active sinks (global subscriber + per-thread captures).
/// Zero means tracing is off and the macros do nothing.
static SINKS: AtomicUsize = AtomicUsize::new(0);

/// Global record sequence — unique, monotone across the process.
static SEQ: AtomicU64 = AtomicU64::new(0);

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// The **flight sink**: a second, dedicated subscriber slot for the
/// always-on flight recorder (`cqfd-flight`). It is deliberately separate
/// from [`SUBSCRIBER`] so that black-box recording survives the gateway's
/// `TraceRouter` installing and uninstalling the ordinary subscriber as
/// streams come and go.
static FLIGHT: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The job id records on this thread are tagged with, if any.
    static CURRENT_JOB: Cell<Option<u64>> = const { Cell::new(None) };
    /// Active per-thread JSONL capture buffer.
    static CAPTURE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// True when at least one sink is listening. One relaxed load — this is
/// the *entire* cost of a disabled `span!`/`event!` site.
#[inline]
pub fn enabled() -> bool {
    SINKS.load(Ordering::Relaxed) > 0
}

/// Installs (or replaces) the global subscriber.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) {
    let mut guard = SUBSCRIBER.write().expect("subscriber lock");
    if guard.is_none() {
        SINKS.fetch_add(1, Ordering::SeqCst);
    }
    *guard = Some(sub);
}

/// Removes the global subscriber, returning tracing to its free state
/// (unless thread-local captures are active elsewhere).
pub fn clear_subscriber() {
    let mut guard = SUBSCRIBER.write().expect("subscriber lock");
    if guard.take().is_some() {
        SINKS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Installs (or replaces) the flight sink — the always-on recorder slot,
/// independent of the ordinary subscriber (see `cqfd-flight`).
pub fn set_flight_sink(sink: Arc<dyn Subscriber>) {
    let mut guard = FLIGHT.write().expect("flight sink lock");
    if guard.is_none() {
        SINKS.fetch_add(1, Ordering::SeqCst);
    }
    *guard = Some(sink);
}

/// Removes the flight sink.
pub fn clear_flight_sink() {
    let mut guard = FLIGHT.write().expect("flight sink lock");
    if guard.take().is_some() {
        SINKS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Whether a flight sink is currently installed.
pub fn flight_sink_installed() -> bool {
    FLIGHT.read().expect("flight sink lock").is_some()
}

/// Whether an ordinary subscriber is currently installed (the gateway's
/// `TraceRouter` must leave this false when no stream is live).
pub fn subscriber_installed() -> bool {
    SUBSCRIBER.read().expect("subscriber lock").is_some()
}

/// Counts an extra anonymous sink (the sampling profiler, which consumes
/// span *entries* rather than records). Pair with [`remove_sink`].
pub(crate) fn add_sink() {
    SINKS.fetch_add(1, Ordering::SeqCst);
}

/// Releases a sink counted by [`add_sink`].
pub(crate) fn remove_sink() {
    SINKS.fetch_sub(1, Ordering::SeqCst);
}

/// Tags subsequent records on this thread with a job id (wire `job=`).
/// Pass `None` to untag. Returns the previous tag.
pub fn set_current_job(job: Option<u64>) -> Option<u64> {
    CURRENT_JOB.with(|c| c.replace(job))
}

/// The job id records on this thread are currently tagged with.
pub fn current_job() -> Option<u64> {
    CURRENT_JOB.with(|c| c.get())
}

/// Starts capturing this thread's records as JSONL, tagged with `job`.
/// Nested captures are not supported: a second `capture_begin` before
/// [`capture_end`] resets the buffer.
pub fn capture_begin(job: u64) {
    set_current_job(Some(job));
    CAPTURE.with(|c| {
        let mut buf = c.borrow_mut();
        if buf.is_none() {
            SINKS.fetch_add(1, Ordering::SeqCst);
        }
        *buf = Some(String::new());
    });
}

/// Stops the capture started by [`capture_begin`] and returns the JSONL
/// text (one record per line, possibly empty). Returns an empty string
/// if no capture was active.
pub fn capture_end() -> String {
    set_current_job(None);
    CAPTURE.with(|c| {
        let taken = c.borrow_mut().take();
        match taken {
            Some(buf) => {
                SINKS.fetch_sub(1, Ordering::SeqCst);
                buf
            }
            None => String::new(),
        }
    })
}

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span was entered; `fields` carry its attributes.
    SpanStart,
    /// A span was exited; `elapsed_ns` carries its wall time.
    SpanEnd,
    /// A point-in-time event.
    Event,
}

impl RecordKind {
    /// Wire name used in the JSONL `"type"` field.
    pub fn wire_name(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// A field value, borrowed from the instrumentation site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed string.
    Str(&'a str),
}

impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue<'_> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue<'_> {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue<'_> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}
impl<'a> From<&'a String> for FieldValue<'a> {
    fn from(v: &'a String) -> Self {
        FieldValue::Str(v.as_str())
    }
}

/// One trace record, borrowed from the emitting site and delivered
/// synchronously to sinks.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord<'a> {
    /// Process-unique, monotone sequence number.
    pub seq: u64,
    /// Span nesting depth on the emitting thread at emission time.
    pub depth: u32,
    /// Job id the emitting thread is tagged with, if any.
    pub job: Option<u64>,
    /// Start / end / event.
    pub kind: RecordKind,
    /// Span or event name (e.g. `chase.stage`).
    pub name: &'a str,
    /// Wall time for [`RecordKind::SpanEnd`], else `None`.
    pub elapsed_ns: Option<u64>,
    /// Attribute fields (names are the macro's identifiers).
    pub fields: &'a [(&'a str, FieldValue<'a>)],
}

/// A sink for trace records. Implementations must be cheap enough to run
/// inline on the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// Receives one record, synchronously.
    fn record(&self, rec: &TraceRecord<'_>);
}

fn emit(kind: RecordKind, name: &str, elapsed_ns: Option<u64>, fields: &[(&str, FieldValue<'_>)]) {
    let rec = TraceRecord {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        depth: DEPTH.with(|d| d.get()),
        job: current_job(),
        kind,
        name,
        elapsed_ns,
        fields,
    };
    CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            crate::jsonl::render_record_into(buf, &rec);
            buf.push('\n');
        }
    });
    let sub = SUBSCRIBER.read().expect("subscriber lock").clone();
    if let Some(sub) = sub {
        sub.record(&rec);
    }
    let flight = FLIGHT.read().expect("flight sink lock").clone();
    if let Some(flight) = flight {
        flight.record(&rec);
    }
}

/// Emits an [`RecordKind::Event`] record. Called by the `event!` macro
/// after its `enabled()` check; prefer the macro.
pub fn emit_event(name: &str, fields: &[(&str, FieldValue<'_>)]) {
    emit(RecordKind::Event, name, None, fields);
}

/// A RAII span guard returned by the `span!` macro. Emits `span_end`
/// (with wall time) when dropped. A disabled guard is inert.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    started: Instant,
    /// Publishes the span on this thread's sampled path (inert and free
    /// unless a profiler is running; see [`crate::profile`]).
    _frame: crate::profile::Frame,
}

impl Span {
    /// Enters a span: emits `span_start` with `fields` and increments the
    /// thread depth. Called by `span!` after its `enabled()` check.
    pub fn enter(name: &'static str, fields: &[(&str, FieldValue<'_>)]) -> Span {
        emit(RecordKind::SpanStart, name, None, fields);
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            inner: Some(SpanInner {
                name,
                started: Instant::now(),
                _frame: crate::profile::frame(name),
            }),
        }
    }

    /// The inert guard `span!` returns when tracing is off.
    pub fn disabled() -> Span {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            emit(RecordKind::SpanEnd, inner.name, Some(elapsed), &[]);
        }
    }
}

/// Opens a span guard; the span closes (emitting its wall time) when the
/// guard drops. Field expressions are **not evaluated** when tracing is
/// disabled.
///
/// ```
/// # use cqfd_obs::span;
/// let _g = span!("chase.stage", stage = 3usize, rule = "r_creep");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::enter(
                $name,
                &[$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    };
}

/// Emits a point-in-time event. Field expressions are **not evaluated**
/// when tracing is disabled.
///
/// ```
/// # use cqfd_obs::event;
/// event!("oracle.verdict", verdict = "determined");
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_event(
                $name,
                &[$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            );
        }
    };
}

/// A subscriber that streams records as JSONL to any writer (a trace
/// file, a pipe, a test buffer).
pub struct JsonlWriter<W: std::io::Write + Send> {
    out: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlWriter<W> {
    /// Wraps `out`; each record becomes one line.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out: Mutex::new(out),
        }
    }
}

impl<W: std::io::Write + Send> Subscriber for JsonlWriter<W> {
    fn record(&self, rec: &TraceRecord<'_>) {
        let line = crate::jsonl::render_record(rec);
        let mut out = self.out.lock().expect("jsonl writer lock");
        let _ = writeln!(out, "{line}");
    }
}

/// A subscriber that folds span wall times into a registry: every
/// `span_end` lands in the histogram `cqfd_span_seconds{name=...}`.
/// Gives p50/p95/p99 per span name without any trace file.
pub struct RegistryAggregator {
    registry: &'static crate::Registry,
}

impl RegistryAggregator {
    /// Aggregates into `registry` (usually [`crate::global`]).
    pub fn new(registry: &'static crate::Registry) -> Self {
        RegistryAggregator { registry }
    }
}

impl Subscriber for RegistryAggregator {
    fn record(&self, rec: &TraceRecord<'_>) {
        if let (RecordKind::SpanEnd, Some(ns)) = (rec.kind, rec.elapsed_ns) {
            self.registry
                .histogram(
                    "cqfd_span_seconds",
                    "Wall time of traced spans, by span name.",
                    &[("name", rec.name)],
                    crate::Unit::Seconds,
                )
                .observe(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_do_not_evaluate_fields() {
        // No subscriber, no capture on this thread → fields must not run.
        // (Another test's capture runs on its own thread and cannot flip
        // this thread's CAPTURE; a concurrently-installed global
        // subscriber could, so this test owns no global state.)
        fn boom() -> u64 {
            panic!("field evaluated while disabled")
        }
        if !enabled() {
            let _g = span!("test.disabled", v = boom());
            event!("test.disabled_event", v = boom());
        }
    }

    #[test]
    fn capture_collects_this_threads_records() {
        capture_begin(42);
        {
            let _g = span!("test.outer", items = 3usize);
            event!("test.mark", ok = true, label = "mid");
        }
        let text = capture_end();
        let recs = crate::jsonl::parse_lines(&text).expect("captured lines parse");
        assert_eq!(recs.len(), 3, "start, event, end: {text}");
        assert!(recs.iter().all(|r| r.job == Some(42)));
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[1].kind, RecordKind::Event);
        assert_eq!(recs[1].depth, 1, "event sits inside the span");
        assert_eq!(recs[2].kind, RecordKind::SpanEnd);
        assert!(recs[2].elapsed_ns.is_some());
        assert!(recs[0].seq < recs[1].seq && recs[1].seq < recs[2].seq);
        // After capture_end the thread is untagged and (absent a global
        // subscriber) tracing is free again.
        assert_eq!(current_job(), None);
    }
}
