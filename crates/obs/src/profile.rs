//! Per-thread span-path publication for the sampling profiler.
//!
//! A sampling profiler needs to ask, from a *sampler* thread, "what is
//! thread X doing right now?" — without the sampled threads paying
//! anything while nobody is asking. This module is the publication side
//! of that contract:
//!
//! * every thread that opens a span (or an explicit [`frame`]) owns one
//!   **slot** — its thread name plus a mutex-guarded stack of
//!   `&'static str` frame names — registered in a process-wide table;
//! * publication is gated on a process-wide sampler count: with no
//!   sampler active ([`sampling_active`] false), pushing a frame is **one
//!   relaxed atomic load** and nothing else. While a sampler runs, a push
//!   is an uncontended mutex lock and a `Vec` push of a static pointer —
//!   no allocation after the stack's first few frames;
//! * the sampler calls [`snapshot_stacks`] at its own cadence and folds
//!   the results; slots of threads that have exited are pruned there
//!   (each thread's slot guard flips a `live` flag on thread teardown, so
//!   a sampler never observes a stale stack as current work).
//!
//! The [`crate::span!`] macro publishes automatically (every span is a
//! frame); code with hot regions *below* span granularity — the
//! homomorphism-search inner loops — publishes explicit frames so
//! profiles name them without paying for full trace records.
//!
//! Because a sampler must see spans even when no trace sink is installed,
//! [`sampling_begin`] also counts as a sink for [`crate::trace::enabled`]:
//! span sites evaluate while a profile is being taken.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of concurrently active samplers. Non-zero switches frame
/// publication on.
static SAMPLERS: AtomicUsize = AtomicUsize::new(0);

/// Distinguishes otherwise-unnamed threads in profiles.
static ANON_THREADS: AtomicU64 = AtomicU64::new(0);

/// True while at least one sampler is running. One relaxed load — the
/// entire cost of a frame push while idle.
#[inline]
pub fn sampling_active() -> bool {
    SAMPLERS.load(Ordering::Relaxed) > 0
}

/// Enters sampling mode (counted; concurrent samplers stack). Also counts
/// as a trace sink so span sites evaluate during the profile window.
pub fn sampling_begin() {
    SAMPLERS.fetch_add(1, Ordering::SeqCst);
    crate::trace::add_sink();
}

/// Leaves sampling mode (pair with [`sampling_begin`]).
pub fn sampling_end() {
    SAMPLERS.fetch_sub(1, Ordering::SeqCst);
    crate::trace::remove_sink();
}

/// One thread's published stack. `live` flips to false when the owning
/// thread exits; [`snapshot_stacks`] prunes dead slots.
struct StackSlot {
    thread: String,
    live: AtomicBool,
    frames: Mutex<Vec<&'static str>>,
}

fn slot_table() -> &'static Mutex<Vec<Arc<StackSlot>>> {
    static TABLE: OnceLock<Mutex<Vec<Arc<StackSlot>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Mutex lock that shrugs off poisoning: a panicking sampled thread must
/// not wedge the profiler (or vice versa), and a frame stack is valid at
/// every intermediate state.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Owns this thread's slot; `Drop` (thread teardown) retires it.
struct SlotGuard {
    slot: Arc<StackSlot>,
}

impl SlotGuard {
    fn register() -> SlotGuard {
        let thread = std::thread::current().name().map_or_else(
            || format!("anon-{}", ANON_THREADS.fetch_add(1, Ordering::Relaxed)),
            String::from,
        );
        let slot = Arc::new(StackSlot {
            thread,
            live: AtomicBool::new(true),
            frames: Mutex::new(Vec::new()),
        });
        lock_unpoisoned(slot_table()).push(Arc::clone(&slot));
        SlotGuard { slot }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.slot.live.store(false, Ordering::SeqCst);
    }
}

thread_local! {
    static MY_SLOT: SlotGuard = SlotGuard::register();
}

/// A pushed profiler frame; popping happens on drop. Inert (and free)
/// when no sampler is active at push time.
#[must_use = "a frame publishes the scope it is alive for"]
pub struct Frame {
    pushed: bool,
}

/// Publishes `name` as the innermost frame of this thread's span path
/// until the returned guard drops. Costs one relaxed load when no sampler
/// is active.
#[inline]
pub fn frame(name: &'static str) -> Frame {
    if !sampling_active() {
        return Frame { pushed: false };
    }
    let pushed = MY_SLOT
        .try_with(|g| {
            lock_unpoisoned(&g.slot.frames).push(name);
        })
        .is_ok();
    Frame { pushed }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if self.pushed {
            // `try_with`: a frame may drop during thread teardown, after
            // the slot guard itself was destroyed.
            let _ = MY_SLOT.try_with(|g| {
                lock_unpoisoned(&g.slot.frames).pop();
            });
        }
    }
}

/// A point-in-time reading of every live thread's span path, sorted by
/// thread name (then registration order for name ties). Threads that have
/// exited since the last call are pruned. Threads with an empty stack are
/// included — a sampler may want to report them as idle.
pub fn snapshot_stacks() -> Vec<(String, Vec<&'static str>)> {
    let mut table = lock_unpoisoned(slot_table());
    table.retain(|s| s.live.load(Ordering::SeqCst));
    let mut out: Vec<(String, Vec<&'static str>)> = table
        .iter()
        .map(|s| (s.thread.clone(), lock_unpoisoned(&s.frames).clone()))
        .collect();
    drop(table);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_free_and_invisible_without_a_sampler() {
        if sampling_active() {
            return; // another test's sampler window; invariants hold anyway
        }
        let _f = frame("profile.test_invisible");
        assert!(!_f.pushed);
        assert!(!snapshot_stacks()
            .iter()
            .any(|(_, fr)| fr.contains(&"profile.test_invisible")));
    }

    #[test]
    fn sampler_sees_frames_and_tolerates_thread_exit() {
        sampling_begin();
        let t = std::thread::Builder::new()
            .name("profile-test-worker".into())
            .spawn(|| {
                let _outer = frame("profile.outer");
                let _inner = frame("profile.inner");
                let stacks = snapshot_stacks();
                let mine = stacks
                    .iter()
                    .find(|(n, _)| n == "profile-test-worker")
                    .expect("own slot visible");
                assert_eq!(mine.1, vec!["profile.outer", "profile.inner"]);
            })
            .unwrap();
        t.join().unwrap();
        // The worker exited: its slot must be pruned, not reported stale.
        let stacks = snapshot_stacks();
        assert!(
            !stacks.iter().any(|(n, _)| n == "profile-test-worker"),
            "{stacks:?}"
        );
        sampling_end();
    }

    #[test]
    fn pops_survive_a_sampler_stopping_mid_span() {
        sampling_begin();
        let f = frame("profile.mid");
        sampling_end();
        drop(f); // pop with sampling off: must not underflow or panic
        sampling_begin();
        let stacks = snapshot_stacks();
        let me = std::thread::current().name().map(String::from);
        if let Some(name) = me {
            if let Some((_, frames)) = stacks.iter().find(|(n, _)| *n == name) {
                assert!(!frames.contains(&"profile.mid"), "{frames:?}");
            }
        }
        sampling_end();
    }
}
