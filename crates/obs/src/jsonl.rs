//! The JSONL trace-line format: rendering and a round-trip parser.
//!
//! Every trace record becomes one JSON object on one line:
//!
//! ```json
//! {"seq":17,"depth":1,"job":3,"type":"span_start","name":"chase.stage","fields":{"stage":2}}
//! {"seq":21,"depth":1,"job":3,"type":"span_end","name":"chase.stage","elapsed_ns":48210,"fields":{}}
//! ```
//!
//! Keys appear in a fixed order (`seq`, `depth`, `job?`, `type`, `name`,
//! `elapsed_ns?`, `fields`) so rendered output is byte-deterministic for a
//! given record. `job` is present only when the emitting thread was
//! tagged; `elapsed_ns` only on `span_end`.
//!
//! The workspace has no serde (offline container), so this module carries
//! its own small parser, restricted to exactly this shape. It exists so
//! `trace=1` output can be consumed by tests and tooling, and so the
//! format is pinned by a round-trip property rather than by accident.

use crate::trace::{FieldValue, RecordKind, TraceRecord};

/// Renders one record as a single JSON line (no trailing newline).
pub fn render_record(rec: &TraceRecord<'_>) -> String {
    let mut out = String::with_capacity(96);
    render_record_into(&mut out, rec);
    out
}

/// Renders one record into `out` (no trailing newline).
pub fn render_record_into(out: &mut String, rec: &TraceRecord<'_>) {
    out.push_str("{\"seq\":");
    push_u64(out, rec.seq);
    out.push_str(",\"depth\":");
    push_u64(out, rec.depth as u64);
    if let Some(job) = rec.job {
        out.push_str(",\"job\":");
        push_u64(out, job);
    }
    out.push_str(",\"type\":\"");
    out.push_str(rec.kind.wire_name());
    out.push_str("\",\"name\":");
    push_json_string(out, rec.name);
    if let Some(ns) = rec.elapsed_ns {
        out.push_str(",\"elapsed_ns\":");
        push_u64(out, ns);
    }
    out.push_str(",\"fields\":{");
    for (i, (key, val)) in rec.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, key);
        out.push(':');
        match val {
            FieldValue::U64(v) => push_u64(out, *v),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                // Non-finite floats have no JSON representation; clamp.
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push('0');
                }
            }
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => push_json_string(out, s),
        }
    }
    out.push_str("}}");
}

fn push_u64(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed, owned trace record (the borrowed [`TraceRecord`] with its
/// strings materialised).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRecord {
    /// Sequence number.
    pub seq: u64,
    /// Span nesting depth at emission.
    pub depth: u32,
    /// Job tag, if the record carried one.
    pub job: Option<u64>,
    /// Start / end / event.
    pub kind: RecordKind,
    /// Span or event name.
    pub name: String,
    /// Wall time for span ends.
    pub elapsed_ns: Option<u64>,
    /// Attribute fields in rendered order.
    pub fields: Vec<(String, OwnedValue)>,
}

impl OwnedRecord {
    /// The field with the given name, if present.
    pub fn field(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// An owned field value.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// Parses one JSONL trace line.
pub fn parse_record(line: &str) -> Result<OwnedRecord, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let rec = p.record()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(rec)
}

/// Parses a whole JSONL trace (one record per non-empty line).
pub fn parse_lines(text: &str) -> Result<Vec<OwnedRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| parse_record(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn record(&mut self) -> Result<OwnedRecord, String> {
        self.expect(b'{')?;
        let mut seq = None;
        let mut depth = None;
        let mut job = None;
        let mut kind = None;
        let mut name = None;
        let mut elapsed_ns = None;
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "seq" => seq = Some(self.u64()?),
                "depth" => depth = Some(self.u64()? as u32),
                "job" => job = Some(self.u64()?),
                "elapsed_ns" => elapsed_ns = Some(self.u64()?),
                "type" => {
                    let t = self.string()?;
                    kind = Some(match t.as_str() {
                        "span_start" => RecordKind::SpanStart,
                        "span_end" => RecordKind::SpanEnd,
                        "event" => RecordKind::Event,
                        other => return Err(format!("unknown record type `{other}`")),
                    });
                }
                "name" => name = Some(self.string()?),
                "fields" => fields = self.fields_object()?,
                other => return Err(format!("unknown key `{other}`")),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
        Ok(OwnedRecord {
            seq: seq.ok_or("missing `seq`")?,
            depth: depth.ok_or("missing `depth`")?,
            job,
            kind: kind.ok_or("missing `type`")?,
            name: name.ok_or("missing `name`")?,
            elapsed_ns,
            fields,
        })
    }

    fn fields_object(&mut self) -> Result<Vec<(String, OwnedValue)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(out);
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<OwnedValue, String> {
        match self.peek() {
            Some(b'"') => Ok(OwnedValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(OwnedValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(OwnedValue::Bool(false))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<OwnedValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(OwnedValue::F64)
                .map_err(|e| format!("bad float `{text}`: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(OwnedValue::I64)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        } else {
            text.parse::<u64>()
                .map(OwnedValue::U64)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        match self.number()? {
            OwnedValue::U64(v) => Ok(v),
            other => Err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .next_char()
                .ok_or_else(|| "unterminated string".to_string())?;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .next_char()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self
                                    .next_char()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| "bad \\u escape".to_string())?;
                                code = code * 16 + h;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn next_char(&mut self) -> Option<char> {
        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
        let c = rest.chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_every_field() {
        let fields = [
            ("rule", FieldValue::Str("r_creep \"quoted\"\nline")),
            ("stage", FieldValue::U64(7)),
            ("delta", FieldValue::I64(-3)),
            ("ratio", FieldValue::F64(0.25)),
            ("hit", FieldValue::Bool(true)),
        ];
        let rec = TraceRecord {
            seq: 99,
            depth: 2,
            job: Some(5),
            kind: RecordKind::SpanStart,
            name: "chase.stage",
            elapsed_ns: None,
            fields: &fields,
        };
        let line = render_record(&rec);
        let parsed = parse_record(&line).expect("parses");
        assert_eq!(parsed.seq, 99);
        assert_eq!(parsed.depth, 2);
        assert_eq!(parsed.job, Some(5));
        assert_eq!(parsed.kind, RecordKind::SpanStart);
        assert_eq!(parsed.name, "chase.stage");
        assert_eq!(parsed.elapsed_ns, None);
        assert_eq!(
            parsed.field("rule"),
            Some(&OwnedValue::Str("r_creep \"quoted\"\nline".to_string()))
        );
        assert_eq!(parsed.field("stage"), Some(&OwnedValue::U64(7)));
        assert_eq!(parsed.field("delta"), Some(&OwnedValue::I64(-3)));
        assert_eq!(parsed.field("ratio"), Some(&OwnedValue::F64(0.25)));
        assert_eq!(parsed.field("hit"), Some(&OwnedValue::Bool(true)));
        // Rendering the parse of a render is a fixed point.
        assert_eq!(parse_record(&line).unwrap(), parsed);
    }

    #[test]
    fn span_end_carries_elapsed() {
        let rec = TraceRecord {
            seq: 1,
            depth: 0,
            job: None,
            kind: RecordKind::SpanEnd,
            name: "x",
            elapsed_ns: Some(12345),
            fields: &[],
        };
        let parsed = parse_record(&render_record(&rec)).unwrap();
        assert_eq!(parsed.elapsed_ns, Some(12345));
        assert_eq!(parsed.job, None);
        assert!(parsed.fields.is_empty());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_record("{").is_err());
        assert!(parse_record("{\"seq\":1}").is_err(), "missing keys");
        assert!(parse_record(
            "{\"seq\":1,\"depth\":0,\"type\":\"nope\",\"name\":\"x\",\"fields\":{}}"
        )
        .is_err());
        assert!(parse_lines("not json\n").is_err());
    }
}
