//! # cqfd-obs — observability for determinacy workloads
//!
//! Everything this workspace runs — the chase toward the red spider, the
//! spider-query homomorphism searches, rainworm creep — is a long-running
//! *search*, and for searches instrumentation is what separates "slow"
//! from "diverging" (the chase of Theorem 1 may legitimately never stop).
//! This crate is the one observability layer the rest of the workspace
//! threads through:
//!
//! * [`registry`] — a lock-cheap metrics [`Registry`]: counters, gauges,
//!   and log-scale histograms (p50/p95/p99) behind typed handles. A handle
//!   is registered once (one short lock) and then updated with plain
//!   relaxed atomics — safe to share across pool workers;
//! * [`trace`] — a span/event tracing facade ([`span!`], [`event!`]) with
//!   a pluggable [`Subscriber`](trace::Subscriber). When no subscriber is
//!   installed and no capture is active, the macros cost one relaxed
//!   atomic load and allocate nothing. A thread-local capture turns one
//!   job's spans into JSONL trace lines (`cqfd-service`'s `trace=1`);
//! * [`prom`] — Prometheus text exposition of a registry [`Snapshot`]
//!   (label escaping, cumulative `le` buckets, `_sum`/`_count`);
//! * [`jsonl`] — the JSONL trace-line format and its parser, so traces
//!   round-trip for tooling and tests;
//! * [`time`] — [`Stopwatch`], the single wall-clock measurement primitive
//!   the workspace uses (chase runs, job execution, CLI reporting), so
//!   every `elapsed` figure shares one semantics.
//!
//! ```
//! use cqfd_obs::{span, Registry, Unit};
//!
//! let reg = Registry::new();
//! let jobs = reg.counter("demo_jobs_total", "Jobs seen.", &[("kind", "chase")]);
//! let latency = reg.histogram("demo_seconds", "Latency.", &[], Unit::Seconds);
//!
//! let _guard = span!("demo.work", kind = "chase"); // no-op: no subscriber
//! jobs.inc();
//! latency.observe_duration(std::time::Duration::from_micros(250));
//!
//! let text = cqfd_obs::prom::render(&reg.snapshot());
//! assert!(text.contains("demo_jobs_total{kind=\"chase\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonl;
pub mod profile;
pub mod prom;
pub mod registry;
pub mod time;
pub mod trace;

pub use registry::{
    Counter, Exemplar, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry,
    Snapshot, Unit, Value,
};
pub use time::Stopwatch;
pub use trace::{RecordKind, Subscriber, TraceRecord};

use std::sync::OnceLock;

/// The process-wide registry that the workspace's instrumentation points
/// (chase, hom search, oracle, pool) publish into, and that `cqfd metrics`
/// and the service `metrics` command expose.
///
/// Initialisation registers the `cqfd_build_info` gauge (value 1, labels
/// `version` and `profile`), so every scrape of the global registry —
/// CLI, legacy server, gateway — identifies the binary it came from. The
/// workspace shares one version, so this crate's is the binary's.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = Registry::new();
        reg.gauge(
            "cqfd_build_info",
            "Build identity of the scraped binary; always 1.",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
        )
        .set(1);
        reg
    })
}
