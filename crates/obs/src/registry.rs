//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Registration is the only synchronised step (one short `RwLock` write to
//! find-or-create the series); the returned handles are `Arc`s over plain
//! atomics, so the hot path — a pool worker bumping a counter, the chase
//! observing a stage latency — is a relaxed atomic op with no lock and no
//! allocation. Handles are cheap to clone and safe to share across
//! threads; totals are exact under any interleaving because every update
//! is a single atomic RMW.
//!
//! Histograms are **log-scale**: observation `v` lands in bucket
//! `⌊log₂ v⌋`, covering the full `u64` range in 64 counters. That is
//! coarse (one bucket per octave) but cheap, bounded, and plenty to tell
//! p50 from p95 from p99 on latency distributions that span orders of
//! magnitude — which chase stages and hom searches do.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of log₂ buckets in a histogram (covers all of `u64`).
pub const BUCKETS: usize = 64;

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing `u64`.
    Counter,
    /// Arbitrary signed level.
    Gauge,
    /// Log-scale distribution of `u64` observations.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` word.
    pub fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The unit of a histogram's raw `u64` observations, used by the
/// Prometheus renderer to expose conventional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unit {
    /// Raw dimensionless values (counts, sizes).
    #[default]
    None,
    /// Observations are **nanoseconds**; exposition divides by 1e9 so the
    /// family reads in seconds, per Prometheus convention.
    Seconds,
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// Per-bucket exemplar job id **plus one** (0 = no exemplar yet).
    /// Written only when the observing thread is tagged with a job id
    /// (`trace::current_job`), so an exemplar links a latency bucket back
    /// to the most recent job that landed in it.
    exemplar_job: [AtomicU64; BUCKETS],
    /// The raw observed value of the bucket's exemplar. Updated beside
    /// `exemplar_job` with two relaxed stores; a racing reader can pair a
    /// job with a neighbouring observation's value, which is harmless for
    /// a debugging breadcrumb.
    exemplar_val: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            exemplar_job: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_val: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket an observation falls into: `⌊log₂ max(v,1)⌋`.
fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Handle to a monotone counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge (a signed level). Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a log-scale histogram. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation. If the observing thread is tagged with a
    /// job id (see [`crate::trace::set_current_job`]), the observation
    /// also becomes the bucket's exemplar — "the last job that landed
    /// here" — surfaced by the Prometheus exposition.
    pub fn observe(&self, v: u64) {
        let i = bucket_index(v);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(job) = crate::trace::current_job() {
            self.0.exemplar_job[i].store(job.saturating_add(1), Ordering::Relaxed);
            self.0.exemplar_val[i].store(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds (pair with [`Unit::Seconds`]).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

type Labels = Vec<(String, String)>;

struct Family {
    kind: MetricKind,
    help: String,
    unit: Unit,
    /// Sorted by label set, so snapshots (and exposition) are
    /// deterministic.
    series: Vec<(Labels, Cell)>,
}

/// A lock-cheap metrics registry. See the [module docs](self).
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry. Most code uses [`crate::global`] instead;
    /// private registries are for tests and embedding.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-fetches) a counter series.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, labels, MetricKind::Counter, Unit::None) {
            Cell::Counter(c) => Counter(c),
            _ => unreachable!("kind checked in cell()"),
        }
    }

    /// Registers (or re-fetches) a gauge series.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, labels, MetricKind::Gauge, Unit::None) {
            Cell::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked in cell()"),
        }
    }

    /// Registers (or re-fetches) a histogram series.
    ///
    /// # Panics
    /// If `name` is already registered with a different metric kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Histogram {
        match self.cell(name, help, labels, MetricKind::Histogram, unit) {
            Cell::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked in cell()"),
        }
    }

    fn cell(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        unit: Unit,
    ) -> Cell {
        let mut key: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        let mut fams = self.families.write().expect("registry lock");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            unit,
            series: Vec::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric family `{name}` registered with two kinds"
        );
        let idx = match fam.series.binary_search_by(|(l, _)| l.cmp(&key)) {
            Ok(i) => i,
            Err(i) => {
                let cell = match kind {
                    MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
                    MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicI64::new(0))),
                    MetricKind::Histogram => Cell::Histogram(Arc::new(HistogramCore::new())),
                };
                fam.series.insert(i, (key, cell));
                i
            }
        };
        match &fam.series[idx].1 {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        }
    }

    /// A point-in-time reading of every series.
    ///
    /// Counters and histogram buckets are each read atomically, so any
    /// value observed in one snapshot is a lower bound in every later
    /// snapshot — snapshots of monotone metrics are monotone even while
    /// writers race.
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.read().expect("registry lock");
        let families = fams
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                series: fam
                    .series
                    .iter()
                    .map(|(labels, cell)| {
                        let value = match cell {
                            Cell::Counter(c) => Value::Counter(c.load(Ordering::Relaxed)),
                            Cell::Gauge(g) => Value::Gauge(g.load(Ordering::Relaxed)),
                            Cell::Histogram(h) => Value::Histogram(HistogramSnapshot {
                                buckets: h
                                    .buckets
                                    .iter()
                                    .map(|b| b.load(Ordering::Relaxed))
                                    .collect(),
                                sum: h.sum.load(Ordering::Relaxed),
                                unit: fam.unit,
                                exemplars: (0..BUCKETS)
                                    .map(|i| {
                                        let tag = h.exemplar_job[i].load(Ordering::Relaxed);
                                        (tag > 0).then(|| Exemplar {
                                            job: tag - 1,
                                            value: h.exemplar_val[i].load(Ordering::Relaxed),
                                        })
                                    })
                                    .collect(),
                            }),
                        };
                        (labels.clone(), value)
                    })
                    .collect(),
            })
            .collect();
        Snapshot { families }
    }
}

/// A frozen reading of a whole registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// One entry per family, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// The family with the given name, if present.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// A frozen reading of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name (e.g. `cqfd_chase_firings_total`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// `(sorted labels, value)` per series, sorted by labels.
    pub series: Vec<(Vec<(String, String)>, Value)>,
}

impl FamilySnapshot {
    /// The value of the series with exactly these labels (order-free).
    pub fn get(&self, labels: &[(&str, &str)]) -> Option<&Value> {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        self.series.iter().find(|(l, _)| *l == key).map(|(_, v)| v)
    }
}

/// One series' frozen value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram buckets/sum.
    Histogram(HistogramSnapshot),
}

impl Value {
    /// The counter total, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Value::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge level, if this is a gauge.
    pub fn as_gauge(&self) -> Option<i64> {
        match self {
            Value::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram reading, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            Value::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A bucket's exemplar: the last job-tagged observation that landed in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The pool job id the observation was tagged with.
    pub job: u64,
    /// The raw observed value (same unit as the histogram's raw values).
    pub value: u64,
}

/// A frozen histogram reading.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` holds observations in
    /// `[2^i, 2^{i+1})` (bucket 0 also holds zeros).
    pub buckets: Vec<u64>,
    /// Sum of raw observations.
    pub sum: u64,
    /// The unit the raw values are in.
    pub unit: Unit,
    /// Per-bucket exemplars, parallel to `buckets` (`None` until a
    /// job-tagged observation lands in the bucket).
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a representative raw value: the
    /// geometric midpoint of the bucket where the cumulative count crosses
    /// `q·count`. Resolution is one octave — enough to rank p50/p95/p99 on
    /// wide latency distributions. Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Geometric midpoint of [2^i, 2^{i+1}).
                return (2f64).powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        (2f64).powi((BUCKETS - 1) as i32)
    }

    /// [`Self::quantile`] converted to the family's unit (seconds for
    /// [`Unit::Seconds`], raw otherwise).
    pub fn quantile_in_unit(&self, q: f64) -> f64 {
        let v = self.quantile(q);
        match self.unit {
            Unit::None => v,
            Unit::Seconds => v / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_update_and_read_back() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "h", &[("k", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering the same series shares the cell.
        let c2 = reg.counter("t_total", "h", &[("k", "a")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        // A different label set is a different series.
        let c3 = reg.counter("t_total", "h", &[("k", "b")]);
        assert_eq!(c3.get(), 0);

        let g = reg.gauge("t_gauge", "h", &[]);
        g.set(7);
        g.dec();
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("t_seconds", "h", &[], Unit::Seconds);
        // 90 fast observations (~1µs), 10 slow (~1ms): p50 in the fast
        // octave, p99 in the slow one.
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let snap = reg.snapshot();
        let hs = snap.family("t_seconds").unwrap().series[0]
            .1
            .as_histogram()
            .unwrap()
            .clone();
        assert_eq!(hs.count(), 100);
        assert_eq!(hs.sum, 90 * 1_000 + 10 * 1_000_000);
        let p50 = hs.quantile(0.50);
        let p99 = hs.quantile(0.99);
        assert!(p50 < 2_048.0, "p50 {p50} in the fast octave");
        assert!(p99 > 500_000.0, "p99 {p99} in the slow octave");
        assert!(hs.quantile_in_unit(0.99) < 1.0, "seconds conversion");
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        let _c = reg.counter("same_name", "h", &[]);
        let _g = reg.gauge("same_name", "h", &[]);
    }
}
