//! Prometheus text-format exposition of a registry [`Snapshot`].
//!
//! Produces the classic text format: `# HELP` / `# TYPE` headers, one
//! sample line per series, histograms as cumulative `_bucket{le=...}`
//! lines plus `_sum` and `_count`. Output is deterministic — families in
//! name order, series in label order, buckets in ascending `le` — so it
//! can be golden-tested and diffed across scrapes.
//!
//! Histograms registered with [`Unit::Seconds`] record raw nanoseconds;
//! this renderer divides bounds and sums by 1e9 so the exposed family
//! follows the Prometheus base-unit convention (seconds). Log₂ buckets
//! expose their octave upper bound as `le` (bucket *i* holds values in
//! `[2^i, 2^{i+1})`, so its cumulative bound is `2^{i+1}`); trailing
//! empty octaves are elided, `+Inf` is always present.
//!
//! Buckets carry **exemplars** in the OpenMetrics trailer syntax
//! (`… # {job_id="17"} 0.003`): the last job-tagged observation that
//! landed in the bucket, linking a latency octave straight back to a
//! concrete pool job id for forensics. Strict classic-text-format
//! parsers that reject the trailer can scrape with job tagging unused —
//! exemplars only render once a tagged observation exists.

use crate::registry::{Snapshot, Unit, Value};

/// Renders a snapshot as Prometheus text (UTF-8, trailing newline).
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        out.push_str("# HELP ");
        out.push_str(&fam.name);
        out.push(' ');
        push_help(&mut out, &fam.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&fam.name);
        out.push(' ');
        out.push_str(fam.kind.prom_type());
        out.push('\n');
        for (labels, value) in &fam.series {
            match value {
                Value::Counter(v) => {
                    sample(&mut out, &fam.name, "", labels, None, &v.to_string());
                }
                Value::Gauge(v) => {
                    sample(&mut out, &fam.name, "", labels, None, &v.to_string());
                }
                Value::Histogram(h) => {
                    let last = h
                        .buckets
                        .iter()
                        .rposition(|&c| c > 0)
                        .map(|i| i + 1)
                        .unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &count) in h.buckets.iter().take(last).enumerate() {
                        cumulative += count;
                        let bound = scale(2f64.powi(i as i32 + 1), h.unit);
                        let mut value = cumulative.to_string();
                        if let Some(ex) = h.exemplars.get(i).copied().flatten() {
                            value.push_str(&format!(
                                " # {{job_id=\"{}\"}} {}",
                                ex.job,
                                format_f64(scale(ex.value as f64, h.unit))
                            ));
                        }
                        sample(
                            &mut out,
                            &fam.name,
                            "_bucket",
                            labels,
                            Some(&format_f64(bound)),
                            &value,
                        );
                    }
                    sample(
                        &mut out,
                        &fam.name,
                        "_bucket",
                        labels,
                        Some("+Inf"),
                        &h.count().to_string(),
                    );
                    let sum = scale(h.sum as f64, h.unit);
                    sample(&mut out, &fam.name, "_sum", labels, None, &format_f64(sum));
                    sample(
                        &mut out,
                        &fam.name,
                        "_count",
                        labels,
                        None,
                        &h.count().to_string(),
                    );
                }
            }
        }
    }
    out
}

fn scale(v: f64, unit: Unit) -> f64 {
    match unit {
        Unit::None => v,
        Unit::Seconds => v / 1e9,
    }
}

/// Formats a float the way Prometheus expects: integral values without a
/// fraction, everything else in shortest round-trip form.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn sample(
    out: &mut String,
    family: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(family);
    out.push_str(suffix);
    let has_labels = !labels.is_empty() || le.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            push_label_value(out, v);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn push_help(out: &mut String, help: &str) {
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_label_value(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Registry, Unit};

    #[test]
    fn golden_counter_and_gauge() {
        let reg = Registry::new();
        reg.counter("a_total", "Total as.", &[("kind", "x")]).add(3);
        reg.counter("a_total", "Total as.", &[("kind", "y")]).add(1);
        reg.gauge("b_level", "Level.", &[]).set(-2);
        let text = super::render(&reg.snapshot());
        assert_eq!(
            text,
            "# HELP a_total Total as.\n\
             # TYPE a_total counter\n\
             a_total{kind=\"x\"} 3\n\
             a_total{kind=\"y\"} 1\n\
             # HELP b_level Level.\n\
             # TYPE b_level gauge\n\
             b_level -2\n"
        );
    }

    /// Pins the exposition bytes of the wco hom-engine counter families
    /// (registered from `cqfd-core::hom::publish_hom_metrics`): family
    /// order is alphabetical and label-free samples render bare, so a
    /// scrape diff across engines shows only the values.
    #[test]
    fn golden_wco_hom_engine_families() {
        let reg = Registry::new();
        reg.counter(
            "cqfd_hom_intersection_steps_total",
            "Sorted-posting intersection element steps taken by the wco engine.",
            &[],
        )
        .add(42);
        reg.counter(
            "cqfd_homplan_cache_hits_total",
            "Wco variable-order plan-cache hits.",
            &[],
        )
        .add(7);
        reg.counter(
            "cqfd_homplan_cache_misses_total",
            "Wco variable-order plan-cache misses (orders computed).",
            &[],
        )
        .add(3);
        let text = super::render(&reg.snapshot());
        assert_eq!(
            text,
            "# HELP cqfd_hom_intersection_steps_total Sorted-posting intersection element \
             steps taken by the wco engine.\n\
             # TYPE cqfd_hom_intersection_steps_total counter\n\
             cqfd_hom_intersection_steps_total 42\n\
             # HELP cqfd_homplan_cache_hits_total Wco variable-order plan-cache hits.\n\
             # TYPE cqfd_homplan_cache_hits_total counter\n\
             cqfd_homplan_cache_hits_total 7\n\
             # HELP cqfd_homplan_cache_misses_total Wco variable-order plan-cache misses \
             (orders computed).\n\
             # TYPE cqfd_homplan_cache_misses_total counter\n\
             cqfd_homplan_cache_misses_total 3\n"
        );
    }

    #[test]
    fn golden_histogram_buckets_are_cumulative_and_ordered() {
        let reg = Registry::new();
        let h = reg.histogram("h_bytes", "Sizes.", &[], Unit::None);
        h.observe(1); // bucket 0, le 2
        h.observe(3); // bucket 1, le 4
        h.observe(3);
        let text = super::render(&reg.snapshot());
        assert_eq!(
            text,
            "# HELP h_bytes Sizes.\n\
             # TYPE h_bytes histogram\n\
             h_bytes_bucket{le=\"2\"} 1\n\
             h_bytes_bucket{le=\"4\"} 3\n\
             h_bytes_bucket{le=\"+Inf\"} 3\n\
             h_bytes_sum 7\n\
             h_bytes_count 3\n"
        );
    }

    #[test]
    fn label_and_help_escaping() {
        let reg = Registry::new();
        reg.counter("esc_total", "Back\\slash\nnewline.", &[("q", "a\"b\\c\nd")])
            .inc();
        let text = super::render(&reg.snapshot());
        assert!(text.contains("# HELP esc_total Back\\\\slash\\nnewline.\n"));
        assert!(text.contains("esc_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn seconds_histograms_expose_base_units() {
        let reg = Registry::new();
        let h = reg.histogram("t_seconds", "Latency.", &[], Unit::Seconds);
        h.observe(1_500_000_000); // 1.5s in ns → bucket 30, le 2^31 ns ≈ 2.147s
        let text = super::render(&reg.snapshot());
        assert!(text.contains("t_seconds_sum 1.5\n"), "{text}");
        assert!(text.contains("le=\"2.147483648\""), "{text}");
        assert!(text.contains("t_seconds_count 1\n"));
    }
}
