//! The on-disk content-addressed store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<hh>/<hash>.entry   # hh = first two hex chars of the hash
//! <root>/logs/<hash>.log             # write-ahead stage logs (see crate::log)
//! ```
//!
//! An `.entry` file is line-oriented, in the spirit of the certificate
//! wire format:
//!
//! ```text
//! cqfd-store v1
//! key <job hash>
//! kind <job kind>
//! sum sha256=<hex over result line + "\n" + certificate text>
//! result <normalized result line>
//! cert_lines=<n>
//! <n certificate lines, verbatim>
//! end
//! ```
//!
//! **Trust model.** The store is untrusted bytes on disk. A lookup never
//! returns a hit on format trust alone: the embedded checksum must match,
//! the certificate must parse in the trusted `cqfd-cert` grammar, and the
//! trusted checker ([`cqfd_cert::check`]) must accept it. Any failure is
//! a *reject* — counted, and treated by callers exactly like a miss (the
//! job is chased fresh and the entry overwritten). A corrupt or tampered
//! store can therefore cost time, never a wrong answer.
//!
//! Writes go through a `.tmp` sibling plus `rename`, so a crash mid-write
//! leaves either the old entry or a `.tmp` orphan (collected by
//! [`Store::gc`]), never a torn entry served as truth.

use crate::canon::JobKey;
use crate::sha::sha256_hex;
use cqfd_obs::{span, Counter};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A validated cache entry, ready for the caller's outcome↔certificate
/// consistency gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The job kind recorded at insert time (`determine`, `creep`, …).
    pub kind: String,
    /// The normalized result line (job id zeroed, timing zeroed).
    pub result_line: String,
    /// The certificate text, byte-for-byte as a fresh run would emit it.
    pub cert_text: String,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A checker-validated candidate. The caller must still run its
    /// outcome↔certificate-kind gate, then call [`Store::note_hit`] or
    /// [`Store::note_gate_reject`].
    Hit(Entry),
    /// No entry on disk for this key.
    Miss,
    /// An entry existed but failed validation (reason attached). Already
    /// counted as a checker reject; treat as a miss.
    Reject(String),
}

/// Counts from [`Store::stat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStat {
    /// Number of `.entry` objects.
    pub entries: usize,
    /// Total bytes across `.entry` objects.
    pub entry_bytes: u64,
    /// Number of stage-log files.
    pub logs: usize,
    /// Total bytes across stage-log files.
    pub log_bytes: u64,
}

/// What [`Store::gc`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Invalid entries deleted (failed the full validation pass).
    pub removed_entries: usize,
    /// Orphaned `.tmp` files deleted.
    pub removed_tmp: usize,
    /// Stage logs deleted (complete or unparseable; incomplete logs are
    /// resumable state and are kept).
    pub removed_logs: usize,
}

/// What [`Store::evict_to`] removed to honor a size bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictReport {
    /// Entries evicted (least recently hit first).
    pub evicted_entries: usize,
    /// Bytes those entries occupied.
    pub evicted_bytes: u64,
    /// Entry bytes remaining after eviction.
    pub retained_bytes: u64,
}

/// One store metric: a per-store tally (what [`Store::counters`]
/// reports) mirrored into the process-wide registry counter (what the
/// Prometheus scrape reports). The registry deduplicates by name, so the
/// global counter aggregates over every open store in the process.
struct Tally {
    local: AtomicU64,
    global: Counter,
}

impl Tally {
    fn new(global: Counter) -> Tally {
        Tally {
            local: AtomicU64::new(0),
            global,
        }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

/// Handle to one store directory; share it behind an `Arc` across worker
/// threads (lookups and inserts take `&self`).
pub struct Store {
    root: PathBuf,
    hits: Tally,
    misses: Tally,
    rejects: Tally,
    resumes: Tally,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish()
    }
}

impl Store {
    /// Opens (creating if needed) the store at `dir` and registers the
    /// store counters on the global metrics registry.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("logs"))?;
        let reg = cqfd_obs::global();
        Ok(Store {
            root,
            hits: Tally::new(reg.counter(
                "cqfd_store_cache_hits_total",
                "Cache entries served after passing the trusted checker and the outcome gate",
                &[],
            )),
            misses: Tally::new(reg.counter(
                "cqfd_store_cache_misses_total",
                "Cache probes that found no entry",
                &[],
            )),
            rejects: Tally::new(reg.counter(
                "cqfd_store_checker_rejects_total",
                "Stored entries rejected by validation (format, checksum, or checker)",
                &[],
            )),
            resumes: Tally::new(reg.counter(
                "cqfd_store_resumes_total",
                "Chase runs resumed from a write-ahead stage log",
                &[],
            )),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry object for `hash`.
    pub fn entry_path(&self, hash: &str) -> PathBuf {
        let shard = if hash.len() >= 2 { &hash[..2] } else { "xx" };
        self.root
            .join("objects")
            .join(shard)
            .join(format!("{hash}.entry"))
    }

    /// Path of the write-ahead stage log for `hash`.
    pub fn log_path(&self, hash: &str) -> PathBuf {
        self.root.join("logs").join(format!("{hash}.log"))
    }

    /// Probes the cache for `key`. See [`Lookup`] for the counter
    /// discipline: `Miss` and `Reject` are counted here; a `Hit` is
    /// counted only when the caller confirms it with [`Store::note_hit`].
    pub fn lookup(&self, key: &JobKey, kind: &str) -> Lookup {
        let _span = span!("store.lookup", kind = kind);
        let path = self.entry_path(&key.hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.inc();
                return Lookup::Miss;
            }
            Err(e) => {
                self.rejects.inc();
                return Lookup::Reject(format!("read {}: {e}", path.display()));
            }
        };
        match validate_entry(&text, Some(&key.hash)) {
            Ok(entry) if entry.kind == kind => {
                // LRU bookkeeping: stamp the entry's mtime so eviction
                // under a --max-bytes bound drops cold entries first.
                // Best-effort — a read-only store still serves hits.
                let _ = touch(&path);
                Lookup::Hit(entry)
            }
            Ok(entry) => {
                self.rejects.inc();
                Lookup::Reject(format!(
                    "kind mismatch: stored {} requested {kind}",
                    entry.kind
                ))
            }
            Err(reason) => {
                self.rejects.inc();
                Lookup::Reject(reason)
            }
        }
    }

    /// Writes (or overwrites) the entry for `key` atomically.
    pub fn insert(
        &self,
        key: &JobKey,
        kind: &str,
        result_line: &str,
        cert_text: &str,
    ) -> io::Result<()> {
        let path = self.entry_path(&key.hash);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut body = String::new();
        body.push_str("cqfd-store v1\n");
        body.push_str(&format!("key {}\n", key.hash));
        body.push_str(&format!("kind {kind}\n"));
        body.push_str(&format!(
            "sum sha256={}\n",
            entry_sum(result_line, cert_text)
        ));
        body.push_str(&format!("result {result_line}\n"));
        let cert_lines = cert_text.lines().count();
        body.push_str(&format!("cert_lines={cert_lines}\n"));
        body.push_str(cert_text);
        if !cert_text.is_empty() && !cert_text.ends_with('\n') {
            body.push('\n');
        }
        body.push_str("end\n");
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)
    }

    /// Confirms a [`Lookup::Hit`] that also passed the caller's outcome
    /// gate and was served.
    pub fn note_hit(&self) {
        self.hits.inc();
    }

    /// Records that a validated candidate failed the caller's
    /// outcome↔certificate consistency gate and was discarded.
    pub fn note_gate_reject(&self) {
        self.rejects.inc();
    }

    /// Records a chase resumed from a stage log.
    pub fn note_resume(&self) {
        self.resumes.inc();
    }

    /// Counter snapshot `(hits, misses, rejects, resumes)` — for tests
    /// and `cqfd store stat`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.rejects.get(),
            self.resumes.get(),
        )
    }

    /// Sizes on disk.
    pub fn stat(&self) -> io::Result<StoreStat> {
        let mut s = StoreStat::default();
        for path in walk_files(&self.root.join("objects"))? {
            if path.extension().is_some_and(|e| e == "entry") {
                s.entries += 1;
                s.entry_bytes += fs::metadata(&path)?.len();
            }
        }
        for path in walk_files(&self.root.join("logs"))? {
            if path.extension().is_some_and(|e| e == "log") {
                s.logs += 1;
                s.log_bytes += fs::metadata(&path)?.len();
            }
        }
        Ok(s)
    }

    /// Validates every entry in place. Returns `(path, reason)` for each
    /// failure; an empty list means the store is fully checker-clean.
    pub fn verify(&self) -> io::Result<Vec<(PathBuf, String)>> {
        let mut bad = Vec::new();
        for path in walk_files(&self.root.join("objects"))? {
            if path.extension().is_none_or(|e| e != "entry") {
                continue;
            }
            let expected = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned);
            let result = fs::read_to_string(&path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|t| validate_entry(&t, expected.as_deref()).map(|_| ()));
            if let Err(reason) = result {
                bad.push((path, reason));
            }
        }
        Ok(bad)
    }

    /// Removes invalid entries, orphaned `.tmp` files, and dead stage
    /// logs. A stage log is dead when it is complete (its run finished;
    /// the result lives in an entry) or when its prelude is unreadable;
    /// an incomplete-but-parseable log is kept — it is resumable state.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for (path, _reason) in self.verify()? {
            fs::remove_file(&path)?;
            report.removed_entries += 1;
        }
        for path in walk_files(&self.root.join("objects"))? {
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
                report.removed_tmp += 1;
            }
        }
        for path in walk_files(&self.root.join("logs"))? {
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
                report.removed_tmp += 1;
                continue;
            }
            if path.extension().is_none_or(|e| e != "log") {
                continue;
            }
            let dead = match fs::read_to_string(&path) {
                Ok(text) => match cqfd_cert::parse_stage_log(&text) {
                    Ok(log) => log.complete,
                    Err(_) => true,
                },
                Err(_) => true,
            };
            if dead {
                fs::remove_file(&path)?;
                report.removed_logs += 1;
            }
        }
        Ok(report)
    }

    /// Evicts least-recently-hit entries until the `.entry` objects fit
    /// in `max_bytes`. Recency is the file mtime: [`Store::lookup`]
    /// touches an entry on every confirmed hit, so mtime order is
    /// last-hit order (falling back to insert order for never-hit
    /// entries). Run [`Store::gc`] first so the bound is spent on valid
    /// entries, not junk.
    pub fn evict_to(&self, max_bytes: u64) -> io::Result<EvictReport> {
        let mut entries = Vec::new();
        let mut total: u64 = 0;
        for path in walk_files(&self.root.join("objects"))? {
            if path.extension().is_none_or(|e| e != "entry") {
                continue;
            }
            let meta = fs::metadata(&path)?;
            let mtime = meta.modified()?;
            total += meta.len();
            entries.push((mtime, meta.len(), path));
        }
        entries.sort();
        let mut report = EvictReport {
            retained_bytes: total,
            ..EvictReport::default()
        };
        for (_mtime, len, path) in entries {
            if report.retained_bytes <= max_bytes {
                break;
            }
            fs::remove_file(&path)?;
            report.evicted_entries += 1;
            report.evicted_bytes += len;
            report.retained_bytes -= len;
        }
        Ok(report)
    }
}

/// Stamps `path`'s mtime to now (LRU recency marker for eviction).
fn touch(path: &Path) -> io::Result<()> {
    fs::File::open(path)?.set_modified(std::time::SystemTime::now())
}

/// The checksum stored on a cache entry: SHA-256 over the result line,
/// a newline, and the certificate text.
fn entry_sum(result_line: &str, cert_text: &str) -> String {
    let mut payload = String::with_capacity(result_line.len() + 1 + cert_text.len());
    payload.push_str(result_line);
    payload.push('\n');
    payload.push_str(cert_text);
    sha256_hex(payload.as_bytes())
}

/// Full untrusted-input validation of one entry file: format, key match,
/// checksum, certificate parse, and the trusted checker. Returns the
/// entry only when every gate passes.
fn validate_entry(text: &str, expected_key: Option<&str>) -> Result<Entry, String> {
    let mut lines = text.lines();
    if lines.next() != Some("cqfd-store v1") {
        return Err("bad magic: expected `cqfd-store v1`".into());
    }
    let key = field(lines.next(), "key ")?;
    if let Some(expected) = expected_key {
        if key != expected {
            return Err(format!(
                "key mismatch: entry says {key}, path says {expected}"
            ));
        }
    }
    let kind = field(lines.next(), "kind ")?;
    let sum = field(lines.next(), "sum sha256=")?;
    let result_line = field(lines.next(), "result ")?;
    let count_str = field(lines.next(), "cert_lines=")?;
    let cert_lines: usize = count_str
        .parse()
        .map_err(|_| format!("bad cert_lines count {count_str:?}"))?;
    let mut cert_text = String::new();
    for i in 0..cert_lines {
        let line = lines
            .next()
            .ok_or_else(|| format!("truncated: expected {cert_lines} cert lines, got {i}"))?;
        cert_text.push_str(line);
        cert_text.push('\n');
    }
    if lines.next() != Some("end") {
        return Err("missing `end` terminator".into());
    }
    if entry_sum(&result_line, &cert_text) != sum {
        return Err("checksum mismatch".into());
    }
    let cert = cqfd_cert::parse(&cert_text).map_err(|e| format!("cert parse: {e}"))?;
    cqfd_cert::check(&cert).map_err(|e| format!("checker reject: {e}"))?;
    Ok(Entry {
        kind,
        result_line,
        cert_text,
    })
}

/// Extracts a `prefix`-tagged header field.
fn field(line: Option<&str>, prefix: &str) -> Result<String, String> {
    match line {
        Some(l) if l.starts_with(prefix) => Ok(l[prefix.len()..].to_string()),
        other => Err(format!("expected `{prefix}…` line, got {other:?}")),
    }
}

/// All files under `dir`, one level of sharding deep, sorted for
/// deterministic reports.
fn walk_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for item in fs::read_dir(dir)? {
        let path = item?.path();
        if path.is_dir() {
            for sub in fs::read_dir(&path)? {
                let p = sub?.path();
                if p.is_file() {
                    out.push(p);
                }
            }
        } else if path.is_file() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}
