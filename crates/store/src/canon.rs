//! Canonical job text and the content-addressed job key.
//!
//! Two submissions of "the same" determinacy question must land on the
//! same cache entry even when their rule files list views in a different
//! order, list body atoms in a different order, or use different variable
//! letters. [`canonical_cq`] normalizes one query; [`KeyBuilder`]
//! assembles the normalized pieces of a whole job — kind, signature,
//! views (sorted), query, worm program, and the *budget-relevant* knobs
//! only — into one canonical text and hashes it with the vendored
//! [`sha256_hex`](crate::sha::sha256_hex).
//!
//! Deliberately **excluded** from the key: thread counts, timeouts,
//! trace/lint/certificate emission flags, and the cache/resume controls
//! themselves. None of these can change a verdict (the parallel chase is
//! byte-identical at every thread count), so letting them into the hash
//! would only fragment the cache.
//!
//! The canonicalization is a greedy minimum-rendering ordering, not a
//! full graph-canonization: a pathological pair of equivalent queries
//! with large symmetric bodies may still hash apart. That failure mode is
//! a harmless cache miss; the converse failure — distinct jobs colliding
//! — cannot happen, because the rendering is injective up to variable
//! renaming and the hash is over the full canonical text.

use crate::sha::sha256_hex;
use cqfd_core::{Cq, Signature, Term, Var};
use std::collections::HashMap;

/// A canonical job key: the content hash (the cache address) plus the
/// canonical text it was computed over (kept for debugging and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobKey {
    /// 64-char lowercase hex SHA-256 of the canonical text.
    pub hash: String,
    /// The canonical text itself.
    pub text: String,
}

/// Renders `q` in a canonical form invariant under body-atom reordering
/// and variable renaming: head variables are numbered first (answer-tuple
/// order is semantic, so it is kept), then body atoms are emitted in
/// greedy lexicographically-minimal order, numbering fresh variables in
/// order of first appearance. The query name is included — certificates
/// embed names, so two jobs differing only in names must not share a
/// cache entry (the stored certificate would not be byte-identical to a
/// fresh run's).
pub fn canonical_cq(sig: &Signature, q: &Cq) -> String {
    let mut ids: HashMap<Var, usize> = HashMap::new();
    for &v in &q.head_vars {
        let next = ids.len();
        ids.entry(v).or_insert(next);
    }
    let mut remaining: Vec<&cqfd_core::Atom<Term>> = q.body.iter().collect();
    let mut atoms: Vec<String> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Greedy canonical step: among the remaining atoms, pick the one
        // whose rendering (with hypothetical ids for its unassigned
        // variables) is lexicographically smallest. The choice depends
        // only on renderings, never on input order, so permuted inputs
        // converge.
        let mut best: Option<(String, usize, Vec<Var>)> = None;
        for (i, a) in remaining.iter().enumerate() {
            let (text, fresh) = render_atom(sig, a, &ids);
            if best.as_ref().is_none_or(|(b, _, _)| text < *b) {
                best = Some((text, i, fresh));
            }
        }
        let (text, i, fresh) = best.expect("non-empty remaining set has a minimum");
        for v in fresh {
            let next = ids.len();
            ids.insert(v, next);
        }
        atoms.push(text);
        remaining.remove(i);
    }
    let head: Vec<String> = (0..q.head_vars.len()).map(|i| format!("v{i}")).collect();
    format!("{}({}) :- {}", q.name, head.join(","), atoms.join(", "))
}

/// Renders one atom under the current id assignment, giving unassigned
/// variables hypothetical ids in order of appearance. Returns the
/// rendering and the newly-seen variables (in appearance order).
fn render_atom(
    sig: &Signature,
    a: &cqfd_core::Atom<Term>,
    ids: &HashMap<Var, usize>,
) -> (String, Vec<Var>) {
    let mut fresh: Vec<Var> = Vec::new();
    let mut args: Vec<String> = Vec::with_capacity(a.args.len());
    for t in &a.args {
        match t {
            Term::Const(c) => args.push(format!("#{}", sig.const_name(*c))),
            Term::Var(v) => {
                let id = ids.get(v).copied().unwrap_or_else(|| {
                    if let Some(pos) = fresh.iter().position(|f| f == v) {
                        ids.len() + pos
                    } else {
                        fresh.push(*v);
                        ids.len() + fresh.len() - 1
                    }
                });
                args.push(format!("v{id}"));
            }
        }
    }
    (
        format!("{}({})", sig.pred_name(a.pred), args.join(",")),
        fresh,
    )
}

/// Accumulates the canonical lines of a job and hashes them into a
/// [`JobKey`]. Line order is fixed by the caller's call order, so the
/// service composes keys the same way for every submission path (CLI,
/// batch file, TCP protocol).
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    lines: Vec<String>,
}

impl KeyBuilder {
    /// Starts a key for one job kind (`determine`, `creep`, …).
    pub fn new(kind: &str) -> Self {
        KeyBuilder {
            lines: vec!["cqfd-job v1".to_string(), format!("kind {kind}")],
        }
    }

    /// Adds the signature: predicates as sorted `name/arity` lines,
    /// constants as sorted names. Sorting makes declaration order
    /// irrelevant.
    pub fn sig(&mut self, sig: &Signature) -> &mut Self {
        let mut preds: Vec<String> = sig
            .predicates()
            .map(|p| format!("pred {}/{}", sig.pred_name(p), sig.arity(p)))
            .collect();
        preds.sort_unstable();
        let mut consts: Vec<String> = sig
            .constants()
            .map(|c| format!("const {}", sig.const_name(c)))
            .collect();
        consts.sort_unstable();
        self.lines.extend(preds);
        self.lines.extend(consts);
        self
    }

    /// Adds the view set in canonical form, **sorted** — view declaration
    /// order has no semantic weight, so permuted rule files land on the
    /// same key.
    pub fn views(&mut self, sig: &Signature, views: &[Cq]) -> &mut Self {
        let mut rendered: Vec<String> = views
            .iter()
            .map(|v| format!("view {}", canonical_cq(sig, v)))
            .collect();
        rendered.sort_unstable();
        self.lines.extend(rendered);
        self
    }

    /// Adds the query under determination, in canonical form.
    pub fn query(&mut self, sig: &Signature, q: &Cq) -> &mut Self {
        self.lines.push(format!("query {}", canonical_cq(sig, q)));
        self
    }

    /// Adds one budget-relevant knob. Only knobs that can change the
    /// *verdict* (stage caps, step caps, search-node bounds) belong here —
    /// never thread counts or emission flags.
    pub fn knob(&mut self, name: &str, value: u64) -> &mut Self {
        self.lines.push(format!("knob {name}={value}"));
        self
    }

    /// Adds tagged free-form lines (e.g. the rainworm `∆` program, one
    /// instruction per line, in its `cqfd_rainworm::parse` rendering).
    /// Order is preserved: instruction order is semantic for a worm.
    pub fn lines(&mut self, tag: &str, lines: &[String]) -> &mut Self {
        for l in lines {
            self.lines.push(format!("{tag} {l}"));
        }
        self
    }

    /// The canonical text accumulated so far (one line per statement,
    /// newline-terminated). Exposed for tests and `cqfd store` debugging.
    pub fn canonical_text(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }

    /// Hashes the canonical text into the job key.
    pub fn finish(&self) -> JobKey {
        let text = self.canonical_text();
        JobKey {
            hash: sha256_hex(text.as_bytes()),
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s.add_predicate("S", 2);
        s.add_constant("c");
        s
    }

    #[test]
    fn body_atom_order_is_canonicalized() {
        let s = sig();
        let a = Cq::parse(&s, "Q(x,z) :- R(x,y), S(y,z)").unwrap();
        let b = Cq::parse(&s, "Q(x,z) :- S(y,z), R(x,y)").unwrap();
        assert_eq!(canonical_cq(&s, &a), canonical_cq(&s, &b));
    }

    #[test]
    fn variable_names_are_canonicalized() {
        let s = sig();
        let a = Cq::parse(&s, "Q(x,z) :- R(x,y), S(y,z)").unwrap();
        let b = Cq::parse(&s, "Q(p,q) :- R(p,w), S(w,q)").unwrap();
        assert_eq!(canonical_cq(&s, &a), canonical_cq(&s, &b));
    }

    #[test]
    fn head_order_and_name_are_semantic() {
        let s = sig();
        let a = Cq::parse(&s, "Q(x,y) :- R(x,y)").unwrap();
        let swapped = Cq::parse(&s, "Q(y,x) :- R(x,y)").unwrap();
        let renamed = Cq::parse(&s, "P(x,y) :- R(x,y)").unwrap();
        assert_ne!(canonical_cq(&s, &a), canonical_cq(&s, &swapped));
        assert_ne!(canonical_cq(&s, &a), canonical_cq(&s, &renamed));
    }

    #[test]
    fn constants_render_by_name() {
        let s = sig();
        let q = Cq::parse(&s, "Q(x) :- S(x,#c)").unwrap();
        assert!(canonical_cq(&s, &q).contains("#c"));
    }

    #[test]
    fn view_order_does_not_change_the_key() {
        let s = sig();
        let v1 = Cq::parse(&s, "V1(x,y) :- R(x,y)").unwrap();
        let v2 = Cq::parse(&s, "V2(x,y) :- S(x,y)").unwrap();
        let q0 = Cq::parse(&s, "Q0(x,z) :- R(x,y), S(y,z)").unwrap();
        let mut k1 = KeyBuilder::new("determine");
        k1.sig(&s)
            .views(&s, &[v1.clone(), v2.clone()])
            .query(&s, &q0);
        let mut k2 = KeyBuilder::new("determine");
        k2.sig(&s).views(&s, &[v2, v1]).query(&s, &q0);
        assert_eq!(k1.finish(), k2.finish());
    }

    #[test]
    fn knobs_change_the_key() {
        let s = sig();
        let q0 = Cq::parse(&s, "Q0(x,y) :- R(x,y)").unwrap();
        let mut k1 = KeyBuilder::new("determine");
        k1.sig(&s).query(&s, &q0).knob("stages", 32);
        let mut k2 = KeyBuilder::new("determine");
        k2.sig(&s).query(&s, &q0).knob("stages", 64);
        assert_ne!(k1.finish().hash, k2.finish().hash);
    }

    #[test]
    fn key_hash_is_hex_sha256_of_text() {
        let mut k = KeyBuilder::new("creep");
        k.lines("worm", &["A -> B".to_string()]);
        let key = k.finish();
        assert_eq!(key.hash.len(), 64);
        assert_eq!(key.hash, crate::sha::sha256_hex(key.text.as_bytes()));
    }
}
