//! Write-ahead stage log: durable chase progress at stage boundaries.
//!
//! The log is a `cqfd-cert v1 stage-log` document (the format lives in
//! `cqfd-cert` so the log shares its tokenizer and statement grammar with
//! certificates): a prelude (signature, rules, start structure) followed
//! by repeating blocks of `fire …` lines and one `stage n apps atoms
//! nodes` commit mark, then `end` when the run concludes.
//!
//! [`StageLogWriter`] appends one block per completed stage and flushes
//! at each mark, so a crash loses at most the in-flight stage.
//! [`resume_point`] turns a recovered log back into a
//! [`ResumePoint`](cqfd_chase::ResumePoint) by **replaying** the recorded
//! firings through the real engine and checking every per-stage count
//! against the marks — a log that does not reproduce its own claimed
//! atom/node counts is discarded and the chase starts fresh. Replay
//! reproduces node allocation exactly (fresh nodes are handed out in the
//! same order the original run created them), which is what makes a
//! resumed run byte-identical to an uninterrupted one.

use cqfd_cert::{convert, StageLog};
use cqfd_chase::{ChaseEngine, Firing, ResumePoint, StageInfo};
use cqfd_core::{Node, Structure, Var};
use std::fs;
use std::io::{self, Seek as _, Write as _};
use std::path::Path;

/// Appends firing blocks and stage marks to a write-ahead log file,
/// flushing and syncing at every commit point.
#[derive(Debug)]
pub struct StageLogWriter {
    file: fs::File,
}

impl StageLogWriter {
    /// Creates (truncating) a log at `path` and writes the prelude —
    /// use [`cqfd_cert::stage_log_prelude`] to render it.
    pub fn create(path: &Path, prelude: &str) -> io::Result<StageLogWriter> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::File::create(path)?;
        file.write_all(prelude.as_bytes())?;
        file.sync_all()?;
        Ok(StageLogWriter { file })
    }

    /// Reopens an existing log for appending, first truncating it to
    /// `valid_bytes` (the last commit point reported by
    /// [`cqfd_cert::parse_stage_log`]) so a torn tail is dropped.
    pub fn reopen(path: &Path, valid_bytes: usize) -> io::Result<StageLogWriter> {
        let file = fs::OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_bytes as u64)?;
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        Ok(StageLogWriter { file })
    }

    /// Commits one completed stage: its firing lines followed by the
    /// stage mark, flushed and synced as one append.
    pub fn commit_stage(
        &mut self,
        stage: usize,
        info: &StageInfo,
        firings: &[Firing],
    ) -> io::Result<()> {
        let mut block = String::new();
        for f in firings {
            block.push_str(&cqfd_cert::firing_line(&convert::firing_spec(f)));
        }
        block.push_str(&cqfd_cert::stage_mark_line(
            stage,
            info.applications,
            info.atoms_after,
            info.nodes_after,
        ));
        self.file.write_all(block.as_bytes())?;
        self.file.flush()?;
        self.file.sync_all()
    }

    /// Marks the run concluded. A complete log is no longer resumable
    /// state; [`crate::Store::gc`] collects it.
    pub fn finish(&mut self) -> io::Result<()> {
        self.file.write_all(b"end\n")?;
        self.file.sync_all()
    }
}

/// Rebuilds a chase [`ResumePoint`] from a recovered stage log.
///
/// Returns `None` — meaning "start fresh" — unless every validation
/// passes: the log's signature, rules, and start structure must match the
/// engine and start the caller is about to chase with, and replaying each
/// stage's recorded firings must reproduce exactly the application,
/// atom, and node counts committed in that stage's mark.
pub fn resume_point(
    engine: &ChaseEngine,
    start: &Structure,
    log: &StageLog,
) -> Option<ResumePoint> {
    if log.complete {
        return None;
    }
    if convert::sig_spec(start.signature()) != log.sig {
        return None;
    }
    let rules: Vec<_> = engine.tgds().iter().map(convert::rule_spec).collect();
    if rules != log.rules {
        return None;
    }
    if convert::struct_spec(start) != log.start {
        return None;
    }
    let firings: Vec<Firing> = log
        .firings
        .iter()
        .map(|f| Firing {
            stage: f.stage,
            tgd: f.rule,
            assignment: f
                .assignment
                .iter()
                .map(|&(v, n)| (Var(v), Node(n)))
                .collect(),
        })
        .collect();
    for f in &firings {
        if f.tgd >= engine.tgds().len() {
            return None;
        }
    }
    let mut d = start.clone();
    let mut stages: Vec<StageInfo> = Vec::with_capacity(log.stages.len());
    let mut cursor = 0usize;
    for mark in &log.stages {
        let slice_end = firings[cursor..]
            .iter()
            .position(|f| f.stage != mark.stage)
            .map_or(firings.len(), |p| cursor + p);
        let slice = &firings[cursor..slice_end];
        if slice.len() != mark.applications {
            return None;
        }
        d = engine.replay(&d, slice);
        if d.atom_count() != mark.atoms_after || d.node_count() != mark.nodes_after {
            return None;
        }
        stages.push(StageInfo {
            applications: mark.applications,
            atoms_after: mark.atoms_after,
            nodes_after: mark.nodes_after,
        });
        cursor = slice_end;
    }
    if cursor != firings.len() {
        return None;
    }
    Some(ResumePoint {
        structure: d,
        stages,
        firings,
        start_atoms: start.atom_count(),
        start_nodes: start.node_count(),
    })
}
