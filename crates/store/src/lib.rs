//! # cqfd-store — persistent result cache and resumable chase
//!
//! The determinacy oracle is a semi-decision procedure: individual jobs
//! can take unbounded time, and experiment sweeps re-run the same jobs
//! across parameter grids constantly. This crate makes both cheap to
//! repeat:
//!
//! * [`canon`] — a **canonical job hash**: the job (rule set, views,
//!   query, worm program, budget-relevant knobs — never thread counts or
//!   emission flags) is rendered into a normalized text and hashed with a
//!   vendored SHA-256 ([`sha`]). Permuted-but-equivalent inputs land on
//!   the same key.
//! * [`cache`] — a **disk-backed content-addressed cache** mapping job
//!   hash to result line + certificate. Hits are served only after the
//!   stored certificate re-passes the trusted `cqfd-cert` checker, so a
//!   corrupt or tampered store costs a re-chase, never a wrong answer.
//! * [`log`] — a **write-ahead stage log**: the chase checkpoints at
//!   stage boundaries in the certificate wire format; after a crash or
//!   cancellation the run resumes from the last committed stage and is
//!   byte-identical (structures, stages, firings, certificate) to an
//!   uninterrupted run, at any thread count.
//!
//! Everything is hand-rolled and offline — no external dependencies, in
//! keeping with the workspace's `shims/` policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod log;
pub mod sha;

pub use cache::{Entry, EvictReport, GcReport, Lookup, Store, StoreStat};
pub use canon::{canonical_cq, JobKey, KeyBuilder};
pub use log::{resume_point, StageLogWriter};
pub use sha::sha256_hex;
