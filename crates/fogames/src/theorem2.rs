//! The §IX constructions: `Q∞`, the Level-0 chase from the full green
//! spider, the late fragments, and Attempts 1 and 2.

use crate::ef::ef_equivalent;
use crate::views::view_structure;
use cqfd_chase::{ChaseBudget, ChaseEngine, ChaseRun};
use cqfd_core::{Cq, Node, Structure};
use cqfd_greenred::{tq::greenred_tgds, Color};
use cqfd_reduction::reduce_l2;
use cqfd_separating::tinf::t_infinity;
use cqfd_spider::{IdealSpider, SpiderContext};
use std::collections::HashMap;
use std::sync::Arc;

/// `Q∞ = Compile(Precompile(T∞))` over the spider signature. With
/// `include_start = false` the three Precompile start queries are dropped
/// (the paper's footnote 24: "we do not need to think about them now") —
/// they are irrelevant to the path structure the §IX argument analyses,
/// and keeping them adds color-symmetric junk lineages to the chase.
pub fn q_infinity(include_start: bool) -> (Arc<SpiderContext>, Vec<Cq>) {
    let inst = reduce_l2(&t_infinity());
    let queries = if include_start {
        inst.queries
    } else {
        inst.queries[3..].to_vec()
    };
    (inst.spider_ctx, queries)
}

/// The §IX world: the chase `chase(T_Q∞, I)` (Level 0) with its stage
/// history, plus the constants `a` (tail) and `b` (antenna) of the initial
/// full green spider.
#[derive(Debug)]
pub struct Theorem2World {
    /// The Level-0 context.
    pub ctx: Arc<SpiderContext>,
    /// The queries `Q∞`.
    pub queries: Vec<Cq>,
    /// The chase run from `I`.
    pub run: ChaseRun,
    /// The initial spider's tail — the constant `a` of footnote 25.
    pub a: Node,
    /// The initial spider's antenna — the constant `b`.
    pub b: Node,
}

/// Builds the world by chasing `T_Q∞` from the full green spider for
/// `stages` stages.
pub fn chase_world(stages: usize, include_start: bool) -> Theorem2World {
    let (ctx, queries) = q_infinity(include_start);
    let tgds = greenred_tgds(ctx.greenred(), &queries);
    let engine = ChaseEngine::new(tgds);
    let mut d = Structure::new(Arc::clone(ctx.colored()));
    let a = d.fresh_node();
    let b = d.fresh_node();
    ctx.build_spider(&mut d, IdealSpider::full_green(), a, b);
    let run = engine.chase(
        &d,
        &ChaseBudget {
            max_stages: stages,
            max_atoms: 1 << 22,
            max_nodes: 1 << 22,
            ..ChaseBudget::default()
        },
    );
    Theorem2World {
        ctx,
        queries,
        run,
        a,
        b,
    }
}

impl Theorem2World {
    /// `dalt(chase_i ↾ C)`: the daltonised one-color part of stage `i`.
    pub fn stage_dalt(&self, i: usize, color: Color) -> Structure {
        let st = self.run.stage_structure(i);
        let gr = self.ctx.greenred();
        let part = match color {
            Color::Green => gr.green_part(&st),
            Color::Red => gr.red_part(&st),
        };
        gr.dalt_structure(&part)
    }

    /// `dalt(chaseL_{2i} ↾ C)`: the **late fragment** — atoms added
    /// strictly after stage `i` up to stage `2i` — daltonised, one color.
    pub fn late_dalt(&self, i: usize, color: Color) -> Structure {
        assert!(2 * i <= self.run.stage_count());
        let lo = self.run.stage_structure(i).atom_count();
        let full = self.run.stage_structure(2 * i);
        let gr = self.ctx.greenred();
        let mut fragment = Structure::new(Arc::clone(self.ctx.colored()));
        // Same node ids as the chase (append-only), so a and b survive.
        for _ in 0..full.node_count() {
            fragment.fresh_node();
        }
        for c in self.ctx.colored().constants() {
            if let Some(n) = full.existing_const_node(c) {
                fragment.pin_constant(c, n);
            }
        }
        for atom in &full.atoms()[lo..] {
            fragment.add_atom(atom.clone());
        }
        let part = match color {
            Color::Green => gr.green_part(&fragment),
            Color::Red => gr.red_part(&fragment),
        };
        gr.dalt_structure(&part)
    }
}

/// Copies `src` into `dst`, identifying the listed node pairs (`src` node →
/// `dst` node) and sharing constant nodes; everything else gets fresh
/// nodes. The §IX disjoint union "except a and b" (footnote 25).
pub fn absorb_identifying(
    dst: &mut Structure,
    src: &Structure,
    ident: &[(Node, Node)],
) -> HashMap<Node, Node> {
    let mut map: HashMap<Node, Node> = ident.iter().copied().collect();
    for n in src.nodes() {
        if map.contains_key(&n) {
            continue;
        }
        let img = match src.const_of_node(n) {
            Some(c) => dst.node_for_const(c),
            None => dst.fresh_node(),
        };
        map.insert(n, img);
    }
    for atom in src.atoms() {
        let args = atom.args.iter().map(|n| map[n]).collect();
        dst.add(atom.pred, args);
    }
    map
}

/// Attempt 1 (§IX.A): the views of `dalt(chaseᵢ ↾ G)` and
/// `dalt(chaseᵢ ↾ R)`. Returns the two view structures and the images of
/// `(a, b)` in each. These are *always* FO-distinguishable — the one-atom
/// difference sits next to the constants.
pub fn attempt1(world: &Theorem2World, i: usize) -> (Structure, Vec<Node>, Structure, Vec<Node>) {
    let dy = world.stage_dalt(i, Color::Green);
    let dn = world.stage_dalt(i, Color::Red);
    let (vy, my) = view_structure(&world.queries, &dy, &[world.a, world.b]);
    let (vn, mn) = view_structure(&world.queries, &dn, &[world.a, world.b]);
    (
        vy,
        vec![my[&world.a], my[&world.b]],
        vn,
        vec![mn[&world.a], mn[&world.b]],
    )
}

/// Attempt 2 (§IX.B): `Dy` = `dalt(chaseᵢ ↾ G)` ⊎ `i` copies of each late
/// fragment; `Dn` = the same with the base component's color flipped. All
/// components share `a`, `b` (and the constants of `Σ`).
pub fn attempt2(world: &Theorem2World, i: usize) -> (Structure, Vec<Node>, Structure, Vec<Node>) {
    let build = |base_color: Color| -> (Structure, Vec<Node>) {
        let mut d = world.stage_dalt(i, base_color);
        let ab = [(world.a, world.a), (world.b, world.b)];
        for color in [Color::Green, Color::Red] {
            let fragment = world.late_dalt(i, color);
            for _ in 0..i {
                absorb_identifying(&mut d, &fragment, &ab);
            }
        }
        let (v, m) = view_structure(&world.queries, &d, &[world.a, world.b]);
        (v, vec![m[&world.a], m[&world.b]])
    };
    let (vy, py) = build(Color::Green);
    let (vn, pn) = build(Color::Red);
    (vy, py, vn, pn)
}

/// Convenience: are the attempt-2 views rank-`l` equivalent at parameter
/// `i`? (The Theorem 2 experiment E-FO2.)
pub fn attempt2_equivalent(world: &Theorem2World, i: usize, l: usize) -> bool {
    let (vy, py, vn, pn) = attempt2(world, i);
    ef_equivalent(&vy, &py, &vn, &pn, l)
}

/// The §IX.A distinguisher, evaluated on a daltonised structure: the pair
/// of *endpoint-projection equalities*
///
/// * `π(IIA) = π(IIB)` — the views through the two rule-II queries,
///   projected to their two shared free endpoints, coincide;
/// * `π(IIIA) = π(IIIB)` — the same for the rule-III queries.
///
/// Ruby (the red side) satisfies **both** at every chase stage; Grace (the
/// green side) never satisfies both simultaneously — so the conjunction is
/// an FO sentence of fixed quantifier rank (independent of the stage)
/// separating every Attempt-1 pair. This reproduces the key §IX.A claim.
pub fn projection_equalities(world: &Theorem2World, d: &Structure) -> (bool, bool) {
    use std::collections::BTreeSet;
    let proj2 = |q: &Cq| -> BTreeSet<(Node, Node)> {
        q.eval(d).into_iter().map(|t| (t[0], t[1])).collect()
    };
    // Query order (with the start queries dropped): 0,1 = rule I;
    // 2,3 = (IIA),(IIB); 4,5 = (IIIA),(IIIB).
    let ii = proj2(&world.queries[2]) == proj2(&world.queries[3]);
    let iii = proj2(&world.queries[4]) == proj2(&world.queries[5]);
    (ii, iii)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_infinity_has_six_path_queries() {
        let (_, q6) = q_infinity(false);
        assert_eq!(q6.len(), 6);
        let (_, q9) = q_infinity(true);
        assert_eq!(q9.len(), 9);
    }

    #[test]
    fn chase_world_grows_a_two_colored_path() {
        let w = chase_world(8, false);
        assert_eq!(w.run.stage_count(), 8);
        // Both colors are populated after a few stages.
        let g = w.stage_dalt(6, Color::Green);
        let r = w.stage_dalt(6, Color::Red);
        assert!(g.atom_count() > 0);
        assert!(r.atom_count() > 0);
        // Stage structures grow monotonically.
        assert!(w.stage_dalt(4, Color::Green).atom_count() <= g.atom_count());
    }

    /// E-FO1 (§IX.A): Ruby sees both projection equalities at *every*
    /// stage; Grace never sees both — the fixed-rank FO sentence
    /// "II-equal ∧ III-equal" separates every Attempt-1 pair, whatever way
    /// the infinite chase is prematurely terminated.
    #[test]
    fn attempt1_projection_sentence_distinguishes() {
        let w = chase_world(10, false);
        for i in 4..=10 {
            let dy = w.stage_dalt(i, Color::Green);
            let dn = w.stage_dalt(i, Color::Red);
            let (rn_ii, rn_iii) = projection_equalities(&w, &dn);
            assert!(rn_ii && rn_iii, "Ruby sees both equalities (i={i})");
            let (gy_ii, gy_iii) = projection_equalities(&w, &dy);
            assert!(
                !(gy_ii && gy_iii),
                "Grace never sees both equalities (i={i})"
            );
        }
    }

    /// The flip side of §IX.A, and the reason the sentence has to be that
    /// clever: the plain low-rank EF game does *not* separate the
    /// Attempt-1 views (the one-atom differences hide far from the
    /// constants).
    #[test]
    fn attempt1_is_still_low_rank_equivalent() {
        let w = chase_world(9, false);
        let (vy, py, vn, pn) = attempt1(&w, 9);
        assert!(ef_equivalent(&vy, &py, &vn, &pn, 2));
    }

    /// E-FO2 (§IX.B): Attempt 2 with `i`-fold padding is rank-1 and rank-2
    /// equivalent — the Theorem 2 phenomenon.
    #[test]
    fn attempt2_is_low_rank_equivalent() {
        let w = chase_world(8, false);
        assert!(
            attempt2_equivalent(&w, 4, 1),
            "rank 1 must not distinguish the padded views"
        );
        assert!(
            attempt2_equivalent(&w, 4, 2),
            "rank 2 must not distinguish the padded views (i = 4)"
        );
    }

    /// …and the §IX.A distinguisher is *disarmed* by the padding: on the
    /// Attempt-2 structures the projection sentence takes the same truth
    /// value on the `Dy` and `Dn` sides.
    #[test]
    fn attempt2_disarms_the_projection_sentence() {
        let w = chase_world(8, false);
        let i = 4;
        let build = |base: Color| -> Structure {
            let mut d = w.stage_dalt(i, base);
            let ab = [(w.a, w.a), (w.b, w.b)];
            for color in [Color::Green, Color::Red] {
                let fragment = w.late_dalt(i, color);
                for _ in 0..i {
                    absorb_identifying(&mut d, &fragment, &ab);
                }
            }
            d
        };
        let dy = build(Color::Green);
        let dn = build(Color::Red);
        assert_eq!(
            projection_equalities(&w, &dy),
            projection_equalities(&w, &dn),
            "the padded sides agree on the §IX.A sentence"
        );
    }
}
