//! View images `Q(D)` as relational structures — "what the girls see".

use cqfd_core::{Cq, Node, Signature, Structure};
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluates every query of `queries` on `d` and assembles the results as
/// a structure over the **view signature** (one predicate per query, arity
/// = number of free variables), restricted to the active domain.
///
/// `keep` lists distinguished nodes of `d` (the constants `a`, `b` of
/// §IX, footnote 25) that must survive into the view structure even if no
/// answer tuple mentions them; the returned map sends the kept nodes (and
/// every node occurring in an answer) to their images.
pub fn view_structure(
    queries: &[Cq],
    d: &Structure,
    keep: &[Node],
) -> (Structure, HashMap<Node, Node>) {
    let mut sig = Signature::new();
    let preds: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| sig.add_predicate(&format!("V{i}[{}]", q.name), q.arity()))
        .collect();
    let mut out = Structure::new(Arc::new(sig));
    let mut map: HashMap<Node, Node> = HashMap::new();
    for &k in keep {
        let img = out.fresh_node();
        map.insert(k, img);
    }
    for (q, &p) in queries.iter().zip(&preds) {
        for tuple in q.eval(d) {
            let args: Vec<Node> = tuple
                .iter()
                .map(|n| *map.entry(*n).or_insert_with(|| out.fresh_node()))
                .collect();
            out.add(p, args);
        }
    }
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_project_answers() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let sig = Arc::new(sig);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        let c = d.fresh_node();
        d.add(r, vec![a, b]);
        d.add(r, vec![b, c]);
        let q1 = Cq::parse(&sig, "V1(x) :- R(x,y)").unwrap();
        let q2 = Cq::parse(&sig, "V2(x,z) :- R(x,y), R(y,z)").unwrap();
        let (v, map) = view_structure(&[q1, q2], &d, &[a]);
        // V1 = {a, b}; V2 = {(a, c)}.
        assert_eq!(v.atom_count(), 3);
        let p1 = v.signature().predicate("V0[V1]").unwrap();
        let p2 = v.signature().predicate("V1[V2]").unwrap();
        assert_eq!(v.pred_count(p1), 2);
        assert_eq!(v.pred_count(p2), 1);
        // Node identity is preserved through the map: the V2 tuple links
        // the images of a and c.
        let t2: Vec<_> = v.atoms_with_pred(p2).collect();
        assert_eq!(t2[0].args[0], map[&a]);
        assert_eq!(t2[0].args[1], map[&c]);
    }

    #[test]
    fn kept_nodes_survive_without_answers() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let sig = Arc::new(sig);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let _ = r;
        let (v, map) = view_structure(&[], &d, &[a]);
        assert!(map.contains_key(&a));
        assert_eq!(v.atom_count(), 0);
        assert_eq!(v.node_count(), 1);
    }

    #[test]
    fn inactive_nodes_are_dropped() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let sig = Arc::new(sig);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        let _lonely = d.fresh_node();
        d.add(r, vec![a, b]);
        let q = Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap();
        let (v, map) = view_structure(&[q], &d, &[]);
        assert_eq!(v.node_count(), 2, "only answer nodes materialise");
        assert_eq!(map.len(), 2);
    }
}
