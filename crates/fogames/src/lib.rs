//! # cqfd-fogames — Ehrenfeucht–Fraïssé games and Theorem 2 (paper §IX)
//!
//! Theorem 2: there are `Q`, `Q0` such that `Q` *finitely determines* `Q0`
//! but the function computing `Q0`'s answer from the views `Q(D)` is not
//! first-order definable. The proof outline plays an Ehrenfeucht–Fraïssé
//! game on the **view images** of two structures: `Dy` (which satisfies
//! `Q0`) and `Dn` (which does not), built so that the views are
//! FO-indistinguishable at any fixed quantifier rank once the construction
//! parameter `i` is Large Enough.
//!
//! This crate implements:
//!
//! * [`ef`] — an exact quantifier-rank-`l` equivalence test via recursive
//!   rank-`l` type interning (two structures satisfy the same FO sentences
//!   of quantifier rank ≤ `l`, with the pinned constants, iff their
//!   rank-`l` types agree). On the highly symmetric disjoint unions of
//!   §IX.B the memoised types collapse, keeping the test fast;
//! * [`views`] — the "what the girls see": the view image `Q(D)` as a
//!   relational structure over one predicate per query, restricted to the
//!   active domain;
//! * [`theorem2`] — the §IX constructions: `Q∞ = Compile(Precompile(T∞))`,
//!   the Level-0 chase `chaseᵢ(T_Q∞, I)`, the *late fragments*
//!   `chaseL₂ᵢ`, Attempt 1 (distinguishable — the views differ next to the
//!   constants) and Attempt 2 (`Dy`/`Dn` with `i`-fold padding,
//!   indistinguishable at small rank), plus the §IX.C observation that
//!   grids do not shorten path-end distances (tested at Level 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ef;
pub mod theorem2;
pub mod views;

pub use ef::{distinguishing_rank, ef_equivalent, rank_type, TypeInterner};
pub use theorem2::{attempt1, attempt2, q_infinity, Theorem2World};
pub use views::view_structure;
