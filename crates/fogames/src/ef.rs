//! Quantifier-rank-`l` equivalence by rank-type interning.
//!
//! The rank-`l` type of a tuple `ā` in a structure `A` determines exactly
//! which FO formulas of quantifier rank ≤ `l` (with free variables for
//! `ā`) hold of it:
//!
//! * rank 0: the atomic type — the equalities among `ā` and the atoms of
//!   `A` with all arguments in `ā`;
//! * rank `k+1`: the *set* of rank-`k` types of the extensions `ā·b` over
//!   all `b ∈ A`.
//!
//! Two structures (with pinned parameter tuples, e.g. interpreted
//! constants) agree on all rank-`l` sentences iff their pinned tuples have
//! equal rank-`l` types. Types are interned in a shared [`TypeInterner`]
//! so equality is id comparison, and the recursion is memoised per
//! structure. This is the classical alternative to playing the
//! Ehrenfeucht–Fraïssé game move by move, and it handles the §IX.B
//! disjoint unions well: the `i` identical copies produce identical
//! subtree types that the interner collapses.

use cqfd_core::{Node, Structure};
use std::collections::{BTreeSet, HashMap};

/// Interned type identifier; equal ids ⇔ equal types (within one
/// interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

/// Shared interner for rank types.
#[derive(Debug, Default)]
pub struct TypeInterner {
    atomic: HashMap<Vec<u64>, TypeId>,
    sets: HashMap<BTreeSet<TypeId>, TypeId>,
    next: u32,
}

impl TypeInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_atomic(&mut self, key: Vec<u64>) -> TypeId {
        if let Some(&t) = self.atomic.get(&key) {
            return t;
        }
        let t = TypeId(self.next);
        self.next += 1;
        self.atomic.insert(key, t);
        t
    }

    fn intern_set(&mut self, key: BTreeSet<TypeId>) -> TypeId {
        if let Some(&t) = self.sets.get(&key) {
            return t;
        }
        let t = TypeId(self.next);
        self.next += 1;
        self.sets.insert(key, t);
        t
    }
}

/// Per-structure memoised computation of rank types.
struct Ranker<'a> {
    st: &'a Structure,
    domain: Vec<Node>,
    by_node: HashMap<Node, Vec<u32>>,
    memo: HashMap<(Vec<Node>, usize), TypeId>,
}

impl<'a> Ranker<'a> {
    fn new(st: &'a Structure) -> Self {
        let domain: Vec<Node> = st.active_nodes().into_iter().collect();
        let mut by_node: HashMap<Node, Vec<u32>> = HashMap::new();
        for (i, atom) in st.atoms().iter().enumerate() {
            for &n in &atom.args {
                let v = by_node.entry(n).or_default();
                if v.last() != Some(&(i as u32)) {
                    v.push(i as u32);
                }
            }
        }
        Ranker {
            st,
            domain,
            by_node,
            memo: HashMap::new(),
        }
    }

    /// Canonical encoding of the atomic type of `tuple`.
    fn atomic_key(&self, tuple: &[Node]) -> Vec<u64> {
        let mut key: Vec<u64> = Vec::new();
        // Equality pattern: for each position, the first equal position.
        for (i, &n) in tuple.iter().enumerate() {
            let first = tuple.iter().position(|&m| m == n).unwrap();
            key.push(((i as u64) << 32) | first as u64);
        }
        key.push(u64::MAX); // separator
                            // Atoms fully inside the tuple, as (pred, arg position indices).
        let inside: BTreeSet<Node> = tuple.iter().copied().collect();
        let mut candidates: BTreeSet<u32> = BTreeSet::new();
        for n in &inside {
            if let Some(v) = self.by_node.get(n) {
                candidates.extend(v.iter().copied());
            }
        }
        let mut atoms: BTreeSet<Vec<u64>> = BTreeSet::new();
        for &i in &candidates {
            let atom = &self.st.atoms()[i as usize];
            if atom.args.iter().all(|n| inside.contains(n)) {
                let mut enc = vec![atom.pred.0 as u64];
                for n in &atom.args {
                    enc.push(tuple.iter().position(|m| m == n).unwrap() as u64);
                }
                atoms.insert(enc);
            }
        }
        for a in atoms {
            key.extend(a);
            key.push(u64::MAX - 1);
        }
        key
    }

    fn rank(&mut self, interner: &mut TypeInterner, tuple: &[Node], l: usize) -> TypeId {
        if let Some(&t) = self.memo.get(&(tuple.to_vec(), l)) {
            return t;
        }
        let t = if l == 0 {
            let key = self.atomic_key(tuple);
            interner.intern_atomic(key)
        } else {
            let mut set = BTreeSet::new();
            let mut ext = tuple.to_vec();
            for idx in 0..self.domain.len() {
                let b = self.domain[idx];
                ext.push(b);
                set.insert(self.rank(interner, &ext, l - 1));
                ext.pop();
            }
            interner.intern_set(set)
        };
        self.memo.insert((tuple.to_vec(), l), t);
        t
    }
}

/// The rank-`l` type of `pinned` in `st`, using a shared interner.
pub fn rank_type(interner: &mut TypeInterner, st: &Structure, pinned: &[Node], l: usize) -> TypeId {
    Ranker::new(st).rank(interner, pinned, l)
}

/// Do `a` (with parameters `pa`) and `b` (with `pb`) satisfy the same FO
/// formulas of quantifier rank ≤ `l`? — the Duplicator-wins predicate of
/// the `l`-round Ehrenfeucht–Fraïssé game from the pinned position.
pub fn ef_equivalent(a: &Structure, pa: &[Node], b: &Structure, pb: &[Node], l: usize) -> bool {
    assert_eq!(pa.len(), pb.len());
    let mut interner = TypeInterner::new();
    let ta = rank_type(&mut interner, a, pa, l);
    let tb = rank_type(&mut interner, b, pb, l);
    ta == tb
}

/// The smallest quantifier rank `l ≤ max_l` at which the two pinned
/// structures are distinguishable, or `None` if they agree up to `max_l`.
/// (Cost grows as `n^l`; keep `max_l` small.)
pub fn distinguishing_rank(
    a: &Structure,
    pa: &[Node],
    b: &Structure,
    pb: &[Node],
    max_l: usize,
) -> Option<usize> {
    (0..=max_l).find(|&l| !ef_equivalent(a, pa, b, pb, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::Signature;
    use std::sync::Arc;

    fn sig() -> Arc<Signature> {
        let mut s = Signature::new();
        s.add_predicate("E", 2);
        Arc::new(s)
    }

    fn path(n: usize) -> Structure {
        let sig = sig();
        let e = sig.predicate("E").unwrap();
        let mut d = Structure::new(sig);
        let ns: Vec<Node> = (0..n).map(|_| d.fresh_node()).collect();
        for w in ns.windows(2) {
            d.add(e, vec![w[0], w[1]]);
        }
        d
    }

    fn cycle(n: usize) -> Structure {
        let sig = sig();
        let e = sig.predicate("E").unwrap();
        let mut d = Structure::new(sig);
        let ns: Vec<Node> = (0..n).map(|_| d.fresh_node()).collect();
        for i in 0..n {
            d.add(e, vec![ns[i], ns[(i + 1) % n]]);
        }
        d
    }

    #[test]
    fn isomorphic_structures_are_equivalent_at_all_small_ranks() {
        for l in 0..=3 {
            assert!(ef_equivalent(&path(4), &[], &path(4), &[], l));
            assert!(ef_equivalent(&cycle(5), &[], &cycle(5), &[], l));
        }
    }

    /// The textbook example: long paths of different lengths are rank-`l`
    /// equivalent once both are long enough, but short ones differ.
    #[test]
    fn path_lengths_and_rank() {
        // A 2-path vs a 3-path: rank 2 sees the difference
        // (∃x∃y∃z chain vs not — needs rank 3? The endpoints distinguish
        // at rank 2: a node with no predecessor whose successor has a
        // successor …). Empirically:
        assert!(!ef_equivalent(&path(2), &[], &path(3), &[], 2));
        // Paths 7 vs 8 at rank 2: Duplicator wins.
        assert!(ef_equivalent(&path(7), &[], &path(8), &[], 2));
    }

    #[test]
    fn cycles_vs_disjoint_cycles() {
        // C6 vs C3 ⊎ C3: locally identical, rank-2 equivalent; both are
        // 2-regular everywhere.
        let c6 = cycle(6);
        let sig = sig();
        let e = sig.predicate("E").unwrap();
        let mut two_c3 = Structure::new(sig);
        for _ in 0..2 {
            let ns: Vec<Node> = (0..3).map(|_| two_c3.fresh_node()).collect();
            for i in 0..3 {
                two_c3.add(e, vec![ns[i], ns[(i + 1) % 3]]);
            }
        }
        assert!(ef_equivalent(&c6, &[], &two_c3, &[], 2));
        // Rank 3 distinguishes (triangle detection needs 3 variables).
        assert!(!ef_equivalent(&c6, &[], &two_c3, &[], 3));
    }

    #[test]
    fn pinned_parameters_matter() {
        let p = path(3); // nodes 0-1-2-... wait: 3 nodes, edges 0→1→2
        let ns: Vec<Node> = p.active_nodes().into_iter().collect();
        // Pin the source vs the sink: distinguishable at rank 1
        // (∃y E(c, y) holds of the source, not the sink).
        assert!(!ef_equivalent(&p, &[ns[0]], &p, &[ns[2]], 1));
        // Pinning the same node: trivially equivalent.
        assert!(ef_equivalent(&p, &[ns[1]], &p, &[ns[1]], 3));
    }

    #[test]
    fn rank0_is_atomic() {
        // Any two nonempty structures with empty pinned tuples agree at
        // rank 0 (no atoms are fully inside the empty tuple).
        assert!(ef_equivalent(&path(2), &[], &cycle(3), &[], 0));
    }

    #[test]
    fn multiplicity_blindness_of_low_rank() {
        // i vs i+1 disjoint copies of an edge: rank-1 equivalent — the
        // §IX.B counting argument ("the difference between i and i+1 is
        // not FO-noticeable" at fixed rank).
        let sig = sig();
        let e = sig.predicate("E").unwrap();
        let mk = |k: usize| {
            let mut d = Structure::new(Arc::clone(&sig));
            for _ in 0..k {
                let x = d.fresh_node();
                let y = d.fresh_node();
                d.add(e, vec![x, y]);
            }
            d
        };
        assert!(ef_equivalent(&mk(3), &[], &mk(4), &[], 1));
        // Not at rank 0 with pinned witnesses, of course; and two vs one
        // copy *is* noticeable at rank 2 (∃x∃y two distinct sources).
        assert!(!ef_equivalent(&mk(1), &[], &mk(2), &[], 2));
    }
}

#[cfg(test)]
mod rank_finder_tests {
    use super::*;
    use cqfd_core::Signature;
    use std::sync::Arc;

    #[test]
    fn distinguishing_rank_on_paths() {
        let mut s = Signature::new();
        s.add_predicate("E", 2);
        let sig = Arc::new(s);
        let e = sig.predicate("E").unwrap();
        let path = |n: usize| {
            let mut d = Structure::new(Arc::clone(&sig));
            let ns: Vec<Node> = (0..n).map(|_| d.fresh_node()).collect();
            for w in ns.windows(2) {
                d.add(e, vec![w[0], w[1]]);
            }
            d
        };
        // Identical paths: never distinguishable.
        assert_eq!(distinguishing_rank(&path(5), &[], &path(5), &[], 3), None);
        // 2-path vs 3-path: distinguishable at low rank.
        let r = distinguishing_rank(&path(2), &[], &path(3), &[], 3).unwrap();
        assert!((1..=2).contains(&r));
        // Long paths agree longer.
        let r78 = distinguishing_rank(&path(7), &[], &path(8), &[], 2);
        assert_eq!(r78, None);
    }
}
