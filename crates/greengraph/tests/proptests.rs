//! Property-based tests for green graphs, parity glasses and L2 rules.

use cqfd_chase::ChaseBudget;
use cqfd_greengraph::pg::words_of;
use cqfd_greengraph::{GreenGraph, L2Rule, L2System, Label, LabelSpace, ParityGlasses};
use proptest::prelude::*;
use std::sync::Arc;

fn labels() -> Vec<Label> {
    vec![
        Label::Alpha,
        Label::Beta0,
        Label::Beta1,
        Label::Eta0,
        Label::Eta1,
    ]
}

fn label_of(i: u8) -> Label {
    labels()[(i as usize) % 5]
}

fn random_graph(edges: &[(u8, u32, u32)], n: u32) -> GreenGraph {
    let space = Arc::new(LabelSpace::new(labels()));
    let mut g = GreenGraph::di(space);
    while g.node_count() < n {
        g.fresh_node();
    }
    for &(l, x, y) in edges {
        g.add_edge(label_of(l), cqfd_core::Node(x % n), cqfd_core::Node(y % n));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every word the enumerator returns satisfies the path-word predicate,
    /// and the enumerated set is prefix-free.
    #[test]
    fn words_are_sound_and_prefix_free(
        edges in prop::collection::vec((0u8..5, 0u32..5, 0u32..5), 1..12),
    ) {
        let g = random_graph(&edges, 5);
        let pg = ParityGlasses::new(&g);
        let ws = pg.words_joint(g.a(), &[g.a(), g.b()], 6, 300);
        for w in &ws {
            prop_assert!(
                pg.is_path_word(g.a(), g.a(), w) || pg.is_path_word(g.a(), g.b(), w),
                "enumerated word must verify"
            );
            // prefix-freedom within the set
            for v in &ws {
                if v.len() < w.len() {
                    prop_assert!(&w[..v.len()] != v.as_slice(), "prefix in the set");
                }
            }
        }
    }

    /// Parity glasses drop exactly the ∅ edges and preserve edge counts
    /// otherwise.
    #[test]
    fn pg_preserves_non_empty_edges(
        edges in prop::collection::vec((0u8..5, 0u32..4, 0u32..4), 0..10),
    ) {
        let g = random_graph(&edges, 4);
        let pg = ParityGlasses::new(&g);
        let non_empty = g.edges().filter(|&(l, _, _)| l != Label::Empty).count();
        let transformed: usize = g
            .structure()
            .nodes()
            .map(|n| pg.successors(n).len())
            .sum();
        prop_assert_eq!(non_empty, transformed);
    }

    /// If the chase of a random single rule reaches a fixpoint, the result
    /// is a model, and the input graph is a substructure of it.
    #[test]
    fn chase_fixpoints_are_models(
        edges in prop::collection::vec((0u8..5, 0u32..4, 0u32..4), 0..6),
        rule_pick in (0u8..5, 0u8..5, 0u8..5, 0u8..5),
        antenna in any::<bool>(),
    ) {
        let (a, b, c, d) = rule_pick;
        let rule = if antenna {
            L2Rule::antenna(label_of(a), label_of(b), label_of(c), label_of(d))
        } else {
            L2Rule::tail(label_of(a), label_of(b), label_of(c), label_of(d))
        };
        let sys = L2System::new(vec![rule]);
        let g = random_graph(&edges, 4);
        let budget = ChaseBudget { max_stages: 12, max_atoms: 4000, max_nodes: 4000, ..ChaseBudget::default() };
        let (out, run) = sys.chase(&g, &budget);
        if run.reached_fixpoint() {
            prop_assert!(sys.is_model(&out), "fixpoint must be a model of {rule}");
            prop_assert!(g.structure().is_substructure_of(out.structure()));
        }
    }

    /// `words_of` on DI alone is empty (a single ∅ edge has no words).
    #[test]
    fn di_has_no_words(_x in 0u8..2) {
        let g = GreenGraph::di(Arc::new(LabelSpace::new(labels())));
        prop_assert!(words_of(&g, 8, 100).is_empty());
    }
}
