//! The label space: the concrete signature `{H_i : i ∈ S̄}` for a chosen
//! finite set of labels, plus the constants `a` and `b` of `DI`.

use crate::label::Label;
use cqfd_core::{ConstId, PredId, Signature};
use std::collections::HashMap;
use std::sync::Arc;

/// A finite, canonically ordered set of labels together with the relational
/// signature it induces: one binary predicate `H_ℓ` per label `ℓ`, plus the
/// constants `a` and `b` (the two distinguished vertices of `DI`, §VII
/// Step 1 — "please befriend them").
#[derive(Debug, Clone)]
pub struct LabelSpace {
    labels: Vec<Label>,
    index: HashMap<Label, usize>,
    sig: Arc<Signature>,
    preds: Vec<PredId>,
    a: ConstId,
    b: ConstId,
}

impl LabelSpace {
    /// Builds a label space from any iterator of labels. `∅` is always
    /// included (every green graph in the paper contains `DI`). Duplicates
    /// are fine; the order is canonical (sorted), so two spaces built from
    /// the same label set are interchangeable.
    pub fn new(labels: impl IntoIterator<Item = Label>) -> Self {
        let mut ls: Vec<Label> = labels.into_iter().collect();
        ls.push(Label::Empty);
        ls.sort();
        ls.dedup();
        let mut sig = Signature::new();
        let mut preds = Vec::with_capacity(ls.len());
        for l in &ls {
            preds.push(sig.add_predicate(&format!("H[{l}]"), 2));
        }
        let a = sig.add_constant("a");
        let b = sig.add_constant("b");
        let index = ls.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        LabelSpace {
            labels: ls,
            index,
            sig: Arc::new(sig),
            preds,
            a,
            b,
        }
    }

    /// The induced signature.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// All labels, in canonical order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The predicate `H_ℓ`. Panics if `ℓ` is not in the space (that is a
    /// construction bug: spaces must be built from all labels in play).
    pub fn pred(&self, l: Label) -> PredId {
        self.preds[*self
            .index
            .get(&l)
            .unwrap_or_else(|| panic!("label {l} not in this LabelSpace"))]
    }

    /// Is the label present?
    pub fn contains(&self, l: Label) -> bool {
        self.index.contains_key(&l)
    }

    /// The label of a predicate of this space.
    pub fn label_of(&self, p: PredId) -> Label {
        self.labels[self
            .preds
            .iter()
            .position(|&q| q == p)
            .expect("pred of space")]
    }

    /// The constant `a`.
    pub fn a(&self) -> ConstId {
        self.a
    }

    /// The constant `b`.
    pub fn b(&self) -> ConstId {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_label_always_present() {
        let sp = LabelSpace::new([Label::Alpha]);
        assert!(sp.contains(Label::Empty));
        assert!(sp.contains(Label::Alpha));
        assert!(!sp.contains(Label::Beta0));
        assert_eq!(sp.labels().len(), 2);
    }

    #[test]
    fn canonical_order_makes_spaces_interchangeable() {
        let sp1 = LabelSpace::new([Label::Beta0, Label::Alpha]);
        let sp2 = LabelSpace::new([Label::Alpha, Label::Beta0, Label::Alpha]);
        assert_eq!(sp1.labels(), sp2.labels());
        assert_eq!(sp1.pred(Label::Alpha), sp2.pred(Label::Alpha));
    }

    #[test]
    fn label_pred_round_trip() {
        let sp = LabelSpace::new(Label::all_grid_labels());
        for &l in sp.labels() {
            assert_eq!(sp.label_of(sp.pred(l)), l);
        }
        assert_eq!(sp.labels().len(), 33); // 32 grid + ∅
    }

    #[test]
    fn constants_a_b_exist() {
        let sp = LabelSpace::new([]);
        assert_eq!(sp.signature().const_name(sp.a()), "a");
        assert_eq!(sp.signature().const_name(sp.b()), "b");
    }

    #[test]
    #[should_panic(expected = "not in this LabelSpace")]
    fn missing_label_panics() {
        let sp = LabelSpace::new([Label::Alpha]);
        let _ = sp.pred(Label::Beta1);
    }
}
