//! Green graphs: edge-labelled directed graphs over a [`LabelSpace`].

use crate::label::Label;
use crate::space::LabelSpace;
use cqfd_core::{Node, Structure};
use std::fmt;
use std::sync::Arc;

/// A green graph (paper §VI, Abstraction Level 2): a structure over
/// `{H_ℓ : ℓ ∈ S̄}` with the two distinguished vertices `a`, `b`.
///
/// This is a thin typed wrapper over [`Structure`]; the underlying
/// structure is exposed ([`GreenGraph::structure`]) so the generic chase
/// and homomorphism machinery applies unchanged.
#[derive(Debug, Clone)]
pub struct GreenGraph {
    space: Arc<LabelSpace>,
    st: Structure,
    a: Node,
    b: Node,
}

impl GreenGraph {
    /// An empty green graph with `a` and `b` materialised but no edges.
    pub fn empty(space: Arc<LabelSpace>) -> Self {
        let mut st = Structure::new(Arc::clone(space.signature()));
        let a = st.node_for_const(space.a());
        let b = st.node_for_const(space.b());
        GreenGraph { space, st, a, b }
    }

    /// The initial graph `DI` of §VII Step 1: vertices `a`, `b` and the
    /// single edge `H∅(a, b)`.
    pub fn di(space: Arc<LabelSpace>) -> Self {
        let mut g = Self::empty(space);
        g.add_edge(Label::Empty, g.a, g.b);
        g
    }

    /// Wraps an existing structure over the space's signature.
    ///
    /// # Panics
    /// If the structure's signature is not the space's signature.
    pub fn from_structure(space: Arc<LabelSpace>, mut st: Structure) -> Self {
        assert!(
            Arc::ptr_eq(st.signature(), space.signature())
                || st.signature().as_ref() == space.signature().as_ref(),
            "structure is not over this label space"
        );
        let a = st.node_for_const(space.a());
        let b = st.node_for_const(space.b());
        GreenGraph { space, st, a, b }
    }

    /// The label space.
    pub fn space(&self) -> &Arc<LabelSpace> {
        &self.space
    }

    /// The underlying structure.
    pub fn structure(&self) -> &Structure {
        &self.st
    }

    /// Consumes the wrapper, returning the structure.
    pub fn into_structure(self) -> Structure {
        self.st
    }

    /// The vertex `a`.
    pub fn a(&self) -> Node {
        self.a
    }

    /// The vertex `b`.
    pub fn b(&self) -> Node {
        self.b
    }

    /// Allocates a fresh vertex.
    pub fn fresh_node(&mut self) -> Node {
        self.st.fresh_node()
    }

    /// Adds the edge `H_ℓ(from, to)`; returns `true` if new.
    pub fn add_edge(&mut self, l: Label, from: Node, to: Node) -> bool {
        self.st.add(self.space.pred(l), vec![from, to])
    }

    /// Does the edge `H_ℓ(from, to)` exist?
    pub fn has_edge(&self, l: Label, from: Node, to: Node) -> bool {
        self.st.contains(self.space.pred(l), &[from, to])
    }

    /// Iterates over all edges as `(label, from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (Label, Node, Node)> + '_ {
        self.st
            .atoms()
            .iter()
            .map(|a| (self.space.label_of(a.pred), a.args[0], a.args[1]))
    }

    /// Edges with a given label.
    pub fn edges_with(&self, l: Label) -> impl Iterator<Item = (Node, Node)> + '_ {
        self.st
            .atoms_with_pred(self.space.pred(l))
            .map(|a| (a.args[0], a.args[1]))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.st.atom_count()
    }

    /// Number of vertices allocated.
    pub fn node_count(&self) -> u32 {
        self.st.node_count()
    }

    /// Finds a **1-2 pattern** (Definition 11): edges `H₁(a, b)` and
    /// `H₂(a′, b)` sharing their target, where `1 = ⟨n,α,d̄,b̄⟩` and
    /// `2 = ⟨w,α,d̄,b̄⟩`. Returns `(a, a′, b)` if present.
    ///
    /// The space may lack the grid labels entirely (e.g. a pure-`T∞`
    /// experiment); then there is no pattern by definition.
    pub fn find_12_pattern(&self) -> Option<(Node, Node, Node)> {
        if !self.space.contains(Label::ONE) || !self.space.contains(Label::TWO) {
            return None;
        }
        for (x, y) in self.edges_with(Label::ONE) {
            // any TWO-edge into the same target y
            if let Some(two) = self
                .st
                .atoms_with_pred_pos_node(self.space.pred(Label::TWO), 1, y)
                .next()
            {
                return Some((x, two.args[0], y));
            }
        }
        None
    }

    /// Does the graph contain a 1-2 pattern?
    pub fn has_12_pattern(&self) -> bool {
        self.find_12_pattern().is_some()
    }

    /// Does the graph contain an `H∅` edge (the Level-2 reading of
    /// "contains the full green spider", Definition 11)?
    pub fn contains_green_spider(&self) -> bool {
        self.edges_with(Label::Empty).next().is_some()
    }
}

impl fmt::Display for GreenGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "green graph ({} vertices, {} edges; a=n{}, b=n{}):",
            self.node_count(),
            self.edge_count(),
            self.a.0,
            self.b.0
        )?;
        for (l, x, y) in self.edges() {
            writeln!(f, "  H[{l}](n{}, n{})", x.0, y.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_grid() -> Arc<LabelSpace> {
        let mut labels = Label::all_grid_labels();
        labels.push(Label::Alpha);
        Arc::new(LabelSpace::new(labels))
    }

    #[test]
    fn di_has_one_empty_edge() {
        let sp = Arc::new(LabelSpace::new([Label::Alpha]));
        let g = GreenGraph::di(Arc::clone(&sp));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(Label::Empty, g.a(), g.b()));
        assert!(g.contains_green_spider());
    }

    #[test]
    fn twelve_pattern_detection() {
        let sp = space_with_grid();
        let mut g = GreenGraph::empty(Arc::clone(&sp));
        let x = g.fresh_node();
        let xp = g.fresh_node();
        let y = g.fresh_node();
        assert!(!g.has_12_pattern());
        g.add_edge(Label::ONE, x, y);
        assert!(!g.has_12_pattern(), "ONE alone is not a pattern");
        g.add_edge(Label::TWO, xp, y);
        let (a, ap, b) = g.find_12_pattern().unwrap();
        assert_eq!((a, ap, b), (x, xp, y));
    }

    #[test]
    fn twelve_pattern_requires_shared_target() {
        let sp = space_with_grid();
        let mut g = GreenGraph::empty(Arc::clone(&sp));
        let x = g.fresh_node();
        let y = g.fresh_node();
        let z = g.fresh_node();
        g.add_edge(Label::ONE, x, y);
        g.add_edge(Label::TWO, x, z);
        assert!(!g.has_12_pattern(), "different targets: no pattern");
    }

    #[test]
    fn twelve_pattern_allows_same_source() {
        // Definition 11 does not require a ≠ a′.
        let sp = space_with_grid();
        let mut g = GreenGraph::empty(Arc::clone(&sp));
        let x = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::ONE, x, y);
        g.add_edge(Label::TWO, x, y);
        assert!(g.has_12_pattern());
    }

    #[test]
    fn spaces_without_grid_labels_never_have_patterns() {
        let sp = Arc::new(LabelSpace::new([Label::Alpha]));
        let g = GreenGraph::di(sp);
        assert!(!g.has_12_pattern());
    }

    #[test]
    fn edges_iterate_with_labels() {
        let sp = space_with_grid();
        let mut g = GreenGraph::di(Arc::clone(&sp));
        let c = g.fresh_node();
        g.add_edge(Label::Alpha, g.a(), c);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(Label::Alpha, g.a(), c)));
        assert_eq!(g.edges_with(Label::Alpha).count(), 1);
    }
}
