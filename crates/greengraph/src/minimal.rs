//! Minimal models (Definition 31): the important-edge closure.
//!
//! Reasoning about arbitrary finite models is hard; minimal models retain
//! the chase's "built stage by stage" character (every edge is *important*
//! — reachable from the `H∅(a,b)` seed through witness demands), which is
//! what the inductive arguments of Appendix A ride on.

use crate::graph::GreenGraph;
use crate::label::Label;
use crate::rules::{Join, L2System};
use cqfd_core::Node;
use std::collections::HashSet;
use std::sync::Arc;

/// An edge in (label, from, to) form.
type Edge = (Label, Node, Node);

/// Computes the set of **important** edges of a model `m` of `t`
/// (Definition 31): the least set containing `H∅(a,b)` and closed under
/// "if two important edges match one side of a rule, every pair of edges
/// witnessing the other side is important".
///
/// (Definition 31 only demands *some* witness pair per demand; taking all
/// of them keeps the closure canonical and still yields a model.)
pub fn important_edges(t: &L2System, m: &GreenGraph) -> HashSet<Edge> {
    let seed: Edge = (Label::Empty, m.a(), m.b());
    let mut important: HashSet<Edge> = HashSet::new();
    if !m.has_edge(Label::Empty, m.a(), m.b()) {
        return important;
    }
    important.insert(seed);
    let mut frontier: Vec<Edge> = vec![seed];
    while let Some(e) = frontier.pop() {
        // Pair e with every other important edge and check both rule sides.
        let partners: Vec<Edge> = important.iter().copied().collect();
        for e2 in partners {
            for rule in t.rules() {
                for (from, to) in [(rule.lhs, rule.rhs), (rule.rhs, rule.lhs)] {
                    for (p1, p2) in [(e, e2), (e2, e)] {
                        if p1.0 != from.0 || p2.0 != from.1 {
                            continue;
                        }
                        let matched = match rule.join {
                            Join::Antenna => p1.2 == p2.2, // share target
                            Join::Tail => p1.1 == p2.1,    // share source
                        };
                        if !matched {
                            continue;
                        }
                        // Collect all witness pairs for the `to` side.
                        for w in witness_pairs(m, rule.join, to, p1, p2) {
                            for edge in w {
                                if important.insert(edge) {
                                    frontier.push(edge);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    important
}

/// All pairs `(H_{to.0}(x, y′), H_{to.1}(x′, y′))` witnessing the demanded
/// side for the matched pair `(p1, p2)`.
fn witness_pairs(
    m: &GreenGraph,
    join: Join,
    to: (Label, Label),
    p1: (Label, Node, Node),
    p2: (Label, Node, Node),
) -> Vec<[Edge; 2]> {
    let mut out = Vec::new();
    match join {
        Join::Antenna => {
            let (x, xp) = (p1.1, p2.1);
            for (sx, sy) in m.edges_with(to.0) {
                if sx != x {
                    continue;
                }
                if m.has_edge(to.1, xp, sy) {
                    out.push([(to.0, sx, sy), (to.1, xp, sy)]);
                }
            }
        }
        Join::Tail => {
            let (y, yp) = (p1.2, p2.2);
            for (sx, sy) in m.edges_with(to.0) {
                if sy != y {
                    continue;
                }
                if m.has_edge(to.1, sx, yp) {
                    out.push([(to.0, sx, sy), (to.1, sx, yp)]);
                }
            }
        }
    }
    out
}

/// Extracts the minimal model: the substructure of `m` on its important
/// edges. If `m` models `t`, so does the result (tested).
pub fn minimal_model(t: &L2System, m: &GreenGraph) -> GreenGraph {
    let keep = important_edges(t, m);
    let mut out = GreenGraph::empty(Arc::clone(m.space()));
    // Preserve node identities by allocating up to m's node count.
    while out.node_count() < m.node_count() {
        out.fresh_node();
    }
    for (l, x, y) in m.edges() {
        if keep.contains(&(l, x, y)) {
            out.add_edge(l, x, y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::L2Rule;

    use cqfd_chase::ChaseBudget;

    fn sys() -> L2System {
        L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::Alpha,
            Label::Eta1,
        )])
    }

    #[test]
    fn chase_results_are_entirely_important() {
        let t = sys();
        let g = GreenGraph::di(t.space_with([]));
        let (closed, run) = t.chase(&g, &ChaseBudget::stages(8));
        assert!(run.reached_fixpoint());
        let imp = important_edges(&t, &closed);
        assert_eq!(imp.len(), closed.edge_count(), "nothing in a chase is junk");
    }

    #[test]
    fn junk_edges_are_dropped() {
        let t = sys();
        let g = GreenGraph::di(t.space_with([Label::Beta0]));
        let (mut closed, _) = t.chase(&g, &ChaseBudget::stages(8));
        // Junk: an unreachable β0 edge between fresh vertices.
        let u = closed.fresh_node();
        let v = closed.fresh_node();
        closed.add_edge(Label::Beta0, u, v);
        assert!(t.is_model(&closed), "β0 triggers nothing in this system");
        let minimal = minimal_model(&t, &closed);
        assert_eq!(minimal.edge_count(), closed.edge_count() - 1);
        assert!(!minimal.has_edge(Label::Beta0, u, v));
        assert!(t.is_model(&minimal), "minimal models are still models");
    }

    #[test]
    fn seedless_models_have_no_important_edges() {
        let t = sys();
        let space = t.space_with([]);
        let mut g = GreenGraph::empty(space);
        let x = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::Alpha, x, y);
        g.add_edge(Label::Eta1, x, y);
        let imp = important_edges(&t, &g);
        assert!(imp.is_empty(), "no H∅(a,b) seed, nothing is important");
    }

    #[test]
    fn importance_closes_over_both_rule_directions() {
        // Model where the rhs pattern exists with its lhs witnesses; the
        // closure must walk backward through the equivalence too.
        let t = sys();
        let space = t.space_with([]);
        let mut g = GreenGraph::di(Arc::clone(&space));
        let c = g.fresh_node();
        let (a, _b) = (g.a(), g.b());
        g.add_edge(Label::Alpha, a, c);
        g.add_edge(Label::Eta1, a, c);
        assert!(t.is_model(&g));
        let imp = important_edges(&t, &g);
        assert_eq!(imp.len(), 3, "the α/η1 witnesses are important");
    }
}
