//! # cqfd-greengraph — Abstraction Level 2: green graphs (paper §VI)
//!
//! The paper's highest-level programming language. A **green graph** is a
//! structure over the signature `{H_i : i ∈ S̄}` where `S̄ = S ∪ {∅}` and
//! every `H_i` is binary — an edge-labelled directed graph. The rewriting
//! rules of the set `L2` are symmetric equivalences:
//!
//! ```text
//! I1 &·· I2 ] I3 &·· I4   ≡   ∀x,x′ [∃y H(I1,x,y) ∧ H(I2,x′,y)] ⇔ [∃y H(I3,x,y) ∧ H(I4,x′,y)]
//! I1 /·· I2 ] I3 /·· I4   ≡   ∀y,y′ [∃x H(I1,x,y) ∧ H(I2,x,y′)] ⇔ [∃x H(I3,x,y) ∧ H(I4,x,y′)]
//! ```
//!
//! This crate provides:
//!
//! * a typed [`Label`] space covering everything the paper puts into `S̄`:
//!   `∅`, the skeleton labels `α, β0, β1, η0, η1, η11, γ0, γ1, ω0`, the 32
//!   grid labels `⟨n|e|s|w, α|β, d|d̄, b|b̄⟩` of §VII Step 2, generic machine
//!   symbols, and the reserved indices 3, 4 of `Precompile` (Definition 9);
//! * [`GreenGraph`], green graphs with the distinguished constants `a`, `b`
//!   and the initial graph `DI` (`H∅(a,b)`, §VII Step 1);
//! * [`L2Rule`] / [`L2System`]: the rule language, its TGD compilation, the
//!   chase at Level 2, and an exact model checker (both directions of every
//!   equivalence);
//! * the **1-2 pattern** detector (Definition 11);
//! * [`ParityGlasses`] (Definition 16) and word extraction (Definition 15),
//!   through which green graphs are read as sets of words — the bridge to
//!   rainworm configurations in §VIII.
//!
//! ```
//! use cqfd_chase::ChaseBudget;
//! use cqfd_greengraph::{GreenGraph, L2Rule, L2System, Label};
//!
//! // One rewriting rule: ∅ &·· ∅ ] α &·· η1 (rule (I) of T∞).
//! let sys = L2System::new(vec![L2Rule::antenna(
//!     Label::Empty, Label::Empty, Label::Alpha, Label::Eta1,
//! )]);
//! let g = GreenGraph::di(sys.space_with([]));
//! let (out, run) = sys.chase(&g, &ChaseBudget::stages(8));
//! assert!(run.reached_fixpoint());
//! assert!(sys.is_model(&out));
//! assert_eq!(out.edges_with(Label::Alpha).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod graph;
pub mod label;
pub mod minimal;
pub mod pg;
pub mod rules;
pub mod space;

pub use analysis::{label_closure, provably_never_red_spider};
pub use graph::GreenGraph;
pub use label::{Dir, GridLabel, Kind, Label, Parity};
pub use minimal::{important_edges, minimal_model};
pub use pg::ParityGlasses;
pub use rules::{Join, L2Rule, L2System};
pub use space::LabelSpace;
