//! Parity glasses and the word-reading of green graphs
//! (Definitions 15 and 16).
//!
//! In the interesting green graphs every vertex has in-degree 0 or
//! out-degree 0, so no directed path is longer than one edge. **Parity
//! glasses** fix this: drop the `∅` edges and reverse every edge with an
//! odd label. Through the glasses, the chase of `T∞` becomes an honest
//! path, and rainworm configurations become readable words
//! (`words(M) = paths(PG(M), a, a) ∪ paths(PG(M), a, b)`).

use crate::graph::GreenGraph;
use crate::label::Label;
use cqfd_core::Node;
use std::collections::{BTreeMap, BTreeSet};

/// The parity-glasses view `PG(M)` of a green graph: a directed
/// label-preserving multigraph, read as a nondeterministic finite automaton
/// (Definition 15).
#[derive(Debug, Clone)]
pub struct ParityGlasses {
    adj: BTreeMap<Node, Vec<(Label, Node)>>,
}

impl ParityGlasses {
    /// Applies Definition 16: remove `∅` edges, reverse odd-labelled edges.
    pub fn new(g: &GreenGraph) -> Self {
        let mut adj: BTreeMap<Node, Vec<(Label, Node)>> = BTreeMap::new();
        for (l, x, y) in g.edges() {
            if l == Label::Empty {
                continue;
            }
            let (from, to) = if l.is_odd() { (y, x) } else { (x, y) };
            adj.entry(from).or_default().push((l, to));
        }
        ParityGlasses { adj }
    }

    /// Outgoing transformed edges of a vertex.
    pub fn successors(&self, n: Node) -> &[(Label, Node)] {
        self.adj.get(&n).map_or(&[], Vec::as_slice)
    }

    /// One NFA step: all states reachable from `states` by one `l`-edge.
    pub fn step(&self, states: &BTreeSet<Node>, l: Label) -> BTreeSet<Node> {
        let mut out = BTreeSet::new();
        for &s in states {
            for &(el, t) in self.successors(s) {
                if el == l {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// States reachable from `s` by reading `word`.
    pub fn reach(&self, s: Node, word: &[Label]) -> BTreeSet<Node> {
        let mut states: BTreeSet<Node> = [s].into();
        for &l in word {
            states = self.step(&states, l);
            if states.is_empty() {
                break;
            }
        }
        states
    }

    /// Is `word ∈ paths(PG(M), s, t)` (Definition 15)? — accepted from `s`
    /// at `t`, with no nonempty proper prefix accepted.
    pub fn is_path_word(&self, s: Node, t: Node, word: &[Label]) -> bool {
        if word.is_empty() {
            return false;
        }
        let mut states: BTreeSet<Node> = [s].into();
        for (i, &l) in word.iter().enumerate() {
            states = self.step(&states, l);
            if states.is_empty() {
                return false;
            }
            let accepted = states.contains(&t);
            if i + 1 < word.len() {
                if accepted {
                    return false; // proper prefix accepted
                }
            } else {
                return accepted;
            }
        }
        unreachable!("loop returns on the last symbol")
    }

    /// Enumerates `paths(PG(M), s, t)` up to `max_len` symbols (and at most
    /// `max_words` results, as a runaway guard for pathological graphs).
    pub fn words(
        &self,
        s: Node,
        t: Node,
        max_len: usize,
        max_words: usize,
    ) -> BTreeSet<Vec<Label>> {
        self.words_joint(s, &[t], max_len, max_words)
    }

    /// Enumerates the **jointly prefix-free** word set with several
    /// accepting states: words accepted at some `t ∈ targets` none of whose
    /// nonempty proper prefixes is accepted at *any* target.
    ///
    /// This is the reading under which the paper's Figure 1 example is
    /// exact — `words(chase(T∞, DI)) = {α(β1β0)^k η1} ∪ {α(β1β0)^k β1 η0}`
    /// requires pruning continuations through `a` as well as through `b`.
    pub fn words_joint(
        &self,
        s: Node,
        targets: &[Node],
        max_len: usize,
        max_words: usize,
    ) -> BTreeSet<Vec<Label>> {
        let mut out = BTreeSet::new();
        let mut word: Vec<Label> = Vec::new();
        let start: BTreeSet<Node> = [s].into();
        self.dfs(&start, targets, max_len, max_words, &mut word, &mut out);
        out
    }

    fn dfs(
        &self,
        states: &BTreeSet<Node>,
        targets: &[Node],
        max_len: usize,
        max_words: usize,
        word: &mut Vec<Label>,
        out: &mut BTreeSet<Vec<Label>>,
    ) {
        if out.len() >= max_words {
            return;
        }
        if !word.is_empty() && targets.iter().any(|t| states.contains(t)) {
            // Accepted; prefix-freedom forbids extending this word.
            out.insert(word.clone());
            return;
        }
        if word.len() >= max_len {
            return;
        }
        // Candidate next labels: those leaving any current state.
        let labels: BTreeSet<Label> = states
            .iter()
            .flat_map(|&n| self.successors(n).iter().map(|&(l, _)| l))
            .collect();
        for l in labels {
            let next = self.step(states, l);
            if next.is_empty() {
                continue;
            }
            word.push(l);
            self.dfs(&next, targets, max_len, max_words, word, out);
            word.pop();
        }
    }
}

/// `words(M)` (Definition 16): path words from `a` back to `a` or to `b`,
/// jointly prefix-free (see [`ParityGlasses::words_joint`]), bounded by
/// `max_len`/`max_words`.
pub fn words_of(g: &GreenGraph, max_len: usize, max_words: usize) -> BTreeSet<Vec<Label>> {
    let pg = ParityGlasses::new(g);
    pg.words_joint(g.a(), &[g.a(), g.b()], max_len, max_words)
}

/// Is `word ∈ words(M)` — a path word from `a` back to `a` or to `b`?
pub fn graph_contains_word(g: &GreenGraph, word: &[Label]) -> bool {
    let pg = ParityGlasses::new(g);
    pg.is_path_word(g.a(), g.a(), word) || pg.is_path_word(g.a(), g.b(), word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::LabelSpace;
    use std::sync::Arc;

    /// Builds the first few steps of Figure 1 by hand:
    /// H∅(a,b), Hα(a,b1), Hη1(a,b1), Hη0(a1,b), Hβ1(a1,b1).
    fn figure1_prefix() -> GreenGraph {
        let sp = Arc::new(LabelSpace::new([
            Label::Alpha,
            Label::Beta0,
            Label::Beta1,
            Label::Eta0,
            Label::Eta1,
        ]));
        let mut g = GreenGraph::di(Arc::clone(&sp));
        let b1 = g.fresh_node();
        let a1 = g.fresh_node();
        let (a, b) = (g.a(), g.b());
        g.add_edge(Label::Alpha, a, b1);
        g.add_edge(Label::Eta1, a, b1);
        g.add_edge(Label::Eta0, a1, b);
        g.add_edge(Label::Beta1, a1, b1);
        g
    }

    #[test]
    fn odd_edges_are_reversed() {
        let g = figure1_prefix();
        let pg = ParityGlasses::new(&g);
        // Hη1(a,b1) is odd: through the glasses it runs b1 → a.
        let b1 = Node(2);
        assert!(pg
            .successors(b1)
            .iter()
            .any(|&(l, t)| l == Label::Eta1 && t == g.a()));
        // Hα(a,b1) is even: a → b1.
        assert!(pg
            .successors(g.a())
            .iter()
            .any(|&(l, t)| l == Label::Alpha && t == b1));
    }

    #[test]
    fn empty_edges_are_dropped() {
        let g = figure1_prefix();
        let pg = ParityGlasses::new(&g);
        for (_, succs) in pg.adj.iter() {
            assert!(succs.iter().all(|&(l, _)| l != Label::Empty));
        }
    }

    #[test]
    fn figure1_words() {
        let g = figure1_prefix();
        let pg = ParityGlasses::new(&g);
        // α η1 ∈ paths(a, a)
        assert!(pg.is_path_word(g.a(), g.a(), &[Label::Alpha, Label::Eta1]));
        // α β1 η0 ∈ paths(a, b)
        assert!(pg.is_path_word(g.a(), g.b(), &[Label::Alpha, Label::Beta1, Label::Eta0]));
        // α alone reaches neither a nor b.
        assert!(!pg.is_path_word(g.a(), g.a(), &[Label::Alpha]));
        // The full word set up to length 4:
        let ws = words_of(&g, 4, 100);
        let expect: BTreeSet<Vec<Label>> = [
            vec![Label::Alpha, Label::Eta1],
            vec![Label::Alpha, Label::Beta1, Label::Eta0],
        ]
        .into_iter()
        .collect();
        assert_eq!(ws, expect);
    }

    #[test]
    fn prefix_freedom_excludes_extensions() {
        // A graph where a → a via x and then x continues; once accepted, the
        // longer word must be excluded.
        let sp = Arc::new(LabelSpace::new([Label::Alpha, Label::Beta0]));
        let mut g = GreenGraph::empty(Arc::clone(&sp));
        let a = g.a();
        g.add_edge(Label::Alpha, a, a); // even self-loop a → a
        let pg = ParityGlasses::new(&g);
        assert!(pg.is_path_word(a, a, &[Label::Alpha]));
        assert!(
            !pg.is_path_word(a, a, &[Label::Alpha, Label::Alpha]),
            "the one-symbol prefix is already accepted"
        );
        let ws = pg.words(a, a, 5, 100);
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn empty_word_never_accepted() {
        let g = figure1_prefix();
        let pg = ParityGlasses::new(&g);
        assert!(!pg.is_path_word(g.a(), g.a(), &[]));
    }

    #[test]
    fn reach_is_monotone_under_steps() {
        let g = figure1_prefix();
        let pg = ParityGlasses::new(&g);
        let r = pg.reach(g.a(), &[Label::Alpha]);
        assert_eq!(r.len(), 1);
        let r2 = pg.reach(g.a(), &[Label::Alpha, Label::Beta1]);
        assert_eq!(r2.len(), 1);
        let dead = pg.reach(g.a(), &[Label::Beta0]);
        assert!(dead.is_empty());
    }

    #[test]
    fn graph_contains_word_checks_both_targets() {
        let g = figure1_prefix();
        assert!(graph_contains_word(&g, &[Label::Alpha, Label::Eta1]));
        assert!(graph_contains_word(
            &g,
            &[Label::Alpha, Label::Beta1, Label::Eta0]
        ));
        assert!(!graph_contains_word(&g, &[Label::Eta0]));
    }
}
