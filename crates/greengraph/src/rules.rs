//! The rule language `L2` and its execution (paper §VI, Definitiones of
//! `I1&··I2 ] I3&··I4` and `I1/··I2 ] I3/··I4`).

use crate::graph::GreenGraph;
use crate::label::Label;
use crate::space::LabelSpace;
use cqfd_chase::{ChaseBudget, ChaseEngine, ChaseRun, Tgd};
use cqfd_core::{Atom, Structure, Term, Var};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// How the two edges of each side of a rule are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Join {
    /// `&··`: the two edges share their **target** (`H(I1,x,y) ∧ H(I2,x′,y)`)
    /// — the Level-0 reading is "spiders share their antenna".
    Antenna,
    /// `/··`: the two edges share their **source** (`H(I1,x,y) ∧ H(I2,x,y′)`)
    /// — the Level-0 reading is "spiders share their tail".
    Tail,
}

/// A green-graph rewriting rule `I1 ⋈ I2 ] I3 ⋈ I4` (an equivalence; `⋈` is
/// `&··` or `/··` according to [`Join`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct L2Rule {
    /// The join shape shared by both sides.
    pub join: Join,
    /// Left-hand labels `(I1, I2)`.
    pub lhs: (Label, Label),
    /// Right-hand labels `(I3, I4)`.
    pub rhs: (Label, Label),
}

impl L2Rule {
    /// `I1 &·· I2 ] I3 &·· I4`.
    pub fn antenna(i1: Label, i2: Label, i3: Label, i4: Label) -> Self {
        L2Rule {
            join: Join::Antenna,
            lhs: (i1, i2),
            rhs: (i3, i4),
        }
    }

    /// `I1 /·· I2 ] I3 /·· I4`.
    pub fn tail(i1: Label, i2: Label, i3: Label, i4: Label) -> Self {
        L2Rule {
            join: Join::Tail,
            lhs: (i1, i2),
            rhs: (i3, i4),
        }
    }

    /// All four labels of the rule.
    pub fn labels(&self) -> [Label; 4] {
        [self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1]
    }

    /// The two TGDs of the equivalence (forward: lhs pattern demands rhs
    /// witnesses; backward: vice versa).
    pub fn tgds(&self, space: &LabelSpace) -> [Tgd; 2] {
        [
            self.one_tgd(space, self.lhs, self.rhs, "fwd"),
            self.one_tgd(space, self.rhs, self.lhs, "bwd"),
        ]
    }

    fn one_tgd(
        &self,
        space: &LabelSpace,
        from: (Label, Label),
        to: (Label, Label),
        dir: &str,
    ) -> Tgd {
        let h = |l: Label, x: u32, y: u32| {
            Atom::new(space.pred(l), vec![Term::Var(Var(x)), Term::Var(Var(y))])
        };
        // Variables: 0, 1 = the two free endpoints; 2 = shared joined vertex
        // of the body; 3 = fresh shared joined vertex of the head.
        let (body, head) = match self.join {
            Join::Antenna => (
                vec![h(from.0, 0, 2), h(from.1, 1, 2)],
                vec![h(to.0, 0, 3), h(to.1, 1, 3)],
            ),
            Join::Tail => (
                vec![h(from.0, 2, 0), h(from.1, 2, 1)],
                vec![h(to.0, 3, 0), h(to.1, 3, 1)],
            ),
        };
        Tgd::new_unchecked(format!("{self}[{dir}]"), body, head)
    }
}

impl fmt::Display for L2Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.join {
            Join::Antenna => "&··",
            Join::Tail => "/··",
        };
        write!(
            f,
            "{}{}{} ] {}{}{}",
            self.lhs.0, op, self.lhs.1, self.rhs.0, op, self.rhs.1
        )
    }
}

/// A set `T ⊆ L2` of green-graph rewriting rules, executable via the chase.
#[derive(Debug, Clone, Default)]
pub struct L2System {
    rules: Vec<L2Rule>,
}

impl L2System {
    /// Builds a system.
    ///
    /// # Panics
    /// If any rule mentions the reserved labels 3 or 4 — the paper's
    /// standing assumption after Definition 9 ("spiders `I3` and `I4` … do
    /// not occur in our sets of green graph rewriting rules").
    pub fn new(rules: Vec<L2Rule>) -> Self {
        for r in &rules {
            for l in r.labels() {
                assert!(
                    l != Label::Reserved3 && l != Label::Reserved4,
                    "rule {r} uses a reserved Precompile label"
                );
            }
        }
        L2System { rules }
    }

    /// The rules.
    pub fn rules(&self) -> &[L2Rule] {
        &self.rules
    }

    /// Union of two systems (e.g. `T = T∞ ∪ T□`, §VII; `TM∆ ∪ T□`, §VIII).
    pub fn union(&self, other: &L2System) -> L2System {
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().copied());
        L2System { rules }
    }

    /// Every label mentioned by the rules.
    pub fn labels(&self) -> BTreeSet<Label> {
        self.rules.iter().flat_map(|r| r.labels()).collect()
    }

    /// A label space covering this system plus any extra labels.
    pub fn space_with(&self, extra: impl IntoIterator<Item = Label>) -> Arc<LabelSpace> {
        let mut labels = self.labels();
        labels.extend(extra);
        Arc::new(LabelSpace::new(labels))
    }

    /// The TGD compilation of all rules over the given space.
    pub fn tgds(&self, space: &LabelSpace) -> Vec<Tgd> {
        self.rules.iter().flat_map(|r| r.tgds(space)).collect()
    }

    /// The chase engine over the given space.
    pub fn engine(&self, space: &LabelSpace) -> ChaseEngine {
        ChaseEngine::new(self.tgds(space))
    }

    /// Chases a green graph under this system.
    pub fn chase(&self, g: &GreenGraph, budget: &ChaseBudget) -> (GreenGraph, ChaseRun) {
        let engine = self.engine(g.space());
        let run = engine.chase(g.structure(), budget);
        let out = GreenGraph::from_structure(Arc::clone(g.space()), run.structure.clone());
        (out, run)
    }

    /// Chases until a 1-2 pattern appears (or the budget runs out). Returns
    /// the final graph, the run, and whether the pattern was found.
    ///
    /// This is the semi-decision procedure for "`T` leads to the red
    /// spider" on the chase side (Definition 11 at Level 2): if
    /// `chase(T, DI)` develops a 1-2 pattern, every model does.
    pub fn chase_until_12(
        &self,
        g: &GreenGraph,
        budget: &ChaseBudget,
    ) -> (GreenGraph, ChaseRun, bool) {
        self.chase_until_12_with(g, budget, cqfd_chase::Strategy::Naive)
    }

    /// [`L2System::chase_until_12`] with an explicit chase strategy (the
    /// semi-naive strategy is markedly faster on large grid chases; see
    /// the `fig3_grid` ablation bench).
    pub fn chase_until_12_with(
        &self,
        g: &GreenGraph,
        budget: &ChaseBudget,
        strategy: cqfd_chase::Strategy,
    ) -> (GreenGraph, ChaseRun, bool) {
        let engine = self.engine(g.space()).with_strategy(strategy);
        let space = Arc::clone(g.space());
        let run = engine.chase_with_monitor(g.structure(), budget, |st, _| {
            has_12_in_structure(&space, st)
        });
        let found = has_12_in_structure(&space, &run.structure);
        let out = GreenGraph::from_structure(space, run.structure.clone());
        (out, run, found)
    }

    /// Exact model check: both directions of every equivalence hold.
    pub fn is_model(&self, g: &GreenGraph) -> bool {
        self.engine(g.space()).is_model(g.structure())
    }

    /// The first violated rule direction, if any (TGD index order: rule `i`
    /// owns TGDs `2i` (fwd) and `2i+1` (bwd)).
    pub fn first_violation(&self, g: &GreenGraph) -> Option<String> {
        let engine = self.engine(g.space());
        engine
            .first_violation(g.structure())
            .map(|(i, _)| engine.tgds()[i].name().to_owned())
    }
}

/// 1-2 pattern detection on a raw structure over a label space.
pub fn has_12_in_structure(space: &LabelSpace, st: &Structure) -> bool {
    if !space.contains(Label::ONE) || !space.contains(Label::TWO) {
        return false;
    }
    let one = space.pred(Label::ONE);
    let two = space.pred(Label::TWO);
    st.atoms_with_pred(one).any(|a| {
        st.atoms_with_pred_pos_node(two, 1, a.args[1])
            .next()
            .is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(extra: &[Label]) -> Arc<LabelSpace> {
        let mut labels = vec![Label::Alpha, Label::Beta0, Label::Beta1];
        labels.extend_from_slice(extra);
        Arc::new(LabelSpace::new(labels))
    }

    #[test]
    fn antenna_rule_fires_forward() {
        // α &·· α ] β0 &·· β1: two α edges sharing a target force β0/β1
        // edges sharing a (fresh) target.
        let rule = L2Rule::antenna(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let sys = L2System::new(vec![rule]);
        let space = sp(&[]);
        let mut g = GreenGraph::empty(Arc::clone(&space));
        let x = g.fresh_node();
        let xp = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::Alpha, x, y);
        g.add_edge(Label::Alpha, xp, y);
        assert!(!sys.is_model(&g));
        let (out, run, _) = sys.chase_until_12(&g, &ChaseBudget::stages(8));
        assert!(run.reached_fixpoint());
        assert!(sys.is_model(&out));
        // The fresh target y' carries β0 from x and β1 from x' — and the
        // *backward* TGD is satisfied by the original α pair.
        let b0: Vec<_> = out.edges_with(Label::Beta0).collect();
        assert!(!b0.is_empty());
    }

    #[test]
    fn tail_rule_fires_forward() {
        let rule = L2Rule::tail(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let sys = L2System::new(vec![rule]);
        let space = sp(&[]);
        let mut g = GreenGraph::empty(Arc::clone(&space));
        let x = g.fresh_node();
        let y = g.fresh_node();
        let yp = g.fresh_node();
        g.add_edge(Label::Alpha, x, y);
        g.add_edge(Label::Alpha, x, yp);
        let (out, run) = sys.chase(&g, &ChaseBudget::stages(8));
        assert!(run.reached_fixpoint());
        assert!(sys.is_model(&out));
        // Homomorphisms need not be injective: all four target pairs
        // (y,y), (y,y′), (y′,y), (y′,y′) fire, each creating a β0/β1 pair
        // that *shares its fresh source* (tail join).
        let b0: Vec<_> = out.edges_with(Label::Beta0).collect();
        let b1: Vec<_> = out.edges_with(Label::Beta1).collect();
        assert_eq!(b0.len(), 4);
        assert_eq!(b1.len(), 4);
        for &(src, tgt) in &b0 {
            let partner = b1.iter().find(|&&(s, _)| s == src);
            assert!(partner.is_some(), "β0 from {src:?} must pair with a β1");
            assert!(tgt == y || tgt == yp);
        }
        // In particular the (y, y′) match produced a pair covering both
        // original targets from one shared source.
        assert!(b0.iter().any(|&(s, t)| t == y && b1.contains(&(s, yp))));
    }

    #[test]
    fn backward_direction_also_enforced() {
        // Model check must fail when only the rhs pattern is present.
        let rule = L2Rule::antenna(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let sys = L2System::new(vec![rule]);
        let space = sp(&[]);
        let mut g = GreenGraph::empty(Arc::clone(&space));
        let x = g.fresh_node();
        let xp = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::Beta0, x, y);
        g.add_edge(Label::Beta1, xp, y);
        assert!(!sys.is_model(&g), "backward TGD demands α witnesses");
        let (out, run) = sys.chase(&g, &ChaseBudget::stages(8));
        assert!(run.reached_fixpoint());
        assert!(sys.is_model(&out));
    }

    #[test]
    fn degenerate_match_with_equal_endpoints() {
        // A single α edge matches `α &·· α` with x = x′ (homomorphisms need
        // not be injective) — the §VII Step 3 phenomenon that triggers the
        // grid rule on unfolded paths.
        let rule = L2Rule::antenna(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let sys = L2System::new(vec![rule]);
        let space = sp(&[]);
        let mut g = GreenGraph::empty(Arc::clone(&space));
        let x = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::Alpha, x, y);
        let (out, run) = sys.chase(&g, &ChaseBudget::stages(8));
        assert!(run.reached_fixpoint());
        // β0 and β1 edges from x to a shared fresh node.
        let b0: Vec<_> = out.edges_with(Label::Beta0).collect();
        assert_eq!(b0.len(), 1);
        assert_eq!(b0[0].0, x);
    }

    #[test]
    fn twelve_pattern_stops_chase() {
        // ∅ &·· ∅ ] ONE &·· TWO: DI immediately yields a 1-2 pattern.
        let rule = L2Rule::antenna(Label::Empty, Label::Empty, Label::ONE, Label::TWO);
        let sys = L2System::new(vec![rule]);
        let space = sys.space_with([]);
        let g = GreenGraph::di(Arc::clone(&space));
        let (_, _, found) = sys.chase_until_12(&g, &ChaseBudget::stages(8));
        assert!(found);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_labels_rejected() {
        let _ = L2System::new(vec![L2Rule::antenna(
            Label::Reserved3,
            Label::Alpha,
            Label::Alpha,
            Label::Alpha,
        )]);
    }

    #[test]
    fn union_concatenates() {
        let r1 = L2Rule::antenna(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let r2 = L2Rule::tail(Label::Alpha, Label::Alpha, Label::Beta0, Label::Beta1);
        let s = L2System::new(vec![r1]).union(&L2System::new(vec![r2]));
        assert_eq!(s.rules().len(), 2);
        assert_eq!(s.labels().len(), 3);
    }

    #[test]
    fn display_format() {
        let r = L2Rule::antenna(Label::Empty, Label::Empty, Label::Alpha, Label::Eta1);
        assert_eq!(format!("{r}"), "∅&··∅ ] α&··η1");
        let r = L2Rule::tail(Label::Empty, Label::Eta1, Label::Eta0, Label::Beta1);
        assert_eq!(format!("{r}"), "∅/··η1 ] η0/··β1");
    }
}
