//! The label alphabet `S̄ = S ∪ {∅}` of green graphs.
//!
//! The paper takes `S = {1, …, s}` and assigns meanings to numbers through
//! "some fixed bijection" (footnote 13). We keep the labels *typed* and
//! defer the numbering to the moment it is needed (the `Precompile` step,
//! which maps labels to spider leg indices — see `cqfd-reduction`).
//!
//! Every label has a **parity** (Definition 19 distinguishes even and odd
//! symbols; parity glasses reverse odd edges). Named labels carry the
//! parities the paper assigns (`α, β0, η0, γ0, ω0` even; `β1, η1, η11, γ1`
//! odd); generic machine symbols carry an explicit parity bit; grid labels
//! are conventionally even (no words are ever read through grid edges, so
//! the paper leaves their parity unspecified — the choice is documented
//! here and nothing downstream depends on it).

use std::fmt;

/// Parity of a label (Definition 19's even/odd symbol classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Parity {
    /// Even symbols: `α, β0, γ0, η0, ω0`, `A0`-tape symbols, even states.
    Even,
    /// Odd symbols: `β1, γ1, η1, η11`, `A1`-tape symbols, odd states.
    Odd,
}

/// Direction component of a grid label (§VII Step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// North — the edge heads north.
    N,
    /// East.
    E,
    /// South.
    S,
    /// West.
    W,
}

/// Second component of a grid label: inherited from the "respective" element
/// of one of the original αβ-paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// Inherited from an `α` edge.
    A,
    /// Inherited from a `β` edge.
    B,
}

/// A grid label `⟨n|e|s|w, α|β, d|d̄, b|b̄⟩` — one of the 32 relations for
/// the inner edges of the grid (§VII Step 2).
///
/// * `diag`: does one end of the edge lie on the grid diagonal (`d`)?
/// * `border`: does the edge share a vertex with one of the original
///   αβ-paths (`b`)?
///
/// The 1-2 pattern labels are `⟨n, α, d̄, b̄⟩` (the paper's "1") and
/// `⟨w, α, d̄, b̄⟩` (the paper's "2"); see [`Label::ONE`] / [`Label::TWO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridLabel {
    /// Direction the edge heads.
    pub dir: Dir,
    /// `α` or `β` heritage.
    pub kind: Kind,
    /// On-diagonal flag (`d` vs `d̄`).
    pub diag: bool,
    /// Border flag (`b` vs `b̄`).
    pub border: bool,
}

/// A label from `S̄ = S ∪ {∅}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// `∅` — the label of the single edge of `DI`.
    Empty,
    /// `α` (even).
    Alpha,
    /// `β0` (even).
    Beta0,
    /// `β1` (odd).
    Beta1,
    /// `η0` (even).
    Eta0,
    /// `η1` (odd).
    Eta1,
    /// `η11` (odd) — the initial rainworm head state.
    Eta11,
    /// `γ0` (even) — rainworm rear-end marker.
    Gamma0,
    /// `γ1` (odd) — rainworm rear-end marker.
    Gamma1,
    /// `ω0` (even) — rainworm front-of-head marker.
    Omega0,
    /// One of the 32 grid labels.
    Grid(GridLabel),
    /// A machine symbol (rainworm tape symbol or state) with an explicit
    /// parity. The `id` namespace is owned by the machine definition.
    Sym {
        /// Machine-defined identifier.
        id: u16,
        /// Parity of the symbol.
        parity: Parity,
    },
    /// Reserved index 3 of `Precompile` (Definition 9). Never occurs in
    /// green graph rules or graphs (Lemma 37); exists as a label only so
    /// the numbering of `S` can account for it.
    Reserved3,
    /// Reserved index 4 of `Precompile`. See [`Label::Reserved3`].
    Reserved4,
}

impl Label {
    /// The "1" of the 1-2 pattern: `⟨n, α, d̄, b̄⟩`.
    pub const ONE: Label = Label::Grid(GridLabel {
        dir: Dir::N,
        kind: Kind::A,
        diag: false,
        border: false,
    });

    /// The "2" of the 1-2 pattern: `⟨w, α, d̄, b̄⟩`.
    pub const TWO: Label = Label::Grid(GridLabel {
        dir: Dir::W,
        kind: Kind::A,
        diag: false,
        border: false,
    });

    /// The label's parity. `∅` is conventionally even (it never occurs in a
    /// rainworm configuration and parity glasses drop it before reading).
    pub fn parity(self) -> Parity {
        match self {
            Label::Empty
            | Label::Alpha
            | Label::Beta0
            | Label::Eta0
            | Label::Gamma0
            | Label::Omega0 => Parity::Even,
            Label::Beta1 | Label::Eta1 | Label::Eta11 | Label::Gamma1 => Parity::Odd,
            Label::Grid(_) => Parity::Even,
            Label::Sym { parity, .. } => parity,
            Label::Reserved3 | Label::Reserved4 => Parity::Even,
        }
    }

    /// Is this label odd (parity glasses reverse odd edges)?
    pub fn is_odd(self) -> bool {
        self.parity() == Parity::Odd
    }

    /// All 32 grid labels, in a canonical order.
    pub fn all_grid_labels() -> Vec<Label> {
        let mut out = Vec::with_capacity(32);
        for dir in [Dir::N, Dir::E, Dir::S, Dir::W] {
            for kind in [Kind::A, Kind::B] {
                for diag in [true, false] {
                    for border in [true, false] {
                        out.push(Label::Grid(GridLabel {
                            dir,
                            kind,
                            diag,
                            border,
                        }));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Empty => write!(f, "∅"),
            Label::Alpha => write!(f, "α"),
            Label::Beta0 => write!(f, "β0"),
            Label::Beta1 => write!(f, "β1"),
            Label::Eta0 => write!(f, "η0"),
            Label::Eta1 => write!(f, "η1"),
            Label::Eta11 => write!(f, "η11"),
            Label::Gamma0 => write!(f, "γ0"),
            Label::Gamma1 => write!(f, "γ1"),
            Label::Omega0 => write!(f, "ω0"),
            Label::Grid(g) => {
                let dir = match g.dir {
                    Dir::N => "n",
                    Dir::E => "e",
                    Dir::S => "s",
                    Dir::W => "w",
                };
                let kind = match g.kind {
                    Kind::A => "α",
                    Kind::B => "β",
                };
                let diag = if g.diag { "d" } else { "d̄" };
                let border = if g.border { "b" } else { "b̄" };
                write!(f, "⟨{dir},{kind},{diag},{border}⟩")
            }
            Label::Sym { id, parity } => {
                let p = match parity {
                    Parity::Even => "e",
                    Parity::Odd => "o",
                };
                write!(f, "sym{id}{p}")
            }
            Label::Reserved3 => write!(f, "№3"),
            Label::Reserved4 => write!(f, "№4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_labels_number_32() {
        let all = Label::all_grid_labels();
        assert_eq!(all.len(), 32);
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 32);
    }

    #[test]
    fn paper_parities() {
        assert_eq!(Label::Alpha.parity(), Parity::Even);
        assert_eq!(Label::Beta0.parity(), Parity::Even);
        assert_eq!(Label::Beta1.parity(), Parity::Odd);
        assert_eq!(Label::Eta0.parity(), Parity::Even);
        assert_eq!(Label::Eta1.parity(), Parity::Odd);
        assert_eq!(Label::Eta11.parity(), Parity::Odd);
        assert_eq!(Label::Gamma0.parity(), Parity::Even);
        assert_eq!(Label::Gamma1.parity(), Parity::Odd);
        assert_eq!(Label::Omega0.parity(), Parity::Even);
    }

    #[test]
    fn one_two_are_the_nw_corner_labels() {
        match Label::ONE {
            Label::Grid(g) => {
                assert_eq!(g.dir, Dir::N);
                assert_eq!(g.kind, Kind::A);
                assert!(!g.diag && !g.border);
            }
            _ => panic!("ONE must be a grid label"),
        }
        assert_ne!(Label::ONE, Label::TWO);
        assert_eq!(format!("{}", Label::ONE), "⟨n,α,d̄,b̄⟩");
        assert_eq!(format!("{}", Label::TWO), "⟨w,α,d̄,b̄⟩");
    }

    #[test]
    fn sym_labels_carry_parity() {
        let even = Label::Sym {
            id: 7,
            parity: Parity::Even,
        };
        let odd = Label::Sym {
            id: 7,
            parity: Parity::Odd,
        };
        assert_ne!(even, odd);
        assert!(!even.is_odd());
        assert!(odd.is_odd());
    }

    #[test]
    fn labels_order_canonically() {
        // Ord is derived; sorting must be stable and deduplicate correctly.
        let mut v = vec![Label::Beta1, Label::Alpha, Label::Empty, Label::Beta1];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], Label::Empty);
    }
}
