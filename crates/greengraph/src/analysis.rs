//! Static label-flow analysis for `L2` systems.
//!
//! A sound over-approximation of which labels a chase can ever produce:
//! ignore the graph structure entirely and close the set of *available*
//! labels under "if both labels of one side of a rule are available, the
//! other side's labels become available". Since every rule application
//! consumes edges with available labels and produces edges with the
//! opposite side's labels, the closure over-approximates the labels of
//! `chase(T, D)` for any `D` labelled within the seed set.
//!
//! The payoff is a *static certificate*: if the closure from `{∅}` (the
//! labels of `DI`) misses `⟨n,α,d̄,b̄⟩` or `⟨w,α,d̄,b̄⟩`, no chase from `DI`
//! — indeed no minimal model — can contain a 1-2 pattern, so the system
//! provably does not lead to the red spider. It certifies, e.g., that
//! `T∞` alone (no grid labels at all) and `T□` alone (its trigger needs a
//! `β0` that nothing produces from `∅`) are safe. It is deliberately
//! coarse: because it ignores *which vertices* edges share, it cannot
//! prove the E-GRID ablation (the literal fourth eastern-strip rule is
//! abstractly fireable even though its two left-hand edges can never
//! share a target) — that one needs the dynamic experiment.

use crate::label::Label;
use crate::rules::L2System;
use std::collections::BTreeSet;

/// The label closure: all labels producible from `seed` under `t`,
/// ignoring graph structure (a sound over-approximation).
pub fn label_closure(t: &L2System, seed: impl IntoIterator<Item = Label>) -> BTreeSet<Label> {
    let mut avail: BTreeSet<Label> = seed.into_iter().collect();
    loop {
        let mut changed = false;
        for rule in t.rules() {
            for (from, to) in [(rule.lhs, rule.rhs), (rule.rhs, rule.lhs)] {
                if avail.contains(&from.0) && avail.contains(&from.1) {
                    changed |= avail.insert(to.0);
                    changed |= avail.insert(to.1);
                }
            }
        }
        if !changed {
            return avail;
        }
    }
}

/// Static sufficient condition for "`t` does **not** lead to the red
/// spider" (Definition 11): from `DI`'s label `∅`, the pattern labels are
/// unreachable. `false` means "no conclusion" (the pattern labels being
/// *reachable* does not imply a pattern actually forms — that needs the
/// graph-level diagonal argument of §VII).
pub fn provably_never_red_spider(t: &L2System) -> bool {
    let closure = label_closure(t, [Label::Empty]);
    !closure.contains(&Label::ONE) || !closure.contains(&Label::TWO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::L2Rule;

    #[test]
    fn closure_follows_both_rule_directions() {
        let t = L2System::new(vec![
            L2Rule::antenna(Label::Empty, Label::Empty, Label::Alpha, Label::Eta1),
            L2Rule::tail(Label::Alpha, Label::Eta1, Label::Beta0, Label::Beta1),
        ]);
        let c = label_closure(&t, [Label::Empty]);
        assert!(c.contains(&Label::Alpha));
        assert!(c.contains(&Label::Beta0));
        assert!(c.contains(&Label::Beta1));
        // Backward direction too: seed with the β side only.
        let c2 = label_closure(&t, [Label::Beta0, Label::Beta1]);
        assert!(c2.contains(&Label::Alpha), "equivalences flow both ways");
        assert!(c2.contains(&Label::Empty));
    }

    #[test]
    fn unreachable_labels_stay_out() {
        let t = L2System::new(vec![L2Rule::antenna(
            Label::Alpha,
            Label::Alpha,
            Label::Beta0,
            Label::Beta1,
        )]);
        let c = label_closure(&t, [Label::Empty]);
        assert_eq!(c.len(), 1, "no rule fires from ∅ alone");
    }

    #[test]
    fn sound_on_simple_positive_instance() {
        let t = L2System::new(vec![L2Rule::antenna(
            Label::Empty,
            Label::Empty,
            Label::ONE,
            Label::TWO,
        )]);
        assert!(!provably_never_red_spider(&t), "pattern labels reachable");
    }
}
