//! Graphviz (DOT) export of green graphs — Figures 1–4, regenerable.

use crate::graph::GreenGraph;
use crate::label::Label;
use std::fmt::Write;

/// Renders the graph in Graphviz DOT format. The distinguished vertices
/// `a` and `b` are boxed; grid edges are drawn dashed and gray so the
/// αβ-skeleton (solid, colored) stands out, as in the paper's figures.
pub fn to_dot(g: &GreenGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    let _ = writeln!(out, "  n{} [label=\"a\", shape=box, style=bold];", g.a().0);
    let _ = writeln!(out, "  n{} [label=\"b\", shape=box, style=bold];", g.b().0);
    for (l, x, y) in g.edges() {
        let style = match l {
            Label::Grid(_) => "style=dashed, color=gray50, fontcolor=gray50",
            Label::Empty => "color=black, penwidth=2",
            Label::Alpha => "color=forestgreen, penwidth=2",
            Label::Beta0 | Label::Beta1 => "color=forestgreen",
            Label::Eta0 | Label::Eta1 | Label::Eta11 => "color=steelblue",
            Label::Gamma0 | Label::Gamma1 | Label::Omega0 => "color=darkorange",
            Label::Sym { .. } => "color=purple",
            Label::Reserved3 | Label::Reserved4 => "color=red",
        };
        let _ = writeln!(out, "  n{} -> n{} [label=\"{l}\", {style}];", x.0, y.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::LabelSpace;
    use std::sync::Arc;

    #[test]
    fn dot_contains_all_edges_and_marks_constants() {
        let space = Arc::new(LabelSpace::new([Label::Alpha, Label::Beta1]));
        let mut g = GreenGraph::di(Arc::clone(&space));
        let c = g.fresh_node();
        g.add_edge(Label::Alpha, g.a(), c);
        g.add_edge(Label::Beta1, c, g.b());
        let dot = to_dot(&g, "test");
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("α"));
    }

    #[test]
    fn grid_edges_are_dashed() {
        let mut labels = vec![Label::Beta0];
        labels.extend(Label::all_grid_labels());
        let space = Arc::new(LabelSpace::new(labels));
        let mut g = GreenGraph::empty(Arc::clone(&space));
        let x = g.fresh_node();
        let y = g.fresh_node();
        g.add_edge(Label::ONE, x, y);
        let dot = to_dot(&g, "grid");
        assert!(dot.contains("style=dashed"));
    }
}
