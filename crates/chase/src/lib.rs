//! # cqfd-chase — tuple-generating dependencies and the lazy chase
//!
//! Implements §II.B–C of the paper:
//!
//! * [`Tgd`] — a tuple-generating dependency
//!   `∀x̄,ȳ [Φ(x̄,ȳ) ⇒ ∃z̄ Ψ(z̄,ȳ)]`, viewed (as the paper insists) as a
//!   *procedure* acting on a structure;
//! * [`ChaseEngine`] — the stage-indexed **lazy** chase
//!   `chase₀ ⊆ chase₁ ⊆ …` with the paper's exact stage semantics: at stage
//!   `i+1`, triggers are enumerated over the atoms of stage `i` (a frozen
//!   snapshot), while the "already satisfied" check (condition ­) runs
//!   against the live, growing structure;
//! * fixpoint detection, budgets, per-stage accounting, and model checking
//!   (`D |= T` ⇔ no active trigger).
//!
//! The chase's universality (the textbook fact \[JK82\] used in §VII Step 2 —
//! every model of `T` containing `D` receives a homomorphism from
//! `chase(T, D)`) is exercised through
//! [`cqfd_core::structure_homomorphism`]; see the tests.
//!
//! ```
//! use cqfd_chase::{ChaseBudget, ChaseEngine, Tgd};
//! use cqfd_core::{Atom, Signature, Structure, Term, Var};
//! use std::sync::Arc;
//!
//! let mut sig = Signature::new();
//! let r = sig.add_predicate("R", 2);
//! let s = sig.add_predicate("S", 2);
//! let sig = Arc::new(sig);
//!
//! // R(x, y) ⇒ ∃z S(y, z)
//! let v = |i| Term::Var(Var(i));
//! let tgd = Tgd::new_unchecked(
//!     "t",
//!     vec![Atom::new(r, vec![v(0), v(1)])],
//!     vec![Atom::new(s, vec![v(1), v(2)])],
//! );
//! let engine = ChaseEngine::new(vec![tgd]);
//!
//! let mut d = Structure::new(Arc::clone(&sig));
//! let (a, b) = (d.fresh_node(), d.fresh_node());
//! d.add(r, vec![a, b]);
//! assert!(!engine.is_model(&d));
//!
//! let run = engine.chase(&d, &ChaseBudget::default());
//! assert!(run.reached_fixpoint());
//! assert!(engine.is_model(&run.structure));
//! assert_eq!(run.structure.atom_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod termination;
pub mod tgd;

pub use engine::{
    ChaseBudget, ChaseEngine, ChaseHooks, ChaseOutcome, ChaseRun, CheckpointFn, Firing,
    ResumePoint, StageInfo, Strategy,
};
pub use termination::{PredPos, Termination};
pub use tgd::Tgd;
