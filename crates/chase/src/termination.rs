//! Static chase-termination analysis: **weak acyclicity** over the
//! position graph (Fagin–Kolaitis–Miller–Popa).
//!
//! The position graph of a TGD set has one node per *position* `(P, i)` —
//! the `i`-th argument slot of predicate `P` — and, for every TGD and every
//! frontier variable `y` occurring in the body at position `(P, i)`:
//!
//! * a **normal** edge `(P, i) → (Q, j)` for every occurrence of `y` in the
//!   head at `(Q, j)` (the value propagates unchanged), and
//! * a **special** edge `(P, i) → (Q, j)` for every position `(Q, j)` of an
//!   *existential* head variable (a fresh null is created whose existence
//!   depends on the value at `(P, i)`).
//!
//! A TGD set is **weakly acyclic** iff no cycle of the position graph
//! contains a special edge; weakly acyclic sets have a terminating chase
//! from every finite instance, with a polynomial stage bound. The converse
//! fails, so the negative verdict is [`Termination::Unknown`], not
//! "diverges" — it carries the offending cycle as a witness for
//! diagnostics.

use crate::tgd::Tgd;
use cqfd_core::{PredId, Signature, Term, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A position `(P, i)`: argument slot `pos` of predicate `pred`. The nodes
/// of the position graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredPos {
    /// The predicate.
    pub pred: PredId,
    /// The argument slot, 0-based.
    pub pos: usize,
}

impl PredPos {
    /// Renders as `Name[pos]` using the signature's predicate names.
    pub fn display_with(&self, sig: &Signature) -> String {
        format!("{}[{}]", sig.pred_name(self.pred), self.pos)
    }
}

/// The verdict of the weak-acyclicity test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// No cycle of the position graph contains a special edge: the chase
    /// terminates from every finite instance.
    WeaklyAcyclic,
    /// Some cycle contains a special edge. The chase *may* still terminate
    /// (weak acyclicity is sufficient, not necessary), so this is
    /// "unknown", not "diverges".
    Unknown {
        /// A witness cycle through a special edge: a position sequence
        /// `p₀ → p₁ → … → p₀` where the first edge (`p₀ → p₁`) is special.
        /// The closing position `p₀` is repeated at the end.
        cycle: Vec<PredPos>,
    },
}

impl Termination {
    /// Runs the weak-acyclicity test on a TGD set.
    ///
    /// Builds the position graph, computes its strongly connected
    /// components (iterative Tarjan — the graph can be deep), and reports
    /// `Unknown` iff some special edge has both endpoints in one SCC; the
    /// witness cycle is recovered by a BFS inside that SCC. Deterministic:
    /// the same TGD list always yields the same verdict and witness.
    pub fn analyze(tgds: &[Tgd]) -> Termination {
        let g = PositionGraph::build(tgds);
        g.verdict()
    }

    /// Is the set certified weakly acyclic?
    pub fn is_weakly_acyclic(&self) -> bool {
        matches!(self, Termination::WeaklyAcyclic)
    }

    /// A stable lowercase name: `weakly-acyclic` or `unknown`. Used as the
    /// `termination=` note on chase runs and job results.
    pub fn name(&self) -> &'static str {
        match self {
            Termination::WeaklyAcyclic => "weakly-acyclic",
            Termination::Unknown { .. } => "unknown",
        }
    }

    /// The witness cycle, if the verdict is `Unknown`.
    pub fn cycle(&self) -> Option<&[PredPos]> {
        match self {
            Termination::WeaklyAcyclic => None,
            Termination::Unknown { cycle } => Some(cycle),
        }
    }

    /// Renders the witness cycle as `R[1] ~> S[0] -> R[1]` (special edges
    /// as `~>`, normal edges as `->`); empty string when weakly acyclic.
    pub fn display_cycle(&self, sig: &Signature) -> String {
        let Some(cycle) = self.cycle() else {
            return String::new();
        };
        let mut out = String::new();
        for (i, p) in cycle.iter().enumerate() {
            if i == 1 {
                out.push_str(" ~> ");
            } else if i > 1 {
                out.push_str(" -> ");
            }
            out.push_str(&p.display_with(sig));
        }
        out
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An edge of the position graph, by node index.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    special: bool,
}

/// The position graph over dense node indices, with a deterministic
/// node-numbering (sorted `(pred, pos)` order via `BTreeMap`).
struct PositionGraph {
    nodes: Vec<PredPos>,
    adj: Vec<Vec<Edge>>,
}

impl PositionGraph {
    fn build(tgds: &[Tgd]) -> PositionGraph {
        // Collect every position that carries a variable anywhere.
        let mut index: BTreeMap<PredPos, usize> = BTreeMap::new();
        let positions_of = |atoms: &[cqfd_core::Atom<Term>]| {
            let mut out: Vec<(Var, PredPos)> = Vec::new();
            for atom in atoms {
                for (pos, t) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        out.push((
                            *v,
                            PredPos {
                                pred: atom.pred,
                                pos,
                            },
                        ));
                    }
                }
            }
            out
        };
        // Variable occurrences of one TGD: body positions, head positions.
        type VarPositions = Vec<(Var, PredPos)>;
        let mut tgd_positions: Vec<(VarPositions, VarPositions)> = Vec::new();
        for tgd in tgds {
            let body = positions_of(tgd.body());
            let head = positions_of(tgd.head());
            for (_, p) in body.iter().chain(head.iter()) {
                let next = index.len();
                index.entry(*p).or_insert(next);
            }
            tgd_positions.push((body, head));
        }
        let mut nodes: Vec<PredPos> = vec![
            PredPos {
                pred: PredId(0),
                pos: 0
            };
            index.len()
        ];
        for (p, i) in &index {
            nodes[*i] = *p;
        }
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (tgd, (body, head)) in tgds.iter().zip(&tgd_positions) {
            for y in tgd.frontier() {
                for (bv, bp) in body {
                    if bv != y {
                        continue;
                    }
                    let from = index[bp];
                    // Normal edges: every head occurrence of y.
                    for (hv, hp) in head {
                        if hv == y {
                            adj[from].push(Edge {
                                to: index[hp],
                                special: false,
                            });
                        }
                    }
                    // Special edges: every position of every existential.
                    for (hv, hp) in head {
                        if tgd.existential().contains(hv) {
                            adj[from].push(Edge {
                                to: index[hp],
                                special: true,
                            });
                        }
                    }
                }
            }
        }
        PositionGraph { nodes, adj }
    }

    fn verdict(&self) -> Termination {
        let scc = self.sccs();
        // First special edge (in node order) inside one SCC loses.
        for (from, edges) in self.adj.iter().enumerate() {
            for e in edges {
                if e.special && scc[from] == scc[e.to] {
                    return Termination::Unknown {
                        cycle: self.witness(from, e.to, &scc),
                    };
                }
            }
        }
        Termination::WeaklyAcyclic
    }

    /// Iterative Tarjan SCC; returns the component id of each node.
    fn sccs(&self) -> Vec<usize> {
        const UNSET: usize = usize::MAX;
        let n = self.nodes.len();
        let mut comp = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut disc = vec![UNSET; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_disc = 0usize;
        let mut next_comp = 0usize;
        // Explicit DFS frames: (node, next child index).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if disc[root] != UNSET {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child == 0 {
                    disc[v] = next_disc;
                    low[v] = next_disc;
                    next_disc += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *child < self.adj[v].len() {
                    let w = self.adj[v][*child].to;
                    *child += 1;
                    if disc[w] == UNSET {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == disc[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// A shortest path `to → … → from` inside the SCC, prefixed with
    /// `from` (the special edge's source) so the rendered witness reads
    /// `from ~> to -> … -> from`.
    fn witness(&self, from: usize, to: usize, scc: &[usize]) -> Vec<PredPos> {
        let c = scc[from];
        let mut prev: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(to);
        let mut seen = vec![false; self.nodes.len()];
        seen[to] = true;
        while let Some(v) = queue.pop_front() {
            if v == from {
                break;
            }
            for e in &self.adj[v] {
                if scc[e.to] == c && !seen[e.to] {
                    seen[e.to] = true;
                    prev[e.to] = Some(v);
                    queue.push_back(e.to);
                }
            }
        }
        // `prev` points from a node back toward `to` along BFS discovery,
        // so following prev links from `from` reads off the path in
        // reverse edge order: from, …, to. Reversed, that is the forward
        // path to → … → from; prefix the special edge's source.
        let mut chain = vec![from];
        let mut cur = from;
        while cur != to {
            cur = prev[cur].expect("SCC path must exist");
            chain.push(cur);
        }
        chain.reverse(); // to, ..., from
        let mut out = vec![from];
        out.extend(chain);
        out.iter().map(|&i| self.nodes[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::{Atom, Signature};
    use std::sync::Arc;

    fn sig_rs() -> Arc<Signature> {
        let mut sig = Signature::new();
        sig.add_predicate("R", 2);
        sig.add_predicate("S", 2);
        Arc::new(sig)
    }

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // R(x,y) -> S(y,x): no existentials at all.
        let t = Tgd::new_unchecked(
            "t",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(1), v(0)])],
        );
        assert_eq!(Termination::analyze(&[t]), Termination::WeaklyAcyclic);
    }

    #[test]
    fn acyclic_existential_is_weakly_acyclic() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // R(x,y) -> ∃z S(y,z): special edges into S, but no path back to R.
        let t = Tgd::new_unchecked(
            "t",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(1), v(2)])],
        );
        let verdict = Termination::analyze(&[t]);
        assert!(verdict.is_weakly_acyclic(), "{verdict:?}");
    }

    #[test]
    fn self_feeding_existential_is_unknown() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        // R(x,y) -> ∃z R(y,z): special edge R[1] ~> R[1] via the cycle.
        let t = Tgd::new_unchecked(
            "t",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(1), v(2)])],
        );
        let verdict = Termination::analyze(&[t]);
        assert!(!verdict.is_weakly_acyclic());
        let cycle = verdict.cycle().unwrap();
        assert!(cycle.len() >= 2);
        assert_eq!(cycle.first(), cycle.last());
        let rendered = verdict.display_cycle(&sig);
        assert!(rendered.contains("~>"), "{rendered}");
        assert!(rendered.contains("R["), "{rendered}");
    }

    #[test]
    fn two_rule_feeding_pair_is_unknown() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // The edge_cases.rs budget pair: R(x,y) -> ∃z S(y,z),
        // S(x,y) -> ∃z R(y,z). Diverges; must not be certified.
        let t1 = Tgd::new_unchecked(
            "t1",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(1), v(2)])],
        );
        let t2 = Tgd::new_unchecked(
            "t2",
            vec![Atom::new(s, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(1), v(2)])],
        );
        let verdict = Termination::analyze(&[t1, t2]);
        assert!(!verdict.is_weakly_acyclic());
        // The witness starts and ends at the special edge's source.
        let cycle = verdict.cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn normal_cycle_without_special_edge_is_weakly_acyclic() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // R(x,y) -> S(x,y); S(x,y) -> R(x,y): a cycle, but all edges
        // normal — terminates (copies values around, creates nothing).
        let t1 = Tgd::new_unchecked(
            "t1",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(0), v(1)])],
        );
        let t2 = Tgd::new_unchecked(
            "t2",
            vec![Atom::new(s, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(0), v(1)])],
        );
        assert_eq!(Termination::analyze(&[t1, t2]), Termination::WeaklyAcyclic);
    }

    #[test]
    fn empty_set_is_weakly_acyclic() {
        assert_eq!(Termination::analyze(&[]), Termination::WeaklyAcyclic);
    }

    #[test]
    fn verdict_is_deterministic() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked(
            "t",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(1), v(2)])],
        );
        let a = Termination::analyze(std::slice::from_ref(&t));
        let b = Termination::analyze(&[t]);
        assert_eq!(a, b);
    }
}
