//! Tuple-generating dependencies.

use cqfd_core::{Atom, CoreError, Signature, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-generating dependency `∀x̄,ȳ [Φ(x̄,ȳ) ⇒ ∃z̄ Ψ(z̄,ȳ)]` (paper §II.B).
///
/// * `body` is `Φ`; its variables are `x̄ ∪ ȳ`.
/// * `head` is `Ψ`; its variables are `z̄ ∪ ȳ`.
/// * The **frontier** `ȳ` is the set of variables shared between body and
///   head — "the interface between the new part of the structure … and the
///   old structure" (paper §II.B).
/// * Head variables outside the body (`z̄`) are existential: each active
///   application invents fresh nodes for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    name: String,
    body: Vec<Atom<Term>>,
    head: Vec<Atom<Term>>,
    frontier: Vec<Var>,
    existential: Vec<Var>,
}

impl Tgd {
    /// Builds a TGD, validating arities against the signature and computing
    /// the frontier / existential-variable split.
    pub fn try_new(
        sig: &Signature,
        name: impl Into<String>,
        body: Vec<Atom<Term>>,
        head: Vec<Atom<Term>>,
    ) -> Result<Self, CoreError> {
        for a in body.iter().chain(head.iter()) {
            let expected = sig.arity(a.pred);
            if a.args.len() != expected {
                return Err(CoreError::ArityMismatch {
                    pred: sig.pred_name(a.pred).to_owned(),
                    expected,
                    got: a.args.len(),
                });
            }
        }
        Ok(Self::new_unchecked(name, body, head))
    }

    /// Builds a TGD without arity validation (for generated rules that are
    /// correct by construction).
    pub fn new_unchecked(
        name: impl Into<String>,
        body: Vec<Atom<Term>>,
        head: Vec<Atom<Term>>,
    ) -> Self {
        let body_vars: BTreeSet<Var> = body.iter().flat_map(|a| a.vars()).collect();
        let head_vars: BTreeSet<Var> = head.iter().flat_map(|a| a.vars()).collect();
        let frontier: Vec<Var> = head_vars.intersection(&body_vars).copied().collect();
        let existential: Vec<Var> = head_vars.difference(&body_vars).copied().collect();
        Tgd {
            name: name.into(),
            body,
            head,
            frontier,
            existential,
        }
    }

    /// The TGD's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The body `Φ`.
    pub fn body(&self) -> &[Atom<Term>] {
        &self.body
    }

    /// The head `Ψ`.
    pub fn head(&self) -> &[Atom<Term>] {
        &self.head
    }

    /// The frontier variables `ȳ` (shared body/head), sorted.
    pub fn frontier(&self) -> &[Var] {
        &self.frontier
    }

    /// The existential head variables `z̄`, sorted.
    pub fn existential(&self) -> &[Var] {
        &self.existential
    }

    /// A TGD is **full** if it has no existential head variables.
    pub fn is_full(&self) -> bool {
        self.existential.is_empty()
    }

    /// Renders the TGD over its signature.
    pub fn display_with<'a>(&'a self, sig: &'a Signature) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Tgd, &'a Signature);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let namer = |v: Var| format!("x{}", v.0);
                for (i, a) in self.0.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", a.display_with(self.1, &namer))?;
                }
                write!(f, " ⇒ ")?;
                if !self.0.existential.is_empty() {
                    write!(f, "∃")?;
                    for v in &self.0.existential {
                        write!(f, " x{}", v.0)?;
                    }
                    write!(f, ". ")?;
                }
                for (i, a) in self.0.head.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", a.display_with(self.1, &namer))?;
                }
                Ok(())
            }
        }
        D(self, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::PredId;

    fn atom(p: u32, vars: &[u32]) -> Atom<Term> {
        Atom::new(PredId(p), vars.iter().map(|&v| Term::Var(Var(v))).collect())
    }

    #[test]
    fn frontier_and_existentials() {
        // R(x,y) => exists z. S(y,z)
        let t = Tgd::new_unchecked("t", vec![atom(0, &[0, 1])], vec![atom(1, &[1, 2])]);
        assert_eq!(t.frontier(), &[Var(1)]);
        assert_eq!(t.existential(), &[Var(2)]);
        assert!(!t.is_full());
    }

    #[test]
    fn full_tgd() {
        let t = Tgd::new_unchecked("t", vec![atom(0, &[0, 1])], vec![atom(1, &[1, 0])]);
        assert!(t.is_full());
        assert_eq!(t.frontier().len(), 2);
    }

    #[test]
    fn arity_validation() {
        let mut sig = Signature::new();
        sig.add_predicate("R", 2);
        let bad = Tgd::try_new(
            &sig,
            "bad",
            vec![Atom::new(PredId(0), vec![Term::Var(Var(0))])],
            vec![],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn display_renders() {
        let mut sig = Signature::new();
        sig.add_predicate("R", 2);
        sig.add_predicate("S", 2);
        let t = Tgd::new_unchecked("t", vec![atom(0, &[0, 1])], vec![atom(1, &[1, 2])]);
        let s = format!("{}", t.display_with(&sig));
        assert!(s.contains("R(x0,x1)"));
        assert!(s.contains("∃"));
    }
}
