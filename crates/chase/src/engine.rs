//! The stage-indexed lazy chase (paper §II.C).

use crate::termination::Termination;
use crate::tgd::Tgd;
use cqfd_core::{
    add_hom_nodes_explored, exists_homomorphism_with, hom_nodes_explored, publish_hom_metrics,
    AnyPlan, Binding, CancelToken, HomEngine, HomPlan, Node, Structure, Term, VarMap,
};
use cqfd_obs::{span, Counter, Histogram, Stopwatch, Unit};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resource limits for a chase run.
///
/// The chase of this paper is often deliberately infinite
/// (`chase(T∞, DI)` is an infinite path, §VII Step 1), so budgets are part
/// of the API, not an afterthought: a run reports *why* it stopped. Besides
/// the counting limits, a budget can carry a cooperative [`CancelToken`]
/// and a wall-clock deadline — the hooks the `cqfd-service` job pool uses
/// to stop runaway jobs without killing worker threads.
#[derive(Debug, Clone)]
pub struct ChaseBudget {
    /// Maximum number of stages (`chase_i` levels) to compute.
    pub max_stages: usize,
    /// Stop once the structure holds at least this many atoms.
    pub max_atoms: usize,
    /// Stop once the structure holds at least this many nodes.
    pub max_nodes: usize,
    /// Cooperative cancellation token, polled at stage and trigger
    /// boundaries. Inert by default.
    pub cancel: CancelToken,
    /// Absolute wall-clock deadline; the run stops as [`ChaseOutcome::Cancelled`]
    /// once it passes. `None` by default.
    pub deadline: Option<Instant>,
    /// Worker threads for the per-stage trigger-enumeration phase. `1`
    /// (the default) runs fully sequentially. The chase result is
    /// byte-identical at every setting: enumeration slices are merged back
    /// in deterministic `(TGD index, slice order)` order and trigger
    /// *application* is always sequential — this knob only changes
    /// wall-clock time.
    pub threads: usize,
    /// Which homomorphism-search engine enumerates triggers and answers
    /// head probes ([`HomEngine::Wco`] by default). Every stage's frontier
    /// is canonicalised before application, so the chase result is
    /// byte-identical under either engine — like `threads`, this knob only
    /// changes how fast the answer arrives (and the search-node counts).
    pub hom_engine: HomEngine,
}

/// Budgets compare by their declared *limits*; the token, deadline,
/// thread count and hom engine are runtime controls, not part of the
/// budget's identity (none of them can change the result, only how fast
/// it arrives).
impl PartialEq for ChaseBudget {
    fn eq(&self, other: &Self) -> bool {
        self.max_stages == other.max_stages
            && self.max_atoms == other.max_atoms
            && self.max_nodes == other.max_nodes
    }
}

impl Eq for ChaseBudget {}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_stages: 64,
            max_atoms: 1 << 20,
            max_nodes: 1 << 20,
            cancel: CancelToken::inert(),
            deadline: None,
            threads: 1,
            hom_engine: HomEngine::default(),
        }
    }
}

impl ChaseBudget {
    /// A budget bounded only by stage count.
    pub fn stages(max_stages: usize) -> Self {
        ChaseBudget {
            max_stages,
            ..Self::default()
        }
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the number of enumeration worker threads (clamped to ≥ 1).
    /// Purely a wall-clock knob: the chase output is identical at every
    /// setting. The engine does not cap this by the host's core count —
    /// callers that share a machine (the `cqfd-service` pool) apply their
    /// own cap.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the homomorphism-search engine. Purely a performance knob:
    /// frontier canonicalisation makes the chase result byte-identical
    /// under either engine.
    pub fn with_hom_engine(mut self, engine: HomEngine) -> Self {
        self.hom_engine = engine;
        self
    }

    /// Stage ceiling granted to runs whose TGD set is certified
    /// weakly acyclic by [`presized_for`](Self::presized_for).
    pub const PRESIZED_STAGES: usize = 1 << 20;

    /// Pre-sizes the stage budget from a static termination verdict: a
    /// [`Termination::WeaklyAcyclic`] set is guaranteed to reach fixpoint,
    /// so the stage ceiling is lifted to [`Self::PRESIZED_STAGES`] (never
    /// lowered) and the run can only stop at the fixpoint or at the
    /// atom/node size caps, which stay in place as a safety net. An
    /// `Unknown` verdict leaves the budget untouched — the caller's stage
    /// limit is then the only thing bounding a possibly-infinite chase.
    pub fn presized_for(mut self, termination: &Termination) -> Self {
        if termination.is_weakly_acyclic() {
            self.max_stages = self.max_stages.max(Self::PRESIZED_STAGES);
        }
        self
    }

    /// The cooperative stop hook: has the token been cancelled, or the
    /// deadline passed? Polled by the chase at stage and trigger
    /// boundaries; other long loops (creep, counter-example search) poll
    /// the same budget through their own drivers.
    pub fn should_stop(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Why a chase run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// A stage applied no trigger: the structure is a model of the TGDs.
    Fixpoint,
    /// The stage budget ran out with triggers still active.
    StageBudgetExhausted,
    /// The atom/node budget ran out mid-stage.
    SizeBudgetExhausted,
    /// The caller's monitor requested a stop after some stage.
    MonitorStopped,
    /// The budget's cancellation token fired or its deadline passed
    /// ([`ChaseBudget::should_stop`]).
    Cancelled,
}

impl ChaseOutcome {
    /// A stable lowercase name, used as the `outcome` metric label on
    /// `cqfd_chase_runs_total`.
    pub fn name(self) -> &'static str {
        match self {
            ChaseOutcome::Fixpoint => "fixpoint",
            ChaseOutcome::StageBudgetExhausted => "stage_budget",
            ChaseOutcome::SizeBudgetExhausted => "size_budget",
            ChaseOutcome::MonitorStopped => "monitor_stopped",
            ChaseOutcome::Cancelled => "cancelled",
        }
    }
}

/// Pre-registered metric handles for one chase run. Registration (the
/// only locking step) happens once per run; the chase loops then touch
/// plain atomics at stage granularity, or per applied trigger — never per
/// search node.
struct ChaseMeters {
    stage_seconds: Histogram,
    run_seconds: Histogram,
    /// Wall time of the (parallelisable) enumeration phase per stage.
    enumerate_seconds: Histogram,
    /// Wall time of the sequential application phase per stage.
    apply_seconds: Histogram,
    /// Enumeration slices dispatched to parallel workers.
    parallel_tasks: Counter,
    /// Chase stages run (one increment per stage, across all runs).
    stages: Counter,
    /// `(triggers, firings)` per TGD, parallel to `ChaseEngine::tgds`.
    per_rule: Vec<(Counter, Counter)>,
    /// Per TGD, one atoms-added counter per head atom, labelled by the
    /// head atom's predicate (duplicate predicates share a series).
    atoms_per_rule: Vec<Vec<Counter>>,
}

impl ChaseMeters {
    fn new(tgds: &[Tgd], sig: &cqfd_core::Signature) -> Self {
        let reg = cqfd_obs::global();
        ChaseMeters {
            stage_seconds: reg.histogram(
                "cqfd_chase_stage_seconds",
                "Wall time per chase stage.",
                &[],
                Unit::Seconds,
            ),
            run_seconds: reg.histogram(
                "cqfd_chase_run_seconds",
                "Wall time per chase run.",
                &[],
                Unit::Seconds,
            ),
            enumerate_seconds: reg.histogram(
                "cqfd_chase_stage_enumerate_seconds",
                "Wall time of the trigger-enumeration phase per chase stage.",
                &[],
                Unit::Seconds,
            ),
            apply_seconds: reg.histogram(
                "cqfd_chase_stage_apply_seconds",
                "Wall time of the trigger-application phase per chase stage.",
                &[],
                Unit::Seconds,
            ),
            parallel_tasks: reg.counter(
                "cqfd_chase_parallel_tasks_total",
                "Enumeration slices dispatched to parallel chase workers.",
                &[],
            ),
            stages: reg.counter(
                "cqfd_chase_stages_total",
                "Chase stages run, across all runs.",
                &[],
            ),
            atoms_per_rule: tgds
                .iter()
                .map(|t| {
                    t.head()
                        .iter()
                        .map(|a| {
                            reg.counter(
                                "cqfd_chase_atoms_total",
                                "Atoms the chase added, per head predicate.",
                                &[("predicate", sig.pred_name(a.pred))],
                            )
                        })
                        .collect()
                })
                .collect(),
            per_rule: tgds
                .iter()
                .map(|t| {
                    (
                        reg.counter(
                            "cqfd_chase_triggers_total",
                            "Distinct frontier tuples with a body match enumerated, per rule.",
                            &[("rule", t.name())],
                        ),
                        reg.counter(
                            "cqfd_chase_firings_total",
                            "Triggers applied (head instantiated), per rule.",
                            &[("rule", t.name())],
                        ),
                    )
                })
                .collect(),
        }
    }

    fn finish_run(&self, clock: &Stopwatch, outcome: ChaseOutcome) {
        self.run_seconds.observe(clock.elapsed_ns());
        cqfd_obs::global()
            .counter(
                "cqfd_chase_runs_total",
                "Completed chase runs, by stop reason.",
                &[("outcome", outcome.name())],
            )
            .inc();
    }
}

/// One applied trigger, recorded when the engine runs with
/// [`ChaseEngine::with_recording`] enabled.
///
/// The assignment is the *full* body match (every body variable, not just
/// the frontier), sorted by variable. Recording the whole match is what
/// makes a trace independently checkable: a verifier can validate the
/// trigger by pure substitution and atom lookup, with no homomorphism
/// search of its own (see `cqfd-cert`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// 1-based stage in which the trigger was applied.
    pub stage: usize,
    /// Index of the TGD into [`ChaseEngine::tgds`].
    pub tgd: usize,
    /// The body match, sorted by variable.
    pub assignment: Vec<(cqfd_core::Var, Node)>,
}

/// Per-stage accounting of a chase run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInfo {
    /// Number of trigger applications performed in this stage.
    pub applications: usize,
    /// Atom count after the stage.
    pub atoms_after: usize,
    /// Node count after the stage.
    pub nodes_after: u32,
}

/// The result of a chase run: the final structure, the per-stage history
/// (`stages[i]` describes `chase_{i+1}`), and the stop reason.
#[derive(Debug, Clone)]
pub struct ChaseRun {
    /// The chased structure (the last computed stage).
    pub structure: Structure,
    /// Stage history; `stages[i]` describes the transition to `chase_{i+1}`.
    pub stages: Vec<StageInfo>,
    /// Why the run stopped.
    pub outcome: ChaseOutcome,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
    /// Homomorphism-search nodes explored during the run (trigger
    /// enumeration *and* head-satisfaction checks), from the thread-local
    /// counter in `cqfd_core::hom`.
    pub hom_nodes: u64,
    /// The applied triggers, in application order — empty unless the
    /// engine ran with [`ChaseEngine::with_recording`] enabled.
    pub firings: Vec<Firing>,
    /// The static termination verdict for the engine's TGD set (computed
    /// once at engine construction). `WeaklyAcyclic` certifies that a
    /// [`ChaseOutcome::StageBudgetExhausted`] stop was a budget problem,
    /// not divergence; surfaced as the `termination=` note on job results.
    pub termination: Termination,
    start_atoms: usize,
    start_nodes: u32,
}

impl ChaseRun {
    /// Number of computed stages (not counting `chase₀` = the start).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total trigger applications across all stages.
    pub fn triggers_fired(&self) -> usize {
        self.stages.iter().map(|s| s.applications).sum()
    }

    /// Did the chase reach a fixpoint (i.e. terminate)?
    pub fn reached_fixpoint(&self) -> bool {
        self.outcome == ChaseOutcome::Fixpoint
    }

    /// Reconstructs the structure `chase_i` for `0 ≤ i ≤ stage_count()`.
    ///
    /// Possible because the chase only ever appends atoms and nodes; the
    /// prefix of the final atom list up to the stage boundary *is* the
    /// stage. Constant-node identities are preserved.
    pub fn stage_structure(&self, i: usize) -> Structure {
        let (atoms, nodes) = if i == 0 {
            (self.start_atoms, self.start_nodes)
        } else {
            let s = self.stages[i - 1];
            (s.atoms_after, s.nodes_after)
        };
        let mut out = Structure::new(std::sync::Arc::clone(self.structure.signature()));
        // Reallocate the same node ids.
        for n in 0..nodes {
            let fresh = out.fresh_node();
            debug_assert_eq!(fresh, Node(n));
        }
        for n in 0..nodes {
            if let Some(c) = self.structure.const_of_node(Node(n)) {
                out.pin_constant(c, Node(n));
            }
        }
        for a in &self.structure.atoms()[..atoms] {
            out.add_atom(a.clone());
        }
        out
    }
}

/// Trigger-enumeration strategy for the chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-enumerate all body matches over the frozen snapshot each stage —
    /// the paper's procedure, verbatim. The default.
    #[default]
    Naive,
    /// Semi-naive (delta-driven): enumerate only matches that use at least
    /// one atom added in the previous stage, seeding each pattern atom on
    /// the delta in turn with earlier atoms restricted to older prefixes
    /// so each match is found exactly once. Sound because trigger
    /// satisfaction is monotone under the chase (once a trigger's head is
    /// witnessed it stays witnessed). Faster on long runs; within a stage
    /// the triggers may be *applied in a different order* than the naive
    /// strategy, so the two chases can produce different (always
    /// hom-equivalent, both universal) structures.
    SemiNaive,
}

/// A stage-boundary snapshot a chase run can resume from: the structure
/// at the boundary plus the completed per-stage history. Produced by
/// replaying a write-ahead stage log (see `cqfd-store`); consumed by
/// [`ChaseEngine::chase_with_hooks`].
///
/// `start_atoms`/`start_nodes` describe the *original* start structure
/// (`chase₀`), not the snapshot — they keep
/// [`ChaseRun::stage_structure`]`(0)` correct on the resumed run.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// The structure at the last completed stage boundary.
    pub structure: Structure,
    /// Per-stage history of the completed prefix.
    pub stages: Vec<StageInfo>,
    /// Recorded firings of the completed prefix (in application order).
    pub firings: Vec<Firing>,
    /// Atom count of the original start structure.
    pub start_atoms: usize,
    /// Node count of the original start structure.
    pub start_nodes: u32,
}

/// Per-stage checkpoint callback: 1-based stage number, the committed
/// stage's [`StageInfo`], and the firings applied in it.
pub type CheckpointFn<'a> = dyn FnMut(usize, &StageInfo, &[Firing]) + 'a;

/// Side channels for a chase run: resume from a stage-boundary snapshot,
/// and/or observe each completed stage as it commits.
///
/// The checkpoint callback fires only for stages the run *continues past*
/// — never for the stage that concludes the run (fixpoint, monitor stop,
/// mid-stage budget stop). A concluding stage may be partial (a phase-B
/// cancellation stops mid-stage), so committing it to a write-ahead log
/// would let a resumed run diverge from an uninterrupted one; the
/// stages that do get checkpointed are always complete.
#[derive(Default)]
pub struct ChaseHooks<'a> {
    /// Resume from this snapshot instead of chasing from the start
    /// structure. Already-completed stages still count against
    /// [`ChaseBudget::max_stages`], so a resumed run stops exactly where
    /// the uninterrupted run would have.
    pub resume: Option<ResumePoint>,
    /// Called after each committed (non-concluding) stage with the
    /// 1-based stage number, its [`StageInfo`], and the firings applied
    /// in that stage (empty unless recording is on).
    pub checkpoint: Option<&'a mut CheckpointFn<'a>>,
}

/// The chase engine: a fixed list of TGDs, applied stage by stage.
#[derive(Debug, Clone)]
pub struct ChaseEngine {
    tgds: Vec<Tgd>,
    strategy: Strategy,
    record: bool,
    termination: Termination,
}

impl ChaseEngine {
    /// Creates an engine over the given dependencies (naive strategy).
    /// Runs the static weak-acyclicity test once, up front; the verdict is
    /// available through [`termination`](Self::termination) and stamped on
    /// every [`ChaseRun`].
    pub fn new(tgds: Vec<Tgd>) -> Self {
        let termination = Termination::analyze(&tgds);
        ChaseEngine {
            tgds,
            strategy: Strategy::Naive,
            record: false,
            termination,
        }
    }

    /// Selects the trigger-enumeration strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables (or disables) recording of applied triggers into
    /// [`ChaseRun::firings`]. Off by default: a trace holds one full
    /// variable assignment per application, which is memory the plain
    /// chase does not need.
    pub fn with_recording(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// The engine's dependencies.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// The static chase-termination verdict for the engine's TGD set.
    pub fn termination(&self) -> &Termination {
        &self.termination
    }

    /// Runs the chase from `start` under `budget`.
    pub fn chase(&self, start: &Structure, budget: &ChaseBudget) -> ChaseRun {
        self.chase_with_monitor(start, budget, |_, _| false)
    }

    /// Runs the chase, calling `monitor(structure, stage)` after every stage;
    /// a `true` return stops the run with [`ChaseOutcome::MonitorStopped`].
    ///
    /// The monitor is the hook used by the determinacy oracle of §IV: after
    /// each stage it checks whether `red(Q0)` has become true.
    pub fn chase_with_monitor(
        &self,
        start: &Structure,
        budget: &ChaseBudget,
        monitor: impl FnMut(&Structure, usize) -> bool,
    ) -> ChaseRun {
        self.chase_with_hooks(start, budget, monitor, ChaseHooks::default())
    }

    /// [`chase_with_monitor`](Self::chase_with_monitor) plus side
    /// channels: resume from a [`ResumePoint`] and/or observe committed
    /// stages through a checkpoint callback (see [`ChaseHooks`]).
    ///
    /// A resumed run is byte-identical to the uninterrupted run — same
    /// stages, firings, structure, and stop reason — because the chase is
    /// deterministic stage by stage and the resume point sits exactly at
    /// a stage boundary. (Only [`ChaseRun::hom_nodes`] differs: the
    /// resumed run skips the prefix's enumeration work.)
    pub fn chase_with_hooks(
        &self,
        start: &Structure,
        budget: &ChaseBudget,
        mut monitor: impl FnMut(&Structure, usize) -> bool,
        mut hooks: ChaseHooks<'_>,
    ) -> ChaseRun {
        let clock = Stopwatch::start();
        let _run_span = span!(
            "chase.run",
            tgds = self.tgds.len(),
            start_atoms = start.atom_count()
        );
        let meters = ChaseMeters::new(&self.tgds, start.signature());
        let hom_start = hom_nodes_explored();
        let (mut d, mut run) = match hooks.resume.take() {
            Some(rp) => {
                let run = ChaseRun {
                    start_atoms: rp.start_atoms,
                    start_nodes: rp.start_nodes,
                    structure: Structure::new(std::sync::Arc::clone(rp.structure.signature())),
                    stages: rp.stages,
                    outcome: ChaseOutcome::StageBudgetExhausted,
                    elapsed: Duration::ZERO,
                    hom_nodes: 0,
                    firings: rp.firings,
                    termination: self.termination.clone(),
                };
                (rp.structure, run)
            }
            None => {
                let d = start.clone();
                let run = ChaseRun {
                    start_atoms: d.atom_count(),
                    start_nodes: d.node_count(),
                    structure: Structure::new(std::sync::Arc::clone(d.signature())),
                    stages: Vec::new(),
                    outcome: ChaseOutcome::StageBudgetExhausted,
                    elapsed: Duration::ZERO,
                    hom_nodes: 0,
                    firings: Vec::new(),
                    termination: self.termination.clone(),
                };
                (d, run)
            }
        };
        let finish = |mut run: ChaseRun, d: Structure| {
            run.structure = d;
            run.elapsed = clock.elapsed();
            run.hom_nodes = hom_nodes_explored() - hom_start;
            meters.finish_run(&clock, run.outcome);
            publish_hom_metrics();
            run
        };
        // Re-checked even on resume: the checkpointed prefix only holds
        // stages the original run continued past, but the log is external
        // input — never trust it to imply the monitor stayed quiet.
        if monitor(&d, run.stages.len()) {
            run.outcome = ChaseOutcome::MonitorStopped;
            return finish(run, d);
        }
        // Snapshot boundary of the previous stage (what the semi-naive
        // delta is measured against): for stage k+1 it is the atom count
        // at *entry* of stage k.
        let done = run.stages.len();
        let mut prev_frozen: u32 = match done {
            0 => 0,
            1 => run.start_atoms as u32,
            k => run.stages[k - 2].atoms_after as u32,
        };
        // Completed stages count against the budget, so a resumed run
        // stops exactly where the uninterrupted run would.
        for _stage in 0..budget.max_stages.saturating_sub(done) {
            if budget.should_stop() {
                run.outcome = ChaseOutcome::Cancelled;
                break;
            }
            let frozen = d.atom_count() as u32;
            let stage = run.stages.len() + 1;
            let firings_before = run.firings.len();
            let (applications, early_stop) = {
                let _stage_span = span!("chase.stage", stage = stage);
                let stage_clock = Stopwatch::start();
                let res = self.run_stage(
                    &mut d,
                    budget,
                    prev_frozen,
                    stage,
                    &mut run.firings,
                    &meters,
                );
                meters.stage_seconds.observe(stage_clock.elapsed_ns());
                meters.stages.inc();
                res
            };
            prev_frozen = frozen;
            run.stages.push(StageInfo {
                applications,
                atoms_after: d.atom_count(),
                nodes_after: d.node_count(),
            });
            // A fixpoint or a monitor hit is a *result* and outranks a
            // simultaneous budget stop; budget stops only say "gave up".
            if applications == 0 && early_stop.is_none() {
                run.outcome = ChaseOutcome::Fixpoint;
                // The empty stage proves the fixpoint; it is still recorded.
                break;
            }
            if monitor(&d, run.stages.len()) {
                run.outcome = ChaseOutcome::MonitorStopped;
                break;
            }
            if let Some(reason) = early_stop {
                run.outcome = reason;
                break;
            }
            // The run continues past this stage: it is complete, commit it.
            if let Some(cb) = hooks.checkpoint.as_mut() {
                let info = run.stages[run.stages.len() - 1];
                cb(run.stages.len(), &info, &run.firings[firings_before..]);
            }
        }
        finish(run, d)
    }

    /// Replays recorded firings from `start`, reproducing the exact node
    /// allocation of the original run: each firing's assignment is the
    /// full body match, and [`apply`](Self::apply) allocates fresh nodes
    /// for the existentials in the same sorted order the chase did. This
    /// is how a write-ahead stage log is turned back into the structure
    /// at its last committed boundary.
    pub fn replay(&self, start: &Structure, firings: &[Firing]) -> Structure {
        let mut d = start.clone();
        for f in firings {
            let fixed: VarMap = f.assignment.iter().copied().collect();
            self.apply(&self.tgds[f.tgd], &fixed, &mut d);
        }
        d
    }

    /// One chase stage (the `forall pairs T, b̄ …` loop of §II.C), in two
    /// phases. **Phase A** enumerates the distinct frontier tuples b̄ with a
    /// body match in the frozen snapshot, one slice per TGD (naive) or per
    /// `(TGD, delta-seed-position)` (semi-naive); slices are independent
    /// read-only searches, so with `budget.threads > 1` they fan out over a
    /// scoped worker pool and merge back in deterministic `(TGD, slice)`
    /// order. Head satisfaction is pre-checked against the frozen snapshot
    /// in the same pass. **Phase B** walks the merged frontiers in order
    /// and applies the active triggers sequentially (application mutates
    /// `d`), re-checking non-pre-satisfied heads against the live `D`.
    ///
    /// Returns `(applications, early_stop)` where `early_stop` reports a
    /// mid-stage budget violation ([`ChaseOutcome::SizeBudgetExhausted`] or
    /// [`ChaseOutcome::Cancelled`]), if any. A cancellation during phase A
    /// applies nothing: the structure is left exactly at the previous
    /// stage boundary, so the run is a valid chase prefix.
    ///
    /// `prev_frozen` is the snapshot boundary of the previous stage; the
    /// semi-naive strategy only enumerates matches touching the delta
    /// `[prev_frozen, frozen)`.
    fn run_stage(
        &self,
        d: &mut Structure,
        budget: &ChaseBudget,
        prev_frozen: u32,
        stage: usize,
        firings: &mut Vec<Firing>,
        meters: &ChaseMeters,
    ) -> (usize, Option<ChaseOutcome>) {
        let frozen = d.atom_count() as u32;
        let enum_clock = Stopwatch::start();
        let merged = self.enumerate_stage(d, budget, prev_frozen, frozen, meters);
        meters.enumerate_seconds.observe(enum_clock.elapsed_ns());
        let Some(merged) = merged else {
            return (0, Some(ChaseOutcome::Cancelled));
        };
        let apply_clock = Stopwatch::start();
        let res = self.apply_stage(d, budget, stage, merged, firings, meters);
        meters.apply_seconds.observe(apply_clock.elapsed_ns());
        res
    }

    /// Phase A: enumerates every slice of the stage against the frozen
    /// snapshot and merges the results per TGD, deduplicated, in `(TGD,
    /// slice, discovery)` order. Returns `None` if the budget's stop hook
    /// fired mid-enumeration (nothing was applied).
    fn enumerate_stage(
        &self,
        d: &Structure,
        budget: &ChaseBudget,
        prev_frozen: u32,
        frozen: u32,
        meters: &ChaseMeters,
    ) -> Option<Vec<Vec<Frontier>>> {
        let slices: Vec<Slice> = match self.strategy {
            Strategy::Naive => (0..self.tgds.len())
                .map(|ti| Slice { ti, seed_pos: None })
                .collect(),
            Strategy::SemiNaive => self
                .tgds
                .iter()
                .enumerate()
                .flat_map(|(ti, t)| {
                    (0..t.body().len()).map(move |k| Slice {
                        ti,
                        seed_pos: Some(k),
                    })
                })
                .collect(),
        };
        let abort = AtomicBool::new(false);
        let workers = budget.threads.max(1).min(slices.len().max(1));
        let mut results: Vec<Option<Vec<Frontier>>> = Vec::with_capacity(slices.len());
        results.resize_with(slices.len(), || None);
        if workers <= 1 {
            for (i, slice) in slices.iter().enumerate() {
                if budget.should_stop() {
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
                let fr = self.enumerate_slice(d, budget, prev_frozen, frozen, *slice, &abort);
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                results[i] = Some(fr);
            }
        } else {
            meters.parallel_tasks.add(slices.len() as u64);
            let next = AtomicUsize::new(0);
            let target: &Structure = d;
            let collected: Vec<WorkerYield> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            // Fresh scoped thread: its thread-local hom
                            // counters start at zero; publish its metric
                            // work itself and report the node delta so the
                            // coordinating thread can keep `ChaseRun::
                            // hom_nodes` whole-run accurate.
                            let hom0 = hom_nodes_explored();
                            let mut local: Vec<(usize, Vec<Frontier>)> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= slices.len() || abort.load(Ordering::Relaxed) {
                                    break;
                                }
                                let fr = self.enumerate_slice(
                                    target,
                                    budget,
                                    prev_frozen,
                                    frozen,
                                    slices[i],
                                    &abort,
                                );
                                if abort.load(Ordering::Relaxed) {
                                    break;
                                }
                                local.push((i, fr));
                            }
                            publish_hom_metrics();
                            (local, hom_nodes_explored() - hom0)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chase enumeration worker panicked"))
                    .collect()
            });
            for (local, nodes) in collected {
                add_hom_nodes_explored(nodes);
                for (i, fr) in local {
                    results[i] = Some(fr);
                }
            }
        }
        if abort.load(Ordering::Relaxed) || budget.should_stop() {
            return None;
        }
        // Merge back per TGD. Per-slice results are already deduplicated;
        // cross-slice duplicates (a match whose atoms span several delta
        // positions) keep the lexicographically least recorded assignment.
        // Each TGD's merged frontier is then **canonicalised**: sorted by
        // frontier tuple. Tuples are distinct after dedup, so the sorted
        // sequence — and with it application order, fresh-node allocation,
        // recorded firings, every downstream artifact — depends only on
        // the *set* of matches, never on enumeration order. This is what
        // makes the chase byte-identical across hom engines (and, as
        // before, across thread counts).
        let mut merged: Vec<Vec<Frontier>> = (0..self.tgds.len()).map(|_| Vec::new()).collect();
        let mut slices_per_tgd = vec![0usize; self.tgds.len()];
        for s in &slices {
            slices_per_tgd[s.ti] += 1;
        }
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut cur = usize::MAX;
        for (slice, res) in slices.iter().zip(results) {
            let frontiers = res.expect("uncancelled stage enumerated every slice");
            if slices_per_tgd[slice.ti] == 1 {
                merged[slice.ti] = frontiers;
                continue;
            }
            if slice.ti != cur {
                buckets.clear();
                cur = slice.ti;
            }
            let dst = &mut merged[slice.ti];
            for f in frontiers {
                let bucket = buckets.entry(hash_tuple(&f.tuple)).or_default();
                if let Some(&j) = bucket.iter().find(|&&j| dst[j as usize].tuple == f.tuple) {
                    if let (Some(cur), Some(cand)) = (dst[j as usize].full_map.as_mut(), f.full_map)
                    {
                        if cand < *cur {
                            *cur = cand;
                        }
                    }
                    continue;
                }
                bucket.push(dst.len() as u32);
                dst.push(f);
            }
        }
        for dst in &mut merged {
            dst.sort_unstable_by(|a, b| a.tuple.cmp(&b.tuple));
        }
        Some(merged)
    }

    /// Enumerates one slice: the distinct frontier tuples of one TGD
    /// (naive) or of one `(TGD, delta-seed-position)` (semi-naive) against
    /// the frozen snapshot, each with its frozen-snapshot head pre-check.
    /// Read-only on `d`; safe to run from any worker thread. Sets `abort`
    /// and returns early (with a result that must be discarded) when the
    /// budget's stop hook fires.
    fn enumerate_slice(
        &self,
        d: &Structure,
        budget: &ChaseBudget,
        prev_frozen: u32,
        frozen: u32,
        slice: Slice,
        abort: &AtomicBool,
    ) -> Vec<Frontier> {
        let tgd = &self.tgds[slice.ti];
        let body = tgd.body();
        // One compiled plan per slice (engine-routed), reused across every
        // seed.
        let body_plan = AnyPlan::compile(budget.hom_engine, body, d);
        let head_plan = AnyPlan::compile(budget.hom_engine, tgd.head(), d);
        let head_limits = vec![frozen; tgd.head().len()];
        let frontier_slots: Vec<u32> = tgd
            .frontier()
            .iter()
            .map(|v| {
                body_plan
                    .slot(*v)
                    .expect("frontier variable occurs in the body")
            })
            .collect();
        let head_seed_slots: Vec<Option<u32>> =
            tgd.frontier().iter().map(|v| head_plan.slot(*v)).collect();
        let recording = self.record;

        let mut out: Vec<Frontier> = Vec::new();
        let mut buckets: HashMap<u64, Vec<u32>, BuildHasherDefault<PassThroughHasher>> =
            HashMap::default();
        let mut head_seeds: Vec<(u32, Node)> = Vec::with_capacity(frontier_slots.len());
        // Scratch for the frontier tuple: most matches repeat a tuple
        // already in `out`, so the buffer is cloned only on first sight
        // instead of allocated per match.
        let mut tuple: Vec<Node> = Vec::with_capacity(frontier_slots.len());
        let mut matches = 0u64;
        let mut record = |b: &Binding| {
            // Poll the cooperative stop hook every few dozen matches so
            // cancellation latency does not regress inside long slices.
            matches += 1;
            if matches.is_multiple_of(64) && (abort.load(Ordering::Relaxed) || budget.should_stop())
            {
                abort.store(true, Ordering::Relaxed);
                return ControlFlow::Break(());
            }
            tuple.clear();
            tuple.extend(frontier_slots.iter().map(|&s| b.node(s)));
            let bucket = buckets.entry(hash_tuple(&tuple)).or_default();
            if let Some(&i) = bucket.iter().find(|&&i| out[i as usize].tuple == tuple) {
                // Duplicate frontier tuple. When recording, keep the
                // lexicographically least full assignment so the recorded
                // firing does not depend on enumeration order (the hom
                // engines enumerate the same match set in different
                // orders).
                if recording {
                    let cand = sorted_assignment(b);
                    let cur = out[i as usize]
                        .full_map
                        .as_mut()
                        .expect("recording run stores assignments");
                    if cand < *cur {
                        *cur = cand;
                    }
                }
                return ControlFlow::Continue(());
            }
            bucket.push(out.len() as u32);
            // Condition ­ against the frozen snapshot. Satisfaction is
            // monotone, so a pre-satisfied head needs no live re-check in
            // phase B; the probe runs at every thread count so search-node
            // totals stay thread-count-invariant.
            head_seeds.clear();
            for (slot, &n) in head_seed_slots.iter().zip(&tuple) {
                if let Some(s) = slot {
                    head_seeds.push((*s, n));
                }
            }
            let pre_satisfied = head_plan.exists_seeded(&head_seeds, &head_limits);
            out.push(Frontier {
                tuple: tuple.clone(),
                full_map: recording.then(|| sorted_assignment(b)),
                pre_satisfied,
            });
            ControlFlow::Continue(())
        };
        match slice.seed_pos {
            None => {
                let limits = vec![frozen; body.len()];
                let _ = body_plan.for_each_bindings(&[], &limits, &mut record);
            }
            Some(k) => {
                // Every match with at least one body atom in the delta,
                // exactly once: seed position k directly on each delta
                // atom; atoms before k come from the old prefix, atoms
                // after k from the whole snapshot. (Atoms are
                // deduplicated, so "uses a delta atom at position k"
                // is exactly "position k's image was added this stage".)
                let pattern_atom = &body[k];
                let mut limits: Vec<u32> = vec![prev_frozen; body.len()];
                for l in limits.iter_mut().skip(k) {
                    *l = frozen;
                }
                // Resolve the seed atom's argument shape once: the
                // per-row unification below runs for every delta atom of
                // the stage and must not pay a slot-map lookup each time.
                let seed_args: Vec<SeedArg> = pattern_atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => SeedArg::Const(d.existing_const_node(*c)),
                        Term::Var(v) => SeedArg::Slot(
                            body_plan
                                .slot(*v)
                                .expect("pattern variable occurs in the body"),
                        ),
                    })
                    .collect();
                let mut seeds: Vec<(u32, Node)> = Vec::with_capacity(pattern_atom.args.len());
                for idx in prev_frozen..frozen {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let ground = &d.atoms()[idx as usize];
                    if ground.pred != pattern_atom.pred {
                        continue;
                    }
                    if !unify_seed_args(&seed_args, ground, &mut seeds) {
                        continue;
                    }
                    let _ = body_plan.for_each_bindings(&seeds, &limits, &mut record);
                }
            }
        }
        out
    }

    /// Phase B: walks the merged frontiers in `(TGD, merge)` order and
    /// applies the active triggers.
    fn apply_stage(
        &self,
        d: &mut Structure,
        budget: &ChaseBudget,
        stage: usize,
        merged: Vec<Vec<Frontier>>,
        firings: &mut Vec<Firing>,
        meters: &ChaseMeters,
    ) -> (usize, Option<ChaseOutcome>) {
        let mut applications = 0usize;
        for (ti, frontiers) in merged.into_iter().enumerate() {
            let tgd = &self.tgds[ti];
            meters.per_rule[ti].0.add(frontiers.len() as u64);
            for (i, f) in frontiers.into_iter().enumerate() {
                // Poll the cooperative stop hook every few hundred
                // triggers: often enough to honour deadlines promptly,
                // rarely enough to keep `Instant::now` off the hot path.
                if i % 256 == 0 && budget.should_stop() {
                    return (applications, Some(ChaseOutcome::Cancelled));
                }
                if f.pre_satisfied {
                    continue;
                }
                let fixed: VarMap = tgd
                    .frontier()
                    .iter()
                    .copied()
                    .zip(f.tuple.iter().copied())
                    .collect();
                // Condition ­: is ∃z̄ Ψ(z̄, b̄) already true in the *live* D?
                // (The frozen pre-check said no; earlier applications this
                // stage may have satisfied it since.)
                if exists_homomorphism_with(budget.hom_engine, tgd.head(), d, &fixed) {
                    continue;
                }
                self.apply(tgd, &fixed, d);
                if let Some(assignment) = f.full_map {
                    firings.push(Firing {
                        stage,
                        tgd: ti,
                        assignment,
                    });
                }
                applications += 1;
                meters.per_rule[ti].1.inc();
                for c in &meters.atoms_per_rule[ti] {
                    c.inc();
                }
                if d.atom_count() >= budget.max_atoms || d.node_count() as usize >= budget.max_nodes
                {
                    return (applications, Some(ChaseOutcome::SizeBudgetExhausted));
                }
            }
        }
        (applications, None)
    }

    /// Applies one active trigger: `D := D(T, b̄)` — a fresh copy of `A[Ψ]`
    /// glued to the old structure along the frontier (§II.B).
    ///
    /// (See also [`unify_seed_args`] below, the seeding step of the
    /// semi-naive strategy.)
    fn apply(&self, tgd: &Tgd, fixed: &VarMap, d: &mut Structure) {
        let mut assignment = fixed.clone();
        for &v in tgd.existential() {
            let n = d.fresh_node();
            assignment.insert(v, n);
        }
        for a in tgd.head() {
            let args: Vec<Node> = a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => assignment[v],
                    Term::Const(c) => d.node_for_const(*c),
                })
                .collect();
            d.add(a.pred, args);
        }
    }

    /// Model check: `D |= T` iff no trigger is active (both §II.B conditions).
    pub fn is_model(&self, d: &Structure) -> bool {
        self.first_violation(d).is_none()
    }

    /// Finds one active trigger `(tgd index, frontier assignment)`, if any.
    ///
    /// Compiles one body plan and one head plan per TGD against the
    /// (immutable) structure and runs the head check slot-seeded, so the
    /// model check shares the index-driven atom ordering and
    /// allocation-free inner loop of the main search.
    pub fn first_violation(&self, d: &Structure) -> Option<(usize, VarMap)> {
        for (i, tgd) in self.tgds.iter().enumerate() {
            let body_plan = HomPlan::compile(tgd.body(), d);
            let head_plan = HomPlan::compile(tgd.head(), d);
            let body_limits = vec![u32::MAX; tgd.body().len()];
            let head_limits = vec![u32::MAX; tgd.head().len()];
            let frontier_slots: Vec<(cqfd_core::Var, u32)> = tgd
                .frontier()
                .iter()
                .map(|v| {
                    (
                        *v,
                        body_plan
                            .slot(*v)
                            .expect("frontier variable occurs in the body"),
                    )
                })
                .collect();
            let mut head_seeds: Vec<(u32, Node)> = Vec::with_capacity(frontier_slots.len());
            let hit = body_plan.for_each_bindings(&[], &body_limits, |b| {
                head_seeds.clear();
                for &(v, s) in &frontier_slots {
                    if let Some(hs) = head_plan.slot(v) {
                        head_seeds.push((hs, b.node(s)));
                    }
                }
                if head_plan.exists_seeded(&head_seeds, &head_limits) {
                    ControlFlow::Continue(())
                } else {
                    let fixed: VarMap = frontier_slots
                        .iter()
                        .map(|&(v, s)| (v, b.node(s)))
                        .collect();
                    ControlFlow::Break(fixed)
                }
            });
            if let ControlFlow::Break(fixed) = hit {
                return Some((i, fixed));
            }
        }
        None
    }
}

/// What one enumeration worker hands back: the `(slice index, frontier)`
/// pairs it completed, plus the hom-search nodes its thread-local counter
/// accumulated (credited to the coordinating thread's counter).
type WorkerYield = (Vec<(usize, Vec<Frontier>)>, u64);

/// One parallelisable enumeration slice of a chase stage: a TGD and, under
/// the semi-naive strategy, the body position seeded on the delta.
#[derive(Clone, Copy)]
struct Slice {
    ti: usize,
    seed_pos: Option<usize>,
}

/// One distinct frontier tuple found in phase A, bundled with everything
/// phase B needs — a single struct so the tuple/full-map/pre-check triples
/// cannot drift out of step.
struct Frontier {
    /// The frontier tuple b̄.
    tuple: Vec<Node>,
    /// Lexicographically least full body match for this tuple, sorted by
    /// variable (kept only when recording, for the `Firing` trace). Taking
    /// the least match over all duplicates keeps the recorded trace
    /// independent of enumeration order, hence of the hom engine.
    full_map: Option<Vec<(cqfd_core::Var, Node)>>,
    /// The head was already satisfied in the frozen snapshot (condition ­):
    /// monotone, so no live re-check is needed.
    pre_satisfied: bool,
}

/// A binding rendered as a `(variable, node)` assignment sorted by
/// variable — the canonical, order-comparable form stored in
/// [`Frontier::full_map`] and emitted in [`Firing::assignment`].
fn sorted_assignment(b: &Binding) -> Vec<(cqfd_core::Var, Node)> {
    let mut out: Vec<(cqfd_core::Var, Node)> = b.to_varmap().into_iter().collect();
    out.sort_unstable_by_key(|&(v, _)| v);
    out
}

fn hash_tuple(tuple: &[Node]) -> u64 {
    // Multiply-rotate word hash (the "fx" construction): the keys are
    // internal node ids probed once per body match, so SipHash's
    // flooding resistance buys nothing here.
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = (tuple.len() as u64).wrapping_mul(SEED);
    for n in tuple {
        h = (h.rotate_left(5) ^ u64::from(n.0)).wrapping_mul(SEED);
    }
    h
}

/// Forwards an already-hashed `u64` key unchanged. The frontier dedup
/// buckets are keyed by [`hash_tuple`] output; re-hashing it would be
/// pure overhead.
#[derive(Default)]
struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("pass-through hasher is only used with u64 keys");
    }

    fn write_u64(&mut self, k: u64) {
        self.0 = k;
    }
}

/// A seed atom's argument, pre-resolved against plan and target so the
/// per-delta-row unification is lookup-free.
enum SeedArg {
    /// A pattern constant's target node (`None`: absent, never matches).
    Const(Option<Node>),
    /// A variable's plan slot.
    Slot(u32),
}

/// Unifies a ground atom against the pre-resolved seed shape directly
/// into plan-slot seeds (clearing `seeds` first): returns `false` on a
/// constant/repeated-variable mismatch.
fn unify_seed_args(
    seed_args: &[SeedArg],
    ground: &cqfd_core::GroundAtom,
    seeds: &mut Vec<(u32, Node)>,
) -> bool {
    seeds.clear();
    for (sa, &n) in seed_args.iter().zip(&ground.args) {
        match sa {
            SeedArg::Const(c) => {
                if *c != Some(n) {
                    return false;
                }
            }
            SeedArg::Slot(s) => match seeds.iter().find(|&&(s2, _)| s2 == *s) {
                Some(&(_, bound)) if bound != n => return false,
                Some(_) => {}
                None => seeds.push((*s, n)),
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::{structure_homomorphism, Atom, PredId, Signature, Var};
    use std::sync::Arc;

    fn sig_rs() -> Arc<Signature> {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s.add_predicate("S", 2);
        Arc::new(s)
    }

    fn vat(p: PredId, vars: &[u32]) -> Atom<Term> {
        Atom::new(p, vars.iter().map(|&v| Term::Var(Var(v))).collect())
    }

    #[test]
    fn lazy_chase_skips_satisfied_triggers() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        // R(x,y) => exists z. R(x,z): already satisfied everywhere.
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[0, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::default());
        assert!(run.reached_fixpoint());
        assert_eq!(run.structure.atom_count(), 1, "lazy chase adds nothing");
    }

    #[test]
    fn infinite_chase_adds_one_atom_per_stage() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        // R(x,y) => exists z. R(y,z): an infinite forward path.
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::stages(10));
        assert_eq!(run.outcome, ChaseOutcome::StageBudgetExhausted);
        assert_eq!(run.stage_count(), 10);
        for s in &run.stages {
            assert_eq!(s.applications, 1, "frozen-snapshot semantics: 1/stage");
        }
        assert_eq!(run.structure.atom_count(), 11);
    }

    #[test]
    fn full_tgds_terminate_transitive_closure() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        // R(x,y) ∧ R(y,z) => R(x,z)
        let t = Tgd::new_unchecked(
            "trans",
            vec![vat(r, &[0, 1]), vat(r, &[1, 2])],
            vec![vat(r, &[0, 2])],
        );
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let ns: Vec<Node> = (0..5).map(|_| d.fresh_node()).collect();
        for w in ns.windows(2) {
            d.add(r, vec![w[0], w[1]]);
        }
        let run = engine.chase(&d, &ChaseBudget::default());
        assert!(run.reached_fixpoint());
        // 4+3+2+1 = 10 pairs in the closure of a 4-edge path.
        assert_eq!(run.structure.atom_count(), 10);
        assert!(engine.is_model(&run.structure));
        assert!(!engine.is_model(&d));
    }

    #[test]
    fn stage_structures_are_monotone_prefixes() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::stages(5));
        let mut prev_atoms = 0;
        for i in 0..=run.stage_count() {
            let si = run.stage_structure(i);
            assert!(si.atom_count() >= prev_atoms);
            assert!(si.is_substructure_of(&run.structure));
            prev_atoms = si.atom_count();
        }
        assert_eq!(run.stage_structure(0).atom_count(), 1);
    }

    #[test]
    fn chase_is_universal_for_models() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // R(x,y) => exists z. S(y,z)
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(s, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::default());
        assert!(run.reached_fixpoint());
        // A model M ⊇ D: same R edge plus S(b, b).
        let mut m = d.clone();
        m.add(s, vec![b, b]);
        assert!(engine.is_model(&m));
        let h = structure_homomorphism(&run.structure, &m);
        assert!(h.is_some(), "chase must map into every model extending D");
    }

    #[test]
    fn monitor_stops_run() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run =
            engine.chase_with_monitor(&d, &ChaseBudget::stages(100), |s, _| s.atom_count() >= 4);
        assert_eq!(run.outcome, ChaseOutcome::MonitorStopped);
        assert_eq!(run.structure.atom_count(), 4);
    }

    #[test]
    fn size_budget_stops_run() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let budget = ChaseBudget {
            max_stages: 1000,
            max_atoms: 5,
            max_nodes: 1 << 20,
            ..ChaseBudget::default()
        };
        let run = engine.chase(&d, &budget);
        assert_eq!(run.outcome, ChaseOutcome::SizeBudgetExhausted);
        assert_eq!(run.structure.atom_count(), 5);
    }

    #[test]
    fn chase_is_deterministic() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        let t1 = Tgd::new_unchecked("t1", vec![vat(r, &[0, 1])], vec![vat(s, &[1, 2])]);
        let t2 = Tgd::new_unchecked("t2", vec![vat(s, &[0, 1])], vec![vat(r, &[1, 0])]);
        let engine = ChaseEngine::new(vec![t1, t2]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let r1 = engine.chase(&d, &ChaseBudget::stages(6));
        let r2 = engine.chase(&d, &ChaseBudget::stages(6));
        assert_eq!(r1.structure.atoms(), r2.structure.atoms());
        assert_eq!(r1.stages, r2.stages);
    }

    #[test]
    fn parallel_enumeration_is_byte_identical() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // A branching system: transitive closure plus an existential rule,
        // several triggers per stage, so the parallel merge actually has
        // work to order.
        let t1 = Tgd::new_unchecked(
            "trans",
            vec![vat(r, &[0, 1]), vat(r, &[1, 2])],
            vec![vat(r, &[0, 2])],
        );
        let t2 = Tgd::new_unchecked("spawn", vec![vat(r, &[0, 1])], vec![vat(s, &[1, 2])]);
        let mut d = Structure::new(Arc::clone(&sig));
        let ns: Vec<Node> = (0..5).map(|_| d.fresh_node()).collect();
        for w in ns.windows(2) {
            d.add(r, vec![w[0], w[1]]);
        }
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let engine = ChaseEngine::new(vec![t1.clone(), t2.clone()])
                .with_strategy(strategy)
                .with_recording(true);
            let seq = engine.chase(&d, &ChaseBudget::stages(6));
            for threads in [2, 4, 8] {
                let par = engine.chase(&d, &ChaseBudget::stages(6).with_threads(threads));
                assert_eq!(
                    seq.structure.atoms(),
                    par.structure.atoms(),
                    "{strategy:?} t={threads}"
                );
                assert_eq!(seq.stages, par.stages, "{strategy:?} t={threads}");
                assert_eq!(seq.firings, par.firings, "{strategy:?} t={threads}");
                assert_eq!(seq.outcome, par.outcome, "{strategy:?} t={threads}");
                assert_eq!(seq.hom_nodes, par.hom_nodes, "{strategy:?} t={threads}");
            }
        }
    }

    #[test]
    fn cancel_mid_parallel_stage_leaves_a_valid_prefix() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let token = CancelToken::new();
        let budget = ChaseBudget::stages(10_000)
            .with_cancel(token.clone())
            .with_threads(4);
        token.cancel(); // fires before (hence during) enumeration
        let run = engine.chase(&d, &budget);
        assert_eq!(run.outcome, ChaseOutcome::Cancelled);
        // A cancelled run is still a valid chase prefix: every recorded
        // stage boundary reconstructs, and the last one is the result.
        let last = run.stage_structure(run.stage_count());
        assert_eq!(last.atoms(), run.structure.atoms());
    }

    #[test]
    fn constants_in_heads_are_pinned() {
        let mut sigm = Signature::new();
        let r = sigm.add_predicate("R", 2);
        let s = sigm.add_predicate("S", 2);
        let c = sigm.add_constant("c0");
        let sig = Arc::new(sigm);
        // R(x,y) => S(y, #c0)
        let t = Tgd::new_unchecked(
            "t",
            vec![vat(r, &[0, 1])],
            vec![Atom::new(s, vec![Term::Var(Var(1)), Term::Const(c)])],
        );
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::default());
        assert!(run.reached_fixpoint());
        let cn = run.structure.existing_const_node(c).unwrap();
        assert!(run.structure.contains(s, &[b, cn]));
    }

    #[test]
    fn recording_captures_every_application() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let t = Tgd::new_unchecked("t", vec![vat(r, &[0, 1])], vec![vat(r, &[1, 2])]);
        let engine = ChaseEngine::new(vec![t]).with_recording(true);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::stages(4));
        assert_eq!(run.firings.len(), run.triggers_fired());
        for (k, f) in run.firings.iter().enumerate() {
            assert_eq!(f.stage, k + 1, "one application per stage");
            assert_eq!(f.tgd, 0);
            // Full body match: both body variables bound, sorted.
            assert_eq!(f.assignment.len(), 2);
            assert!(f.assignment[0].0 < f.assignment[1].0);
        }
        // Off by default.
        let plain = ChaseEngine::new(engine.tgds().to_vec()).chase(&d, &ChaseBudget::stages(4));
        assert!(plain.firings.is_empty());
        assert_eq!(plain.structure.atoms(), run.structure.atoms());
    }

    #[test]
    fn multi_atom_head_shares_existential() {
        let sig = sig_rs();
        let r = sig.predicate("R").unwrap();
        let s = sig.predicate("S").unwrap();
        // R(x,y) => exists z. S(x,z) ∧ S(y,z)
        let t = Tgd::new_unchecked(
            "t",
            vec![vat(r, &[0, 1])],
            vec![vat(s, &[0, 2]), vat(s, &[1, 2])],
        );
        let engine = ChaseEngine::new(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let a = d.fresh_node();
        let b = d.fresh_node();
        d.add(r, vec![a, b]);
        let run = engine.chase(&d, &ChaseBudget::default());
        assert!(run.reached_fixpoint());
        assert_eq!(run.structure.atom_count(), 3);
        // Both new S atoms end in the same fresh node.
        let satoms: Vec<_> = run.structure.atoms_with_pred(s).collect();
        assert_eq!(satoms.len(), 2);
        assert_eq!(satoms[0].args[1], satoms[1].args[1]);
    }
}

#[cfg(test)]
mod seminaive_tests {
    use super::*;
    use cqfd_core::{structure_homomorphism, Atom, Signature, Var};
    use std::sync::Arc;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn engines(tgds: Vec<Tgd>) -> (ChaseEngine, ChaseEngine) {
        (
            ChaseEngine::new(tgds.clone()),
            ChaseEngine::new(tgds).with_strategy(Strategy::SemiNaive),
        )
    }

    #[test]
    fn strategies_agree_on_terminating_chase() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let sig = Arc::new(sig);
        // transitive closure + a symmetrizing existential rule
        let t1 = Tgd::new_unchecked(
            "trans",
            vec![
                Atom::new(r, vec![v(0), v(1)]),
                Atom::new(r, vec![v(1), v(2)]),
            ],
            vec![Atom::new(r, vec![v(0), v(2)])],
        );
        let (naive, semi) = engines(vec![t1]);
        let mut d = Structure::new(Arc::clone(&sig));
        let ns: Vec<Node> = (0..5).map(|_| d.fresh_node()).collect();
        for w in ns.windows(2) {
            d.add(r, vec![w[0], w[1]]);
        }
        let rn = naive.chase(&d, &ChaseBudget::default());
        let rs = semi.chase(&d, &ChaseBudget::default());
        assert!(rn.reached_fixpoint() && rs.reached_fixpoint());
        // Full TGDs: results must be literally equal as atom sets.
        assert_eq!(rn.structure.atom_count(), rs.structure.atom_count());
        for a in rn.structure.atoms() {
            assert!(rs.structure.contains_atom(a));
        }
        assert!(naive.is_model(&rs.structure));
    }

    #[test]
    fn strategies_agree_on_existential_chase_up_to_homs() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let s = sig.add_predicate("S", 2);
        let sig = Arc::new(sig);
        // R(x,y) ⇒ ∃z S(y,z);  S(x,y) ⇒ R(x,x): terminates after the
        // fresh S-target's R-loop turns out to be S-satisfied already.
        let t1 = Tgd::new_unchecked(
            "t1",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(1), v(2)])],
        );
        let t2 = Tgd::new_unchecked(
            "t2",
            vec![Atom::new(s, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(0), v(0)])],
        );
        let (naive, semi) = engines(vec![t1, t2]);
        let mut d = Structure::new(Arc::clone(&sig));
        let x = d.fresh_node();
        let y = d.fresh_node();
        d.add(r, vec![x, y]);
        let rn = naive.chase(&d, &ChaseBudget::default());
        let rs = semi.chase(&d, &ChaseBudget::default());
        assert!(rn.reached_fixpoint() && rs.reached_fixpoint());
        assert!(naive.is_model(&rs.structure));
        assert!(semi.is_model(&rn.structure));
        // Universal models of the same instance: hom-equivalent.
        assert!(structure_homomorphism(&rn.structure, &rs.structure).is_some());
        assert!(structure_homomorphism(&rs.structure, &rn.structure).is_some());
    }

    #[test]
    fn seminaive_matches_naive_stage_counts_on_tinf_like_system() {
        // A single-trigger-per-stage system (like T∞): the two strategies
        // must take identical stages.
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let sig = Arc::new(sig);
        let t = Tgd::new_unchecked(
            "t",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(r, vec![v(1), v(2)])],
        );
        let (naive, semi) = engines(vec![t]);
        let mut d = Structure::new(Arc::clone(&sig));
        let x = d.fresh_node();
        let y = d.fresh_node();
        d.add(r, vec![x, y]);
        let rn = naive.chase(&d, &ChaseBudget::stages(12));
        let rs = semi.chase(&d, &ChaseBudget::stages(12));
        assert_eq!(rn.stages, rs.stages);
        assert_eq!(rn.structure.atoms(), rs.structure.atoms());
    }

    #[test]
    fn seminaive_is_deterministic() {
        let mut sig = Signature::new();
        let r = sig.add_predicate("R", 2);
        let s = sig.add_predicate("S", 2);
        let sig = Arc::new(sig);
        let t1 = Tgd::new_unchecked(
            "t1",
            vec![
                Atom::new(r, vec![v(0), v(1)]),
                Atom::new(s, vec![v(1), v(2)]),
            ],
            vec![Atom::new(r, vec![v(0), v(2)])],
        );
        let t2 = Tgd::new_unchecked(
            "t2",
            vec![Atom::new(r, vec![v(0), v(1)])],
            vec![Atom::new(s, vec![v(0), v(2)])],
        );
        let semi = ChaseEngine::new(vec![t1, t2]).with_strategy(Strategy::SemiNaive);
        let mut d = Structure::new(Arc::clone(&sig));
        let ns: Vec<Node> = (0..3).map(|_| d.fresh_node()).collect();
        d.add(r, vec![ns[0], ns[1]]);
        d.add(s, vec![ns[1], ns[2]]);
        let r1 = semi.chase(&d, &ChaseBudget::stages(8));
        let r2 = semi.chase(&d, &ChaseBudget::stages(8));
        assert_eq!(r1.structure.atoms(), r2.structure.atoms());
        assert_eq!(r1.stages, r2.stages);
    }
}
