//! Edge-case coverage for the chase engine: nullary predicates,
//! constants-only rules, self-referential TGDs, empty rule sets,
//! interacting dependencies.

use cqfd_chase::{ChaseBudget, ChaseEngine, ChaseOutcome, Tgd};
use cqfd_core::{Atom, Signature, Structure, Term, Var};
use std::sync::Arc;

fn v(i: u32) -> Term {
    Term::Var(Var(i))
}

#[test]
fn nullary_predicates_chase() {
    let mut sig = Signature::new();
    let p = sig.add_predicate("P", 0);
    let q = sig.add_predicate("Q", 0);
    let sig = Arc::new(sig);
    // P() => Q()
    let t = Tgd::new_unchecked("t", vec![Atom::new(p, vec![])], vec![Atom::new(q, vec![])]);
    let engine = ChaseEngine::new(vec![t]);
    let mut d = Structure::new(Arc::clone(&sig));
    d.add(p, vec![]);
    let run = engine.chase(&d, &ChaseBudget::default());
    assert!(run.reached_fixpoint());
    assert!(run.structure.contains(q, &[]));
    assert_eq!(run.structure.atom_count(), 2);
}

#[test]
fn constants_only_tgd() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let c1 = sig.add_constant("c1");
    let c2 = sig.add_constant("c2");
    let sig = Arc::new(sig);
    // R(#c1, x) => R(x, #c2)
    let t = Tgd::new_unchecked(
        "t",
        vec![Atom::new(r, vec![Term::Const(c1), v(0)])],
        vec![Atom::new(r, vec![v(0), Term::Const(c2)])],
    );
    let engine = ChaseEngine::new(vec![t]);
    let mut d = Structure::new(Arc::clone(&sig));
    let n1 = d.node_for_const(c1);
    let x = d.fresh_node();
    d.add(r, vec![n1, x]);
    let run = engine.chase(&d, &ChaseBudget::default());
    assert!(run.reached_fixpoint());
    let n2 = run.structure.existing_const_node(c2).unwrap();
    assert!(run.structure.contains(r, &[x, n2]));
}

#[test]
fn self_loop_body_matches_lazily() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let sig = Arc::new(sig);
    // R(x, x) => ∃y R(x, y) — satisfied by the loop itself: no growth.
    let t = Tgd::new_unchecked(
        "t",
        vec![Atom::new(r, vec![v(0), v(0)])],
        vec![Atom::new(r, vec![v(0), v(1)])],
    );
    let engine = ChaseEngine::new(vec![t]);
    let mut d = Structure::new(Arc::clone(&sig));
    let x = d.fresh_node();
    d.add(r, vec![x, x]);
    let run = engine.chase(&d, &ChaseBudget::default());
    assert!(run.reached_fixpoint());
    assert_eq!(run.structure.atom_count(), 1);
}

#[test]
fn empty_rule_set_is_immediate_fixpoint() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let sig = Arc::new(sig);
    let engine = ChaseEngine::new(vec![]);
    let mut d = Structure::new(Arc::clone(&sig));
    let x = d.fresh_node();
    let y = d.fresh_node();
    d.add(r, vec![x, y]);
    let run = engine.chase(&d, &ChaseBudget::default());
    assert_eq!(run.outcome, ChaseOutcome::Fixpoint);
    assert_eq!(run.stage_count(), 1, "one empty stage proves the fixpoint");
    assert!(engine.is_model(&d));
}

#[test]
fn empty_start_structure() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let sig = Arc::new(sig);
    let t = Tgd::new_unchecked(
        "t",
        vec![Atom::new(r, vec![v(0), v(1)])],
        vec![Atom::new(r, vec![v(1), v(0)])],
    );
    let engine = ChaseEngine::new(vec![t]);
    let d = Structure::new(Arc::clone(&sig));
    let run = engine.chase(&d, &ChaseBudget::default());
    assert!(run.reached_fixpoint());
    assert_eq!(run.structure.atom_count(), 0);
}

#[test]
fn two_tgds_feed_each_other_until_budget() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let s = sig.add_predicate("S", 2);
    let sig = Arc::new(sig);
    // R(x,y) => ∃z S(y,z);  S(x,y) => ∃z R(y,z): infinite alternation.
    let t1 = Tgd::new_unchecked(
        "t1",
        vec![Atom::new(r, vec![v(0), v(1)])],
        vec![Atom::new(s, vec![v(1), v(2)])],
    );
    let t2 = Tgd::new_unchecked(
        "t2",
        vec![Atom::new(s, vec![v(0), v(1)])],
        vec![Atom::new(r, vec![v(1), v(2)])],
    );
    let engine = ChaseEngine::new(vec![t1, t2]);
    let mut d = Structure::new(Arc::clone(&sig));
    let x = d.fresh_node();
    let y = d.fresh_node();
    d.add(r, vec![x, y]);
    let run = engine.chase(&d, &ChaseBudget::stages(10));
    assert_eq!(run.outcome, ChaseOutcome::StageBudgetExhausted);
    // Each stage adds at least one atom; both relations grow.
    assert!(run.structure.pred_count(r) >= 3);
    assert!(run.structure.pred_count(s) >= 3);
}

#[test]
fn frontier_only_distinctness() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let p = sig.add_predicate("P", 1);
    let sig = Arc::new(sig);
    // R(x,y) => P(x): two triggers with the same frontier value must apply
    // once (triggers are deduplicated by frontier tuple).
    let t = Tgd::new_unchecked(
        "t",
        vec![Atom::new(r, vec![v(0), v(1)])],
        vec![Atom::new(p, vec![v(0)])],
    );
    let engine = ChaseEngine::new(vec![t]);
    let mut d = Structure::new(Arc::clone(&sig));
    let x = d.fresh_node();
    let y1 = d.fresh_node();
    let y2 = d.fresh_node();
    d.add(r, vec![x, y1]);
    d.add(r, vec![x, y2]);
    let run = engine.chase(&d, &ChaseBudget::default());
    assert!(run.reached_fixpoint());
    assert_eq!(run.structure.pred_count(p), 1);
    assert_eq!(
        run.stages[0].applications, 1,
        "one application per frontier"
    );
}

#[test]
fn stage_structure_of_start_is_the_start() {
    let mut sig = Signature::new();
    let r = sig.add_predicate("R", 2);
    let c = sig.add_constant("c");
    let sig = Arc::new(sig);
    let t = Tgd::new_unchecked(
        "t",
        vec![Atom::new(r, vec![v(0), v(1)])],
        vec![Atom::new(r, vec![v(1), v(2)])],
    );
    let engine = ChaseEngine::new(vec![t]);
    let mut d = Structure::new(Arc::clone(&sig));
    let nc = d.node_for_const(c);
    let x = d.fresh_node();
    d.add(r, vec![nc, x]);
    let run = engine.chase(&d, &ChaseBudget::stages(4));
    let s0 = run.stage_structure(0);
    assert_eq!(s0.atoms(), d.atoms());
    assert_eq!(s0.existing_const_node(c), Some(nc), "constants re-pinned");
}
