//! The trusted certificate checker.
//!
//! This module is the kernel of the subsystem's trust story, so it is kept
//! deliberately primitive: its only operations are substitution, hash-set
//! atom lookup, and plain nested-loop enumeration for the claims that are
//! inherently universal (TGD satisfaction, `fails` claims). It does **not**
//! use `cqfd_core::hom` or any other search code from the producing crates
//! — the entire point is that a bug in the optimised backtracking join
//! cannot also hide here. The one outside dependency is `cqfd_rainworm`'s
//! *semantics* (symbol parsing, the Definition 19 validator, the
//! deterministic `step` function) for creep traces: a rainworm step is a
//! total, deterministic rewrite — definition, not search.
//!
//! Every check is low polynomial in the certificate size: linear for
//! witnessed claims and trace replay, `O(|atoms|^{|body|})` worst case for
//! the enumerated ones (rule bodies in this repo have ≤ 3 atoms).

use crate::{
    Certificate, FailsClaim, FiringSpec, HoldsClaim, PatAtom, RuleSpec, SigSpec, StructSpec,
    TermSpec,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// What a successful check validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The certificate kind.
    pub kind: &'static str,
    /// Units of work re-validated: replayed firings, creep steps, or
    /// checked claims/rules.
    pub steps: usize,
    /// `true` for [`Certificate::NonHomRefutation`]: the certificate
    /// *attests* an exhausted search but is not an independent proof.
    pub attestation: bool,
    /// Human-readable one-line summary.
    pub summary: String,
}

/// The checker's own structure representation: arities, a node bound,
/// constant pins, and the atom set (plus a per-predicate list for the
/// enumerated checks). Built fresh from the certificate — nothing is
/// shared with `cqfd_core::Structure`.
struct World {
    arities: Vec<usize>,
    nodes: u32,
    consts: Vec<Option<u32>>,
    atoms: HashSet<(usize, Vec<u32>)>,
    by_pred: Vec<Vec<Vec<u32>>>,
}

impl World {
    fn build(sig: &SigSpec, st: &StructSpec) -> Result<World, String> {
        check_sig(sig)?;
        let mut w = World {
            arities: sig.preds.iter().map(|(_, a)| *a).collect(),
            nodes: st.nodes,
            consts: vec![None; sig.consts.len()],
            atoms: HashSet::new(),
            by_pred: vec![Vec::new(); sig.preds.len()],
        };
        let mut pinned_nodes: HashSet<u32> = HashSet::new();
        for &(c, n) in &st.pins {
            let slot = w
                .consts
                .get_mut(c)
                .ok_or_else(|| format!("pin of unknown constant index {c}"))?;
            if n >= st.nodes {
                return Err(format!("pin to unallocated node {n}"));
            }
            if slot.is_some() {
                return Err(format!("constant {c} pinned twice"));
            }
            if !pinned_nodes.insert(n) {
                return Err(format!("node {n} pinned to two constants"));
            }
            *slot = Some(n);
        }
        for a in &st.atoms {
            w.insert(a.pred, a.args.clone())?;
        }
        Ok(w)
    }

    fn insert(&mut self, pred: usize, args: Vec<u32>) -> Result<bool, String> {
        let arity = *self
            .arities
            .get(pred)
            .ok_or_else(|| format!("atom with unknown predicate index {pred}"))?;
        if args.len() != arity {
            return Err(format!(
                "atom arity mismatch for predicate {pred}: {} vs {arity}",
                args.len()
            ));
        }
        if let Some(&n) = args.iter().find(|&&n| n >= self.nodes) {
            return Err(format!("atom argument {n} is not an allocated node"));
        }
        if self.atoms.insert((pred, args.clone())) {
            self.by_pred[pred].push(args);
            return Ok(true);
        }
        Ok(false)
    }

    fn fresh_node(&mut self) -> u32 {
        let n = self.nodes;
        self.nodes += 1;
        n
    }

    /// The node of a constant, materialising it if needed — mirroring the
    /// chase's `node_for_const` allocation discipline, which trace replay
    /// depends on.
    fn node_for_const(&mut self, c: usize) -> Result<u32, String> {
        match self.consts.get(c) {
            None => Err(format!("unknown constant index {c}")),
            Some(Some(n)) => Ok(*n),
            Some(None) => {
                let n = self.fresh_node();
                self.consts[c] = Some(n);
                Ok(n)
            }
        }
    }

    /// Grounds a pattern atom under `asg`; every variable must be bound
    /// and every constant already materialised.
    fn ground(&self, pat: &PatAtom, asg: &BTreeMap<u32, u32>) -> Result<(usize, Vec<u32>), String> {
        let arity = *self
            .arities
            .get(pat.pred)
            .ok_or_else(|| format!("unknown predicate index {}", pat.pred))?;
        if pat.terms.len() != arity {
            return Err(format!("pattern arity mismatch on predicate {}", pat.pred));
        }
        let mut args = Vec::with_capacity(pat.terms.len());
        for t in &pat.terms {
            args.push(match t {
                TermSpec::Var(v) => *asg.get(v).ok_or_else(|| format!("variable v{v} unbound"))?,
                TermSpec::Const(c) => self
                    .consts
                    .get(*c)
                    .copied()
                    .flatten()
                    .ok_or_else(|| format!("constant {c} not materialised"))?,
            });
        }
        Ok((pat.pred, args))
    }

    /// Is there an assignment extending `fixed` matching all of `atoms`?
    /// Plain left-to-right enumeration over per-predicate atom lists — the
    /// checker's *only* universal primitive.
    fn exists_match(&self, atoms: &[PatAtom], fixed: &BTreeMap<u32, u32>) -> Result<bool, String> {
        let Some((first, rest)) = atoms.split_first() else {
            return Ok(true);
        };
        let arity = *self
            .arities
            .get(first.pred)
            .ok_or_else(|| format!("unknown predicate index {}", first.pred))?;
        if first.terms.len() != arity {
            return Err(format!(
                "pattern arity mismatch on predicate {}",
                first.pred
            ));
        }
        'cand: for ground in &self.by_pred[first.pred] {
            let mut asg = fixed.clone();
            for (t, &n) in first.terms.iter().zip(ground) {
                match t {
                    TermSpec::Const(c) => {
                        if self.consts.get(*c).copied().flatten() != Some(n) {
                            continue 'cand;
                        }
                    }
                    TermSpec::Var(v) => match asg.get(v) {
                        Some(&bound) if bound != n => continue 'cand,
                        _ => {
                            asg.insert(*v, n);
                        }
                    },
                }
            }
            if self.exists_match(rest, &asg)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

fn check_sig(sig: &SigSpec) -> Result<(), String> {
    if sig.preds.iter().any(|(name, _)| name.is_empty()) {
        return Err("empty predicate name".into());
    }
    if sig.consts.iter().any(String::is_empty) {
        return Err("empty constant name".into());
    }
    Ok(())
}

fn vars_of(atoms: &[PatAtom]) -> BTreeSet<u32> {
    atoms
        .iter()
        .flat_map(|a| &a.terms)
        .filter_map(|t| match t {
            TermSpec::Var(v) => Some(*v),
            TermSpec::Const(_) => None,
        })
        .collect()
}

/// Validates `D |= Q(ā)` by substituting the witness and looking each
/// body atom up — no search.
fn check_holds(world: &World, claim: &HoldsClaim, label: &str) -> Result<(), String> {
    let q = &claim.query;
    if q.free.len() != claim.tuple.len() {
        return Err(format!(
            "{label} {}: tuple arity {} does not match {} free variables",
            q.name,
            claim.tuple.len(),
            q.free.len()
        ));
    }
    let mut asg: BTreeMap<u32, u32> = BTreeMap::new();
    for &(v, n) in &claim.witness {
        if asg.insert(v, n).is_some() {
            return Err(format!("{label} {}: variable v{v} bound twice", q.name));
        }
        if n >= world.nodes {
            return Err(format!(
                "{label} {}: witness maps v{v} off the domain",
                q.name
            ));
        }
    }
    for (&v, &n) in q.free.iter().zip(&claim.tuple) {
        if asg.get(&v) != Some(&n) {
            return Err(format!(
                "{label} {}: witness disagrees with the answer tuple on v{v}",
                q.name
            ));
        }
    }
    for v in vars_of(&q.body) {
        if !asg.contains_key(&v) {
            return Err(format!("{label} {}: body variable v{v} unbound", q.name));
        }
    }
    for pat in &q.body {
        let ground = world
            .ground(pat, &asg)
            .map_err(|e| format!("{label} {}: {e}", q.name))?;
        if !world.atoms.contains(&ground) {
            return Err(format!(
                "{label} {}: substituted atom {}({:?}) is not in the structure",
                q.name, ground.0, ground.1
            ));
        }
    }
    Ok(())
}

/// Validates `D ⊭ Q(ā)` by exhaustive enumeration.
fn check_fails(world: &World, claim: &FailsClaim) -> Result<(), String> {
    let q = &claim.query;
    if q.free.len() != claim.tuple.len() {
        return Err(format!(
            "fails {}: tuple arity {} does not match {} free variables",
            q.name,
            claim.tuple.len(),
            q.free.len()
        ));
    }
    let fixed: BTreeMap<u32, u32> = q
        .free
        .iter()
        .copied()
        .zip(claim.tuple.iter().copied())
        .collect();
    if world.exists_match(&q.body, &fixed)? {
        return Err(format!("fails {}: the query has a match after all", q.name));
    }
    Ok(())
}

/// Validates `D |= rule`: every body match has a head extension.
fn check_rule(world: &World, rule: &RuleSpec) -> Result<(), String> {
    // Recursive enumeration of body matches, atom by atom.
    fn descend(
        world: &World,
        body: &[PatAtom],
        head: &[PatAtom],
        asg: &BTreeMap<u32, u32>,
        name: &str,
    ) -> Result<(), String> {
        let Some((first, rest)) = body.split_first() else {
            if world.exists_match(head, asg)? {
                return Ok(());
            }
            return Err(format!(
                "rule {name}: body match {asg:?} has no head extension"
            ));
        };
        let arity = *world
            .arities
            .get(first.pred)
            .ok_or_else(|| format!("rule {name}: unknown predicate index {}", first.pred))?;
        if first.terms.len() != arity {
            return Err(format!(
                "rule {name}: pattern arity mismatch on predicate {}",
                first.pred
            ));
        }
        'cand: for ground in &world.by_pred[first.pred] {
            let mut next = asg.clone();
            for (t, &n) in first.terms.iter().zip(ground) {
                match t {
                    TermSpec::Const(c) => {
                        if world.consts.get(*c).copied().flatten() != Some(n) {
                            continue 'cand;
                        }
                    }
                    TermSpec::Var(v) => match next.get(v) {
                        Some(&bound) if bound != n => continue 'cand,
                        _ => {
                            next.insert(*v, n);
                        }
                    },
                }
            }
            descend(world, rest, head, &next, name)?;
        }
        Ok(())
    }
    descend(world, &rule.body, &rule.head, &BTreeMap::new(), &rule.name)
}

/// Replays a chase trace: every firing's body must be present under its
/// recorded assignment, existential variables get fresh nodes (ascending,
/// mirroring [`cqfd_chase::Tgd`]'s discipline), head atoms are added, and
/// the final counts must agree.
fn replay_trace(
    world: &mut World,
    rules: &[RuleSpec],
    firings: &[FiringSpec],
) -> Result<(), String> {
    let mut last_stage = 0usize;
    for (k, f) in firings.iter().enumerate() {
        let label = format!("firing {} (stage {})", k + 1, f.stage);
        let rule = rules
            .get(f.rule)
            .ok_or_else(|| format!("{label}: unknown rule index {}", f.rule))?;
        if f.stage < last_stage {
            return Err(format!("{label}: stages must be non-decreasing"));
        }
        last_stage = f.stage;
        let mut asg: BTreeMap<u32, u32> = BTreeMap::new();
        for &(v, n) in &f.assignment {
            if asg.insert(v, n).is_some() {
                return Err(format!("{label}: variable v{v} bound twice"));
            }
        }
        let body_vars = vars_of(&rule.body);
        for &v in &body_vars {
            if !asg.contains_key(&v) {
                return Err(format!(
                    "{label}: body variable v{v} of rule {} unbound",
                    rule.name
                ));
            }
        }
        for pat in &rule.body {
            let ground = world
                .ground(pat, &asg)
                .map_err(|e| format!("{label}: {e}"))?;
            if !world.atoms.contains(&ground) {
                return Err(format!(
                    "{label}: body atom of rule {} is not present under the assignment",
                    rule.name
                ));
            }
        }
        // Existentials: head variables not in the body, ascending.
        for v in vars_of(&rule.head) {
            if !body_vars.contains(&v) {
                let n = world.fresh_node();
                asg.insert(v, n);
            }
        }
        for pat in &rule.head {
            let arity = *world
                .arities
                .get(pat.pred)
                .ok_or_else(|| format!("{label}: unknown predicate index {}", pat.pred))?;
            if pat.terms.len() != arity {
                return Err(format!("{label}: head arity mismatch"));
            }
            let mut args = Vec::with_capacity(pat.terms.len());
            for t in &pat.terms {
                args.push(match t {
                    TermSpec::Var(v) => *asg
                        .get(v)
                        .ok_or_else(|| format!("{label}: head variable v{v} unbound"))?,
                    TermSpec::Const(c) => world
                        .node_for_const(*c)
                        .map_err(|e| format!("{label}: {e}"))?,
                });
            }
            world
                .insert(pat.pred, args)
                .map_err(|e| format!("{label}: {e}"))?;
        }
    }
    Ok(())
}

fn check_creep(
    delta_lines: &[String],
    checkpoints: &[(usize, String)],
    halted: bool,
) -> Result<usize, String> {
    use cqfd_rainworm::config::Config;
    use cqfd_rainworm::parse::{parse_delta, parse_symbol};
    use cqfd_rainworm::run::step;

    let delta = parse_delta(&delta_lines.join("\n")).map_err(|e| format!("bad delta: {e}"))?;
    let parse_config = |word: &str| -> Result<Config, String> {
        let syms = word
            .split_whitespace()
            .map(parse_symbol)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Config(syms))
    };
    let Some(((first_step, first_word), rest)) = checkpoints.split_first() else {
        return Err("creep trace has no checkpoints".into());
    };
    if *first_step != 0 {
        return Err("first checkpoint must be step 0".into());
    }
    let mut current = parse_config(first_word)?;
    if current != Config::initial() {
        return Err("step 0 is not the initial configuration αη11".into());
    }
    let mut at = 0usize;
    let mut replayed = 0usize;
    for (target, word) in rest {
        if *target <= at {
            return Err("checkpoint steps must be strictly increasing".into());
        }
        let claimed = parse_config(word)?;
        claimed.validate().map_err(|e| {
            format!("checkpoint at step {target} is not a valid configuration: {e}")
        })?;
        while at < *target {
            current = step(&delta, &current)
                .ok_or_else(|| format!("the run halts at step {at}, before checkpoint {target}"))?;
            at += 1;
            replayed += 1;
        }
        if current != claimed {
            return Err(format!(
                "checkpoint at step {target} does not match the replay"
            ));
        }
    }
    let next = step(&delta, &current);
    if halted && next.is_some() {
        return Err(format!(
            "claimed halt at step {at}, but the worm still creeps"
        ));
    }
    if !halted && next.is_none() {
        return Err(format!(
            "claimed still creeping at step {at}, but the worm halts"
        ));
    }
    Ok(replayed)
}

/// Validates a certificate, returning what was checked or the first
/// rejection reason.
pub fn check(cert: &Certificate) -> Result<CheckReport, String> {
    let kind = cert.kind();
    let report = |steps: usize, attestation: bool, summary: String| CheckReport {
        kind,
        steps,
        attestation,
        summary,
    };
    match cert {
        Certificate::HomWitness {
            sig,
            structure,
            claim,
        } => {
            let world = World::build(sig, structure)?;
            check_holds(&world, claim, "holds")?;
            Ok(report(
                1,
                false,
                format!(
                    "witnessed {}({:?}) in a structure with {} atoms",
                    claim.query.name,
                    claim.tuple,
                    structure.atoms.len()
                ),
            ))
        }
        Certificate::ChaseTrace {
            sig,
            rules,
            start,
            firings,
            final_atoms,
            final_nodes,
            goal,
        } => {
            let mut world = World::build(sig, start)?;
            replay_trace(&mut world, rules, firings)?;
            if world.atoms.len() != *final_atoms {
                return Err(format!(
                    "replay produced {} atoms, certificate claims {final_atoms}",
                    world.atoms.len()
                ));
            }
            if world.nodes != *final_nodes {
                return Err(format!(
                    "replay produced {} nodes, certificate claims {final_nodes}",
                    world.nodes
                ));
            }
            if let Some(g) = goal {
                check_holds(&world, g, "goal")?;
            }
            Ok(report(
                firings.len(),
                false,
                format!(
                    "replayed {} firings to {} atoms{}",
                    firings.len(),
                    final_atoms,
                    if goal.is_some() { "; goal holds" } else { "" }
                ),
            ))
        }
        Certificate::FiniteModel {
            sig,
            rules,
            structure,
            holds,
            fails,
        } => {
            let world = World::build(sig, structure)?;
            for rule in rules {
                check_rule(&world, rule)?;
            }
            for claim in holds {
                check_holds(&world, claim, "holds")?;
            }
            for claim in fails {
                check_fails(&world, claim)?;
            }
            Ok(report(
                rules.len() + holds.len() + fails.len(),
                false,
                format!(
                    "model of {} rules; {} holds / {} fails claims verified",
                    rules.len(),
                    holds.len(),
                    fails.len()
                ),
            ))
        }
        Certificate::CreepTrace {
            delta,
            checkpoints,
            halted,
        } => {
            let steps = check_creep(delta, checkpoints, *halted)?;
            let last = checkpoints.last().map_or(0, |&(s, _)| s);
            Ok(report(
                steps,
                false,
                format!(
                    "replayed {steps} creep steps; {} at step {last}",
                    if *halted { "halted" } else { "still creeping" }
                ),
            ))
        }
        Certificate::NonHomRefutation {
            sig,
            what,
            bound,
            explored,
        } => {
            check_sig(sig)?;
            if what.is_empty() {
                return Err("attestation with empty description".into());
            }
            if *bound == 0 {
                return Err("attestation with zero bound".into());
            }
            Ok(report(
                0,
                true,
                format!(
                    "attestation only: {what} exhausted bound {bound} ({explored} nodes explored)"
                ),
            ))
        }
    }
}
