//! Bridges from the workspace's native types to certificate specs.
//!
//! These run on the **producer** side only: the checker never touches
//! `cqfd_core` structures. Predicate/constant indices in the specs are the
//! dense interning ids of the source [`Signature`], so a spec and the
//! structure it was taken from agree symbol-for-symbol.

use crate::{
    AtomSpec, Certificate, FailsClaim, FiringSpec, HoldsClaim, PatAtom, QuerySpec, RuleSpec,
    SigSpec, StructSpec, TermSpec,
};
use cqfd_chase::{ChaseRun, Firing, Tgd};
use cqfd_core::{Atom, Cq, Node, Signature, Structure, Term, VarMap};

/// The signature, by value.
pub fn sig_spec(sig: &Signature) -> SigSpec {
    SigSpec {
        preds: sig
            .predicates()
            .map(|p| (sig.pred_name(p).to_owned(), sig.arity(p)))
            .collect(),
        consts: sig
            .constants()
            .map(|c| sig.const_name(c).to_owned())
            .collect(),
    }
}

/// A structure, by value (nodes, constant pins, atoms — insertion order).
pub fn struct_spec(d: &Structure) -> StructSpec {
    let sig = d.signature();
    StructSpec {
        nodes: d.node_count(),
        pins: sig
            .constants()
            .filter_map(|c| d.existing_const_node(c).map(|n| (c.0 as usize, n.0)))
            .collect(),
        atoms: d
            .atoms()
            .iter()
            .map(|a| AtomSpec {
                pred: a.pred.0 as usize,
                args: a.args.iter().map(|n| n.0).collect(),
            })
            .collect(),
    }
}

fn pat_atoms(atoms: &[Atom<Term>]) -> Vec<PatAtom> {
    atoms
        .iter()
        .map(|a| PatAtom {
            pred: a.pred.0 as usize,
            terms: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => TermSpec::Var(v.0),
                    Term::Const(c) => TermSpec::Const(c.0 as usize),
                })
                .collect(),
        })
        .collect()
}

/// A TGD, by value.
pub fn rule_spec(t: &Tgd) -> RuleSpec {
    RuleSpec {
        name: t.name().to_owned(),
        body: pat_atoms(t.body()),
        head: pat_atoms(t.head()),
    }
}

/// A conjunctive query, by value.
pub fn query_spec(q: &Cq) -> QuerySpec {
    QuerySpec {
        name: q.name.clone(),
        free: q.head_vars.iter().map(|v| v.0).collect(),
        body: pat_atoms(&q.body),
    }
}

/// A positive claim `D |= Q(ā)` with its witness map (sorted by variable).
pub fn holds_claim(q: &Cq, tuple: &[Node], witness: &VarMap) -> HoldsClaim {
    let mut w: Vec<(u32, u32)> = witness.iter().map(|(v, n)| (v.0, n.0)).collect();
    w.sort_unstable_by_key(|&(v, _)| v);
    HoldsClaim {
        query: query_spec(q),
        tuple: tuple.iter().map(|n| n.0).collect(),
        witness: w,
    }
}

/// A negative claim `D ⊭ Q(ā)`.
pub fn fails_claim(q: &Cq, tuple: &[Node]) -> FailsClaim {
    FailsClaim {
        query: query_spec(q),
        tuple: tuple.iter().map(|n| n.0).collect(),
    }
}

/// One recorded chase firing.
pub fn firing_spec(f: &Firing) -> FiringSpec {
    FiringSpec {
        stage: f.stage,
        rule: f.tgd,
        assignment: f.assignment.iter().map(|&(v, n)| (v.0, n.0)).collect(),
    }
}

/// A full chase-trace certificate from a recorded run ([`ChaseRun::firings`]
/// non-empty requires the engine ran `with_recording(true)`; an empty
/// firing list is fine for a start structure that is already a fixpoint).
pub fn chase_trace(
    sig: &Signature,
    tgds: &[Tgd],
    start: &Structure,
    run: &ChaseRun,
    goal: Option<HoldsClaim>,
) -> Certificate {
    Certificate::ChaseTrace {
        sig: sig_spec(sig),
        rules: tgds.iter().map(rule_spec).collect(),
        start: struct_spec(start),
        firings: run.firings.iter().map(firing_spec).collect(),
        final_atoms: run.structure.atom_count(),
        final_nodes: run.structure.node_count(),
        goal,
    }
}
