//! # cqfd-cert — machine-checkable proof certificates
//!
//! Every verdict the toolbox produces — "the views determine `Q0`", "this
//! lasso chase reaches the 1-2 pattern", "`M̂` is a finite counter-model",
//! "the rainworm creeps for ≥ k steps" — is constructive: behind it sits a
//! witness homomorphism, a chase derivation, an explicit finite model, or a
//! replayable run. This crate turns those witnesses into **certificates**:
//! self-contained values with a line-oriented text encoding
//! ([`encode`]/[`parse`] round-trip) and an independent checker
//! ([`check`]) that re-validates a claim *without* the search machinery
//! that produced it.
//!
//! The trust story is deliberately asymmetric:
//!
//! * **Producers** (the oracle, the chase, the separating example, the
//!   countermodel construction) may use arbitrary search, heuristics and
//!   indexes. They live in other crates and convert their native types via
//!   [`convert`] / [`emit`].
//! * **The checker** ([`check`]) is a small trusted kernel: atom lookup,
//!   substitution, and TGD-satisfaction by plain enumeration. It shares no
//!   code with `cqfd_core::hom` — a bug in the backtracking join cannot
//!   hide in the audit path. Every check is low polynomial in the
//!   certificate size.
//!
//! The key design point is in [`Certificate::ChaseTrace`]: each recorded
//! trigger carries its **full** body-variable assignment (not just the
//! frontier), so replaying a derivation needs only substitution and set
//! membership — the checker never searches for a homomorphism to validate
//! one. Soundness does not require re-deciding the lazy chase's
//! "already satisfied" skips: the replay proves every added atom is a
//! consequence of the start structure under the rules, which is exactly
//! what the goal claim needs.
//!
//! ```
//! use cqfd_cert::{check, encode, parse, AtomSpec, Certificate, HoldsClaim,
//!     PatAtom, QuerySpec, SigSpec, StructSpec, TermSpec};
//!
//! // "E(x,y) holds at (0,1) in the 2-node structure {E(0,1)}".
//! let cert = Certificate::HomWitness {
//!     sig: SigSpec { preds: vec![("E".into(), 2)], consts: vec![] },
//!     structure: StructSpec {
//!         nodes: 2,
//!         pins: vec![],
//!         atoms: vec![AtomSpec { pred: 0, args: vec![0, 1] }],
//!     },
//!     claim: HoldsClaim {
//!         query: QuerySpec {
//!             name: "Q".into(),
//!             free: vec![0, 1],
//!             body: vec![PatAtom {
//!                 pred: 0,
//!                 terms: vec![TermSpec::Var(0), TermSpec::Var(1)],
//!             }],
//!         },
//!         tuple: vec![0, 1],
//!         witness: vec![(0, 0), (1, 1)],
//!     },
//! };
//! let text = encode(&cert);
//! assert_eq!(parse(&text).unwrap(), cert);
//! assert!(check(&cert).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod convert;
pub mod emit;
pub mod encode;
pub mod parse;

pub use check::{check, CheckReport};
pub use encode::{
    encode, firing_line, stage_log_prelude, stage_log_prelude_with_meta, stage_mark_line,
};
pub use parse::{parse, parse_stage_log, StageLog, StageMark};

/// A signature by value: predicate `(name, arity)` pairs and constant
/// names, both indexed by position. Certificates are self-describing, so
/// they carry their signature instead of referencing an interned
/// [`cqfd_core::Signature`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigSpec {
    /// Predicates, in id order; atoms refer to them by index.
    pub preds: Vec<(String, usize)>,
    /// Constants, in id order; pins and terms refer to them by index.
    pub consts: Vec<String>,
}

/// A ground atom `pred(args…)` over node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    /// Index into [`SigSpec::preds`].
    pub pred: usize,
    /// Node ids.
    pub args: Vec<u32>,
}

/// A finite structure by value: a node count, constant pins, and atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructSpec {
    /// Number of allocated nodes; node ids are `0..nodes`.
    pub nodes: u32,
    /// `(constant index, node)` pins.
    pub pins: Vec<(usize, u32)>,
    /// The atoms, in insertion order.
    pub atoms: Vec<AtomSpec>,
}

/// A term in a rule or query atom: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermSpec {
    /// Variable, by numeric id.
    Var(u32),
    /// Constant, by index into [`SigSpec::consts`].
    Const(usize),
}

/// A non-ground atom `pred(terms…)` in a rule body/head or query body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatAtom {
    /// Index into [`SigSpec::preds`].
    pub pred: usize,
    /// The argument terms.
    pub terms: Vec<TermSpec>,
}

/// A TGD `∀x̄ [body ⇒ ∃z̄ head]` by value. Variables occurring in the head
/// but not the body are existential; the checker re-derives that split
/// itself (sorted ascending, matching [`cqfd_chase::Tgd`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Rule name (cosmetic, kept for error messages).
    pub name: String,
    /// Body atoms.
    pub body: Vec<PatAtom>,
    /// Head atoms.
    pub head: Vec<PatAtom>,
}

/// A conjunctive query by value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Query name (cosmetic).
    pub name: String,
    /// Free variables, in answer-tuple order. Empty for boolean queries.
    pub free: Vec<u32>,
    /// Body atoms.
    pub body: Vec<PatAtom>,
}

/// A positive claim `D |= Q(ā)`, with the witness assignment that proves
/// it. Checking is pure substitution + atom lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldsClaim {
    /// The query.
    pub query: QuerySpec,
    /// The answer tuple `ā` (one node per free variable).
    pub tuple: Vec<u32>,
    /// A full assignment of the query's body variables, sorted by
    /// variable, agreeing with `tuple` on the free variables.
    pub witness: Vec<(u32, u32)>,
}

/// A negative claim `D ⊭ Q(ā)`. The checker verifies it by its own
/// exhaustive enumeration over the (finite) structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailsClaim {
    /// The query.
    pub query: QuerySpec,
    /// The answer tuple `ā` (empty for boolean queries).
    pub tuple: Vec<u32>,
}

/// One applied chase trigger: which rule fired, at which stage, under
/// which **full** body assignment (sorted by variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringSpec {
    /// 1-based stage of the application.
    pub stage: usize,
    /// Index into the certificate's rule list.
    pub rule: usize,
    /// The body match, sorted by variable id.
    pub assignment: Vec<(u32, u32)>,
}

/// A proof certificate for one verdict. See the module docs for the trust
/// model; [`check`] validates every variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// An explicit homomorphism proving `D |= Q(ā)`.
    HomWitness {
        /// The signature everything below is over.
        sig: SigSpec,
        /// The target structure `D`.
        structure: StructSpec,
        /// The claim and its witness map.
        claim: HoldsClaim,
    },
    /// A replayable chase derivation: starting structure, rules, and the
    /// exact sequence of trigger firings. Replaying deterministically
    /// regenerates the result (atom and node counts are cross-checked),
    /// and the optional goal claim is then validated in the replayed
    /// structure. This certifies e.g. "red(Q0) is a consequence of
    /// green(A[Q0]) under T_Q" — the *Determined* verdict.
    ChaseTrace {
        /// The signature.
        sig: SigSpec,
        /// The TGDs, referenced by [`FiringSpec::rule`].
        rules: Vec<RuleSpec>,
        /// The starting structure `chase₀`.
        start: StructSpec,
        /// The applied triggers, in application order.
        firings: Vec<FiringSpec>,
        /// Expected distinct-atom count after replay.
        final_atoms: usize,
        /// Expected node count after replay.
        final_nodes: u32,
        /// An optional claim to validate in the replayed structure.
        goal: Option<HoldsClaim>,
    },
    /// A finite structure together with the claim that it models a rule
    /// set, plus positive and negative query claims — the shape of the
    /// Theorem 14 separation artifacts and the §VIII.E counter-models.
    FiniteModel {
        /// The signature.
        sig: SigSpec,
        /// Rules the structure is claimed to satisfy (may be empty).
        rules: Vec<RuleSpec>,
        /// The model.
        structure: StructSpec,
        /// Claims that must hold (each with a witness).
        holds: Vec<HoldsClaim>,
        /// Claims that must fail (checked exhaustively).
        fails: Vec<FailsClaim>,
    },
    /// A replayable rainworm run: the instruction set `∆` and
    /// configurations at checkpoints. The checker re-validates every
    /// checkpoint against Definition 19 and re-creeps the gaps.
    CreepTrace {
        /// The instruction lines of `∆` (the `cqfd_rainworm::parse`
        /// textual format, one instruction per line).
        delta: Vec<String>,
        /// `(step index, configuration)` pairs, step 0 first; the
        /// configuration is the space-separated symbol rendering.
        checkpoints: Vec<(usize, String)>,
        /// `true`: the run halts exactly at the last checkpoint.
        /// `false`: the worm is still creeping there (claim "≥ k steps").
        halted: bool,
    },
    /// An exhausted-search **attestation**: no witness exists within the
    /// stated bound. Unlike the other variants this is not independently
    /// re-derivable in polynomial time — the checker validates only
    /// well-formedness and flags the report as attestation-only.
    NonHomRefutation {
        /// The signature the search ranged over.
        sig: SigSpec,
        /// What was searched (human-readable, e.g. the exhausted verdict).
        what: String,
        /// The bound that was exhausted (stages, nodes, …).
        bound: u64,
        /// Search nodes explored, as reported by the producer.
        explored: u64,
    },
}

impl Certificate {
    /// The certificate kind as its lowercase header token.
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::HomWitness { .. } => "hom-witness",
            Certificate::ChaseTrace { .. } => "chase-trace",
            Certificate::FiniteModel { .. } => "finite-model",
            Certificate::CreepTrace { .. } => "creep-trace",
            Certificate::NonHomRefutation { .. } => "non-hom-refutation",
        }
    }
}
