//! The line-oriented text encoding of certificates.
//!
//! The format is self-describing and hand-rolled (the build environment is
//! offline; see `cqfd_core::parse` for the house grammar style). One
//! statement per line, first token is the keyword; names are
//! double-quoted with `\"`/`\\` escapes, everything else is bare tokens.
//! A file starts with `cqfd-cert v1 <kind>` and ends with a lone `end` —
//! a truncated certificate never parses.

use crate::{
    Certificate, FailsClaim, FiringSpec, HoldsClaim, PatAtom, RuleSpec, SigSpec, StructSpec,
    TermSpec,
};
use std::fmt::Write as _;

/// Quotes a name for the wire: `"…"` with `\` and `"` escaped.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

fn term(t: &TermSpec) -> String {
    match t {
        TermSpec::Var(v) => format!("v{v}"),
        TermSpec::Const(c) => format!("c{c}"),
    }
}

fn num_list(xs: &[u32]) -> String {
    xs.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
}

fn push_pairs(line: &mut String, pairs: &[(u32, u32)]) {
    for (v, n) in pairs {
        let _ = write!(line, " v{v}={n}");
    }
}

fn push_sig(out: &mut String, sig: &SigSpec) {
    for (name, arity) in &sig.preds {
        let _ = writeln!(out, "pred {} {arity}", quote(name));
    }
    for name in &sig.consts {
        let _ = writeln!(out, "const {}", quote(name));
    }
}

fn push_pat_atoms(out: &mut String, keyword: &str, atoms: &[PatAtom]) {
    for a in atoms {
        let terms: Vec<String> = a.terms.iter().map(term).collect();
        let _ = writeln!(out, "{keyword} {} {}", a.pred, terms.join(" "));
    }
}

fn push_rules(out: &mut String, rules: &[RuleSpec]) {
    for r in rules {
        let _ = writeln!(out, "rule {}", quote(&r.name));
        push_pat_atoms(out, "rbody", &r.body);
        push_pat_atoms(out, "rhead", &r.head);
    }
}

fn push_structure(out: &mut String, st: &StructSpec) {
    let _ = writeln!(out, "nodes {}", st.nodes);
    for (c, n) in &st.pins {
        let _ = writeln!(out, "pin {c} {n}");
    }
    for a in &st.atoms {
        let args: Vec<String> = a.args.iter().map(u32::to_string).collect();
        let _ = writeln!(out, "atom {} {}", a.pred, args.join(" "));
    }
}

/// Opens a claim block: `<keyword> "<name>" free=… tuple=…` + `qatom`s.
fn push_claim_header(out: &mut String, keyword: &str, q: &crate::QuerySpec, tuple: &[u32]) {
    let _ = writeln!(
        out,
        "{keyword} {} free={} tuple={}",
        quote(&q.name),
        num_list(&q.free),
        num_list(tuple)
    );
    push_pat_atoms(out, "qatom", &q.body);
}

fn push_holds(out: &mut String, keyword: &str, c: &HoldsClaim) {
    push_claim_header(out, keyword, &c.query, &c.tuple);
    let mut line = String::from("witness");
    push_pairs(&mut line, &c.witness);
    let _ = writeln!(out, "{line}");
}

fn push_fails(out: &mut String, c: &FailsClaim) {
    push_claim_header(out, "fails", &c.query, &c.tuple);
    let _ = writeln!(out, "qend");
}

fn push_firings(out: &mut String, firings: &[FiringSpec]) {
    for f in firings {
        let mut line = format!("fire {} {}", f.stage, f.rule);
        push_pairs(&mut line, &f.assignment);
        let _ = writeln!(out, "{line}");
    }
}

/// The header + prelude of a write-ahead stage log: `cqfd-cert v1
/// stage-log`, the signature, the rules, and the chase start structure.
/// Stage appends ([`firing_line`] + [`stage_mark_line`]) follow; a clean
/// `end\n` closes a concluded run. [`crate::parse::parse_stage_log`]
/// inverts the format.
pub fn stage_log_prelude(sig: &SigSpec, rules: &[RuleSpec], start: &StructSpec) -> String {
    stage_log_prelude_with_meta(sig, rules, start, &[])
}

/// [`stage_log_prelude`] with a `meta key=value …` annotation line right
/// after the header. The executor stamps the dispatch mode and fragment
/// verdict here, so a resume can refuse a log produced under a different
/// routing regime (the replayed stage history would be valid but the
/// budget it was committed under would not match). An empty `meta` emits
/// no line, keeping the output byte-identical to [`stage_log_prelude`].
pub fn stage_log_prelude_with_meta(
    sig: &SigSpec,
    rules: &[RuleSpec],
    start: &StructSpec,
    meta: &[(&str, &str)],
) -> String {
    let mut out = String::from("cqfd-cert v1 stage-log\n");
    if !meta.is_empty() {
        out.push_str("meta");
        for (k, v) in meta {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    push_sig(&mut out, sig);
    push_rules(&mut out, rules);
    push_structure(&mut out, start);
    out
}

/// One `fire` line (newline-terminated) in stage-log / chase-trace form.
pub fn firing_line(f: &FiringSpec) -> String {
    let mut line = format!("fire {} {}", f.stage, f.rule);
    push_pairs(&mut line, &f.assignment);
    line.push('\n');
    line
}

/// One `stage` mark line (newline-terminated) committing a stage's
/// firings to the log.
pub fn stage_mark_line(
    stage: usize,
    applications: usize,
    atoms_after: usize,
    nodes_after: u32,
) -> String {
    format!("stage {stage} {applications} {atoms_after} {nodes_after}\n")
}

/// Encodes a certificate to its textual form (always newline-terminated).
///
/// [`crate::parse`] inverts this exactly: `parse(encode(c)) == c`.
pub fn encode(cert: &Certificate) -> String {
    let mut out = format!("cqfd-cert v1 {}\n", cert.kind());
    match cert {
        Certificate::HomWitness {
            sig,
            structure,
            claim,
        } => {
            push_sig(&mut out, sig);
            push_structure(&mut out, structure);
            push_holds(&mut out, "holds", claim);
        }
        Certificate::ChaseTrace {
            sig,
            rules,
            start,
            firings,
            final_atoms,
            final_nodes,
            goal,
        } => {
            push_sig(&mut out, sig);
            push_rules(&mut out, rules);
            push_structure(&mut out, start);
            push_firings(&mut out, firings);
            let _ = writeln!(out, "final {final_atoms} {final_nodes}");
            if let Some(g) = goal {
                push_holds(&mut out, "goal", g);
            }
        }
        Certificate::FiniteModel {
            sig,
            rules,
            structure,
            holds,
            fails,
        } => {
            push_sig(&mut out, sig);
            push_rules(&mut out, rules);
            push_structure(&mut out, structure);
            for c in holds {
                push_holds(&mut out, "holds", c);
            }
            for c in fails {
                push_fails(&mut out, c);
            }
        }
        Certificate::CreepTrace {
            delta,
            checkpoints,
            halted,
        } => {
            for line in delta {
                let _ = writeln!(out, "delta {}", quote(line));
            }
            for (step, word) in checkpoints {
                let _ = writeln!(out, "checkpoint {step} {word}");
            }
            let _ = writeln!(out, "halted {halted}");
        }
        Certificate::NonHomRefutation {
            sig,
            what,
            bound,
            explored,
        } => {
            push_sig(&mut out, sig);
            let _ = writeln!(
                out,
                "attest {} bound={bound} explored={explored}",
                quote(what)
            );
        }
    }
    out.push_str("end\n");
    out
}
