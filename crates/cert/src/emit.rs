//! High-level certificate emitters for the rainworm constructions.
//!
//! These live here (rather than in `cqfd-rainworm`) to keep the dependency
//! arrow pointing one way: certificates know about worms, worms do not
//! know about certificates.

use crate::convert::{rule_spec, sig_spec, struct_spec};
use crate::{Certificate, FailsClaim, HoldsClaim, PatAtom, QuerySpec, TermSpec};
use cqfd_greengraph::{L2System, Label};
use cqfd_rainworm::config::Config;
use cqfd_rainworm::countermodel::Countermodel;
use cqfd_rainworm::parse::render_delta;
use cqfd_rainworm::run::step;
use cqfd_rainworm::to_rules::tm_rules;
use cqfd_rainworm::Delta;

/// A replayable creep trace from the initial configuration `αη11`:
/// checkpoints every `interval` steps (plus step 0 and the final step),
/// claiming a halt if one occurs within `max_steps`, and "still creeping"
/// otherwise.
pub fn creep_certificate(delta: &Delta, max_steps: usize, interval: usize) -> Certificate {
    let interval = interval.max(1);
    let mut checkpoints: Vec<(usize, String)> = Vec::new();
    let mut current = Config::initial();
    checkpoints.push((0, current.to_string()));
    let mut at = 0usize;
    let mut halted = false;
    while at < max_steps {
        match step(delta, &current) {
            Some(next) => {
                current = next;
                at += 1;
                if at.is_multiple_of(interval) {
                    checkpoints.push((at, current.to_string()));
                }
            }
            None => {
                halted = true;
                break;
            }
        }
    }
    if checkpoints.last().map(|&(s, _)| s) != Some(at) {
        checkpoints.push((at, current.to_string()));
    }
    Certificate::CreepTrace {
        delta: render_delta(delta).lines().map(str::to_owned).collect(),
        checkpoints,
        halted,
    }
}

/// The boolean 1-2-pattern query `∃x,x′,y H₁(x,y) ∧ H₂(x′,y)`
/// (Definition 11) over the given space, as a spec.
fn pattern_query(space: &cqfd_greengraph::LabelSpace) -> QuerySpec {
    let one = space.pred(Label::ONE).0 as usize;
    let two = space.pred(Label::TWO).0 as usize;
    QuerySpec {
        name: "pattern12".into(),
        free: vec![],
        body: vec![
            PatAtom {
                pred: one,
                terms: vec![TermSpec::Var(0), TermSpec::Var(2)],
            },
            PatAtom {
                pred: two,
                terms: vec![TermSpec::Var(1), TermSpec::Var(2)],
            },
        ],
    }
}

/// A [`Certificate::FiniteModel`] for a §VIII.E counter-model: `M̂` models
/// `T_M∆ ∪ T□`, contains `DI` (witnessed), and has **no** 1-2 pattern
/// (checked exhaustively) — the constructive content of Lemma 24's "⇐"
/// direction for a halting worm.
pub fn countermodel_certificate(delta: &Delta, grid: &L2System, cm: &Countermodel) -> Certificate {
    let space = cm.m_hat.space();
    let st = cm.m_hat.structure();
    let rules = tm_rules(delta)
        .union(grid)
        .tgds(space)
        .iter()
        .map(rule_spec)
        .collect();
    // DI containment: H∅(a, b), a ground boolean claim with no variables.
    let di = HoldsClaim {
        query: QuerySpec {
            name: "di".into(),
            free: vec![],
            body: vec![PatAtom {
                pred: space.pred(Label::Empty).0 as usize,
                terms: vec![
                    TermSpec::Const(space.a().0 as usize),
                    TermSpec::Const(space.b().0 as usize),
                ],
            }],
        },
        tuple: vec![],
        witness: vec![],
    };
    let no_pattern = FailsClaim {
        query: pattern_query(space),
        tuple: vec![],
    };
    Certificate::FiniteModel {
        sig: sig_spec(space.signature()),
        rules,
        structure: struct_spec(st),
        holds: vec![di],
        fails: vec![no_pattern],
    }
}

/// A [`Certificate::FiniteModel`] asserting that a (chased) green graph
/// **contains** the 1-2 pattern, with the witness edges spelled out — the
/// positive half of the Theorem 14 separation.
pub fn pattern_certificate(g: &cqfd_greengraph::GreenGraph) -> Option<Certificate> {
    let (x, xp, y) = g.find_12_pattern()?;
    Some(Certificate::FiniteModel {
        sig: sig_spec(g.space().signature()),
        rules: vec![],
        structure: struct_spec(g.structure()),
        holds: vec![HoldsClaim {
            query: pattern_query(g.space()),
            tuple: vec![],
            witness: vec![(0, x.0), (1, xp.0), (2, y.0)],
        }],
        fails: vec![],
    })
}
