//! Parsing the certificate text format back into a [`Certificate`].
//!
//! Exact inverse of [`crate::encode`]: statement order is preserved, so
//! `parse(encode(c)) == c`. Errors carry the 1-based line number. This
//! module checks *syntax* only (plus block nesting); semantic validity —
//! index ranges, arities, witness correctness — is [`crate::check`]'s job.

use crate::{
    AtomSpec, Certificate, FailsClaim, FiringSpec, HoldsClaim, PatAtom, QuerySpec, RuleSpec,
    SigSpec, StructSpec, TermSpec,
};

/// Splits a line into tokens; double-quoted tokens may contain spaces,
/// with `\"` and `\\` escapes.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut tok = String::new();
            loop {
                match chars.next() {
                    None => return Err("unterminated quote".into()),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some(e @ ('"' | '\\')) => tok.push(e),
                        _ => return Err("bad escape in quoted token".into()),
                    },
                    Some(other) => tok.push(other),
                }
            }
            out.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                tok.push(c);
                chars.next();
            }
            out.push(tok);
        }
    }
    Ok(out)
}

fn parse_u32(tok: &str) -> Result<u32, String> {
    tok.parse::<u32>()
        .map_err(|_| format!("bad number {tok:?}"))
}

fn parse_usize(tok: &str) -> Result<usize, String> {
    tok.parse::<usize>()
        .map_err(|_| format!("bad number {tok:?}"))
}

fn parse_term(tok: &str) -> Result<TermSpec, String> {
    if let Some(v) = tok.strip_prefix('v') {
        return Ok(TermSpec::Var(parse_u32(v)?));
    }
    if let Some(c) = tok.strip_prefix('c') {
        return Ok(TermSpec::Const(parse_usize(c)?));
    }
    Err(format!("bad term {tok:?} (want v<N> or c<N>)"))
}

/// `v<N>=<node>` pairs (witnesses, firing assignments).
fn parse_pairs(toks: &[String]) -> Result<Vec<(u32, u32)>, String> {
    toks.iter()
        .map(|t| {
            let (lhs, rhs) = t
                .split_once('=')
                .ok_or_else(|| format!("bad binding {t:?} (want v<N>=<node>)"))?;
            let v = lhs
                .strip_prefix('v')
                .ok_or_else(|| format!("bad binding {t:?} (want v<N>=<node>)"))?;
            Ok((parse_u32(v)?, parse_u32(rhs)?))
        })
        .collect()
}

/// `<key>=<n>,<n>,…` (possibly empty after `=`).
fn parse_num_list(tok: &str, key: &str) -> Result<Vec<u32>, String> {
    let body = tok
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got {tok:?}"))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',').map(parse_u32).collect()
}

fn parse_pat_atom(toks: &[String]) -> Result<PatAtom, String> {
    let (pred, terms) = toks
        .split_first()
        .ok_or_else(|| "missing predicate index".to_string())?;
    Ok(PatAtom {
        pred: parse_usize(pred)?,
        terms: terms
            .iter()
            .map(|t| parse_term(t))
            .collect::<Result<_, _>>()?,
    })
}

/// An open `holds`/`goal`/`fails` block being accumulated.
struct OpenClaim {
    keyword: &'static str,
    query: QuerySpec,
    tuple: Vec<u32>,
}

/// Everything the statement loop accumulates, assembled per kind at `end`.
#[derive(Default)]
struct Builder {
    preds: Vec<(String, usize)>,
    consts: Vec<String>,
    rules: Vec<RuleSpec>,
    structure: Option<StructSpec>,
    firings: Vec<FiringSpec>,
    final_counts: Option<(usize, u32)>,
    holds: Vec<HoldsClaim>,
    fails: Vec<FailsClaim>,
    goal: Option<HoldsClaim>,
    open: Option<OpenClaim>,
    delta: Vec<String>,
    checkpoints: Vec<(usize, String)>,
    halted: Option<bool>,
    attest: Option<(String, u64, u64)>,
}

impl Builder {
    fn structure_mut(&mut self) -> Result<&mut StructSpec, String> {
        self.structure
            .as_mut()
            .ok_or_else(|| "statement before a `nodes` line".to_string())
    }

    fn open_claim(&mut self, keyword: &'static str, toks: &[String]) -> Result<(), String> {
        if self.open.is_some() {
            return Err("previous claim block not closed".into());
        }
        let [name, free, tuple] = toks else {
            return Err(format!("{keyword} wants: name free=… tuple=…"));
        };
        self.open = Some(OpenClaim {
            keyword,
            query: QuerySpec {
                name: name.clone(),
                free: parse_num_list(free, "free")?,
                body: Vec::new(),
            },
            tuple: parse_num_list(tuple, "tuple")?,
        });
        Ok(())
    }

    fn close_claim(&mut self, witness: Option<Vec<(u32, u32)>>) -> Result<(), String> {
        let open = self
            .open
            .take()
            .ok_or_else(|| "no open claim block".to_string())?;
        match (open.keyword, witness) {
            ("holds", Some(w)) => self.holds.push(HoldsClaim {
                query: open.query,
                tuple: open.tuple,
                witness: w,
            }),
            ("goal", Some(w)) => {
                if self.goal.is_some() {
                    return Err("duplicate goal".into());
                }
                self.goal = Some(HoldsClaim {
                    query: open.query,
                    tuple: open.tuple,
                    witness: w,
                });
            }
            ("fails", None) => self.fails.push(FailsClaim {
                query: open.query,
                tuple: open.tuple,
            }),
            (kw, Some(_)) => return Err(format!("`{kw}` block must close with qend")),
            (kw, None) => return Err(format!("`{kw}` block must close with witness")),
        }
        Ok(())
    }

    fn statement(&mut self, keyword: &str, rest: &[String]) -> Result<(), String> {
        match keyword {
            "pred" => {
                let [name, arity] = rest else {
                    return Err("pred wants: name arity".into());
                };
                self.preds.push((name.clone(), parse_usize(arity)?));
            }
            "const" => {
                let [name] = rest else {
                    return Err("const wants: name".into());
                };
                self.consts.push(name.clone());
            }
            "rule" => {
                let [name] = rest else {
                    return Err("rule wants: name".into());
                };
                self.rules.push(RuleSpec {
                    name: name.clone(),
                    body: Vec::new(),
                    head: Vec::new(),
                });
            }
            "rbody" | "rhead" => {
                let atom = parse_pat_atom(rest)?;
                let rule = self
                    .rules
                    .last_mut()
                    .ok_or_else(|| format!("{keyword} before any rule"))?;
                if keyword == "rbody" {
                    rule.body.push(atom);
                } else {
                    rule.head.push(atom);
                }
            }
            "nodes" => {
                let [n] = rest else {
                    return Err("nodes wants: count".into());
                };
                if self.structure.is_some() {
                    return Err("duplicate nodes line".into());
                }
                self.structure = Some(StructSpec {
                    nodes: parse_u32(n)?,
                    pins: Vec::new(),
                    atoms: Vec::new(),
                });
            }
            "pin" => {
                let [c, n] = rest else {
                    return Err("pin wants: const node".into());
                };
                let pin = (parse_usize(c)?, parse_u32(n)?);
                self.structure_mut()?.pins.push(pin);
            }
            "atom" => {
                let (pred, args) = rest
                    .split_first()
                    .ok_or_else(|| "atom wants: pred nodes…".to_string())?;
                let atom = AtomSpec {
                    pred: parse_usize(pred)?,
                    args: args
                        .iter()
                        .map(|t| parse_u32(t))
                        .collect::<Result<_, _>>()?,
                };
                self.structure_mut()?.atoms.push(atom);
            }
            "fire" => {
                let (stage_rule, pairs) = rest.split_at(2.min(rest.len()));
                let [stage, rule] = stage_rule else {
                    return Err("fire wants: stage rule bindings…".into());
                };
                self.firings.push(FiringSpec {
                    stage: parse_usize(stage)?,
                    rule: parse_usize(rule)?,
                    assignment: parse_pairs(pairs)?,
                });
            }
            "final" => {
                let [atoms, nodes] = rest else {
                    return Err("final wants: atoms nodes".into());
                };
                self.final_counts = Some((parse_usize(atoms)?, parse_u32(nodes)?));
            }
            "holds" => self.open_claim("holds", rest)?,
            "goal" => self.open_claim("goal", rest)?,
            "fails" => self.open_claim("fails", rest)?,
            "qatom" => {
                let atom = parse_pat_atom(rest)?;
                self.open
                    .as_mut()
                    .ok_or_else(|| "qatom outside a claim block".to_string())?
                    .query
                    .body
                    .push(atom);
            }
            "witness" => self.close_claim(Some(parse_pairs(rest)?))?,
            "qend" => {
                if !rest.is_empty() {
                    return Err("qend takes no arguments".into());
                }
                self.close_claim(None)?;
            }
            "delta" => {
                let [line] = rest else {
                    return Err("delta wants: one quoted instruction".into());
                };
                self.delta.push(line.clone());
            }
            "checkpoint" => {
                let (step, syms) = rest
                    .split_first()
                    .ok_or_else(|| "checkpoint wants: step symbols…".to_string())?;
                self.checkpoints.push((parse_usize(step)?, syms.join(" ")));
            }
            "halted" => {
                let halted = match rest {
                    [t] if t == "true" => true,
                    [t] if t == "false" => false,
                    _ => return Err("halted wants: true|false".into()),
                };
                self.halted = Some(halted);
            }
            "attest" => {
                let [what, bound, explored] = rest else {
                    return Err("attest wants: what bound=… explored=…".into());
                };
                let bound = bound
                    .strip_prefix("bound=")
                    .ok_or_else(|| "attest wants bound=<n>".to_string())?
                    .parse::<u64>()
                    .map_err(|_| "bad bound".to_string())?;
                let explored = explored
                    .strip_prefix("explored=")
                    .ok_or_else(|| "attest wants explored=<n>".to_string())?
                    .parse::<u64>()
                    .map_err(|_| "bad explored".to_string())?;
                self.attest = Some((what.clone(), bound, explored));
            }
            other => return Err(format!("unknown keyword {other:?}")),
        }
        Ok(())
    }

    fn sig(&mut self) -> SigSpec {
        SigSpec {
            preds: std::mem::take(&mut self.preds),
            consts: std::mem::take(&mut self.consts),
        }
    }

    fn finish(mut self, kind: &str) -> Result<Certificate, String> {
        if self.open.is_some() {
            return Err("unclosed claim block at end".into());
        }
        let missing = |what: &str| format!("{kind} certificate is missing its {what}");
        match kind {
            "hom-witness" => {
                let sig = self.sig();
                let structure = self.structure.ok_or_else(|| missing("structure"))?;
                let mut holds = self.holds;
                if holds.len() != 1 {
                    return Err("hom-witness wants exactly one holds claim".into());
                }
                Ok(Certificate::HomWitness {
                    sig,
                    structure,
                    claim: holds.remove(0),
                })
            }
            "chase-trace" => {
                let sig = self.sig();
                let start = self.structure.ok_or_else(|| missing("start structure"))?;
                let (final_atoms, final_nodes) =
                    self.final_counts.ok_or_else(|| missing("final line"))?;
                Ok(Certificate::ChaseTrace {
                    sig,
                    rules: self.rules,
                    start,
                    firings: self.firings,
                    final_atoms,
                    final_nodes,
                    goal: self.goal,
                })
            }
            "finite-model" => {
                let sig = self.sig();
                let structure = self.structure.ok_or_else(|| missing("structure"))?;
                Ok(Certificate::FiniteModel {
                    sig,
                    rules: self.rules,
                    structure,
                    holds: self.holds,
                    fails: self.fails,
                })
            }
            "creep-trace" => Ok(Certificate::CreepTrace {
                delta: self.delta,
                checkpoints: self.checkpoints,
                halted: self.halted.ok_or_else(|| missing("halted line"))?,
            }),
            "non-hom-refutation" => {
                let sig = self.sig();
                let (what, bound, explored) = self.attest.ok_or_else(|| missing("attest line"))?;
                Ok(Certificate::NonHomRefutation {
                    sig,
                    what,
                    bound,
                    explored,
                })
            }
            other => Err(format!("unknown certificate kind {other:?}")),
        }
    }
}

/// One committed stage boundary in a write-ahead stage log: the stage
/// number and the chase counters after applying that stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMark {
    /// 1-based stage number.
    pub stage: usize,
    /// Trigger applications in the stage.
    pub applications: usize,
    /// Distinct atoms after the stage.
    pub atoms_after: usize,
    /// Allocated nodes after the stage.
    pub nodes_after: u32,
}

/// A parsed write-ahead stage log (`cqfd-cert v1 stage-log`).
///
/// The log shares its statement grammar with [`Certificate::ChaseTrace`]:
/// a signature, the rules, the start structure, then per committed stage
/// its `fire` lines followed by a `stage <n> <applications> <atoms_after>
/// <nodes_after>` mark. A crash can tear the final append, so the parser
/// tolerates a torn tail: anything after the last complete stage mark is
/// dropped, and [`StageLog::valid_bytes`] is the byte length of the
/// surviving prefix (truncate to it before appending more stages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLog {
    /// `key=value` annotations from the optional `meta` line after the
    /// header (e.g. the dispatch mode the log was written under). Empty
    /// for logs that predate the line.
    pub meta: Vec<(String, String)>,
    /// The signature the log is over.
    pub sig: SigSpec,
    /// The TGDs, referenced by [`FiringSpec::rule`].
    pub rules: Vec<RuleSpec>,
    /// The chase start structure.
    pub start: StructSpec,
    /// Committed firings (stage ≤ the last complete mark).
    pub firings: Vec<FiringSpec>,
    /// The committed stage marks, in order.
    pub stages: Vec<StageMark>,
    /// True when the log ends with a clean `end` line (run concluded).
    pub complete: bool,
    /// Byte length of the longest valid prefix; reopen-and-append after
    /// truncating the file to this length.
    pub valid_bytes: usize,
}

fn parse_stage_mark(rest: &[String], expected: usize) -> Result<StageMark, String> {
    let [n, apps, atoms, nodes] = rest else {
        return Err("stage wants: n applications atoms_after nodes_after".to_string());
    };
    let mark = StageMark {
        stage: parse_usize(n)?,
        applications: parse_usize(apps)?,
        atoms_after: parse_usize(atoms)?,
        nodes_after: parse_u32(nodes)?,
    };
    if mark.stage != expected {
        return Err(format!(
            "stage mark {} out of order (expected {expected})",
            mark.stage
        ));
    }
    Ok(mark)
}

/// Parses a write-ahead stage log, tolerating a torn tail (see
/// [`StageLog`]). A log whose prelude (signature / rules / start
/// structure) is itself damaged does not parse at all — resume then falls
/// back to a fresh chase.
pub fn parse_stage_log(text: &str) -> Result<StageLog, String> {
    let mut builder = Builder::default();
    let mut saw_header = false;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut stages: Vec<StageMark> = Vec::new();
    let mut complete = false;
    // Last committed state: (byte offset just past the line, #firings).
    let mut commit: (usize, usize) = (0, 0);
    let mut offset = 0usize;
    for (i, raw) in text.split_inclusive('\n').enumerate() {
        let line_end = offset + raw.len();
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        // A line the writer never terminated is torn by definition.
        let torn_newline = raw.len() == line.len();
        let at = |e: String| format!("line {}: {e}", i + 1);
        // Once the prelude is in place, any malformed line is a torn
        // tail, not an error: truncate to the last commit.
        let tail_ok = builder.structure.is_some();
        let toks = match tokenize(line) {
            Ok(t) => t,
            Err(e) if tail_ok => {
                let _ = e;
                break;
            }
            Err(e) => return Err(at(e)),
        };
        if toks.is_empty() {
            offset = line_end;
            continue;
        }
        if complete {
            return Err(at("trailing content after end".into()));
        }
        if !saw_header {
            let [magic, version, k] = toks.as_slice() else {
                return Err(at("expected header: cqfd-cert v1 stage-log".into()));
            };
            if magic != "cqfd-cert" || version != "v1" || k != "stage-log" {
                return Err(at(format!("not a stage log (header {line:?})")));
            }
            saw_header = true;
            offset = line_end;
            continue;
        }
        if torn_newline {
            if tail_ok {
                break;
            }
            return Err(at("unterminated line in prelude".into()));
        }
        let parsed: Result<(), String> = match toks[0].as_str() {
            "meta" => toks[1..].iter().try_for_each(|t| match t.split_once('=') {
                Some((k, v)) => {
                    meta.push((k.to_string(), v.to_string()));
                    Ok(())
                }
                None => Err(format!("meta wants key=value pairs, got `{t}`")),
            }),
            "end" => {
                if builder.firings.len() != commit.1 {
                    Err("end with uncommitted firings".into())
                } else {
                    complete = true;
                    commit = (line_end, builder.firings.len());
                    Ok(())
                }
            }
            "stage" => match parse_stage_mark(&toks[1..], stages.len() + 1) {
                Ok(mark) => {
                    stages.push(mark);
                    commit = (line_end, builder.firings.len());
                    Ok(())
                }
                Err(e) => Err(e),
            },
            kw => builder.statement(kw, &toks[1..]),
        };
        match parsed {
            Ok(()) => {
                // Prelude lines commit immediately (no fires pending yet).
                if builder.firings.len() == commit.1 && stages.is_empty() && !complete {
                    commit = (line_end, builder.firings.len());
                }
            }
            Err(e) if tail_ok => {
                let _ = e;
                break;
            }
            Err(e) => return Err(at(e)),
        }
        offset = line_end;
    }
    if !saw_header {
        return Err("empty stage log".to_string());
    }
    let start = builder
        .structure
        .ok_or_else(|| "stage log is missing its start structure".to_string())?;
    builder.firings.truncate(commit.1);
    Ok(StageLog {
        meta,
        sig: SigSpec {
            preds: builder.preds,
            consts: builder.consts,
        },
        rules: builder.rules,
        start,
        firings: builder.firings,
        stages,
        complete,
        valid_bytes: commit.0,
    })
}

/// Parses the textual certificate format (see [`crate::encode`]).
pub fn parse(text: &str) -> Result<Certificate, String> {
    let mut builder = Builder::default();
    let mut kind: Option<String> = None;
    let mut done = false;
    for (i, raw) in text.lines().enumerate() {
        let at = |e: String| format!("line {}: {e}", i + 1);
        let toks = tokenize(raw).map_err(at)?;
        if toks.is_empty() {
            continue; // blank lines are tolerated
        }
        if done {
            return Err(at("trailing content after end".into()));
        }
        let Some(k) = kind.as_deref() else {
            let [magic, version, k] = toks.as_slice() else {
                return Err(at("expected header: cqfd-cert v1 <kind>".into()));
            };
            if magic != "cqfd-cert" {
                return Err(at(format!("not a certificate (leads with {magic:?})")));
            }
            if version != "v1" {
                return Err(at(format!("unsupported certificate version {version:?}")));
            }
            kind = Some(k.clone());
            continue;
        };
        let _ = k;
        if toks[0] == "end" {
            done = true;
            continue;
        }
        builder.statement(&toks[0], &toks[1..]).map_err(at)?;
    }
    let kind = kind.ok_or_else(|| "empty certificate".to_string())?;
    if !done {
        return Err("truncated certificate: missing end line".into());
    }
    builder.finish(&kind)
}
