//! Certificate round-trips (property-based), checker acceptance on honest
//! certificates, and adversarial rejection of tampered ones.

use cqfd_cert::emit::{creep_certificate, pattern_certificate};
use cqfd_cert::{
    check, convert, encode, parse, AtomSpec, Certificate, FailsClaim, HoldsClaim, PatAtom,
    QuerySpec, SigSpec, StructSpec, TermSpec,
};
use cqfd_chase::{ChaseBudget, ChaseEngine, Tgd};
use cqfd_core::{Atom, Signature, Structure, Term, Var};
use cqfd_greengraph::{GreenGraph, Label, LabelSpace};
use cqfd_rainworm::families::{counter_worm, forever_worm};
use proptest::prelude::*;
use std::sync::Arc;

/// Splitmix-style generator so a single drawn seed yields a whole
/// certificate (the proptest shim has integer strategies only).
fn next(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A random signature + structure, plus one structure atom to anchor
/// claims on. Names include quotes/backslashes/spaces so the wire quoting
/// is exercised.
fn gen_world(seed: &mut u64) -> (SigSpec, StructSpec) {
    let npreds = 1 + (next(seed) % 3) as usize;
    let preds = (0..npreds)
        .map(|i| {
            let name = match i % 3 {
                0 => format!("P{i}"),
                1 => format!("H[⟨n,α,d̄,b̄⟩]{i}"),
                _ => format!("odd \"name\\{i}"),
            };
            (name, 1 + (next(seed) % 3) as usize)
        })
        .collect::<Vec<_>>();
    let nconsts = (next(seed) % 3) as usize;
    let consts: Vec<String> = (0..nconsts).map(|i| format!("k {i}")).collect();
    let nodes = 2 + (next(seed) % 5) as u32;
    let pins: Vec<(usize, u32)> = (0..nconsts).map(|i| (i, i as u32)).collect();
    let natoms = 1 + (next(seed) % 6) as usize;
    let atoms: Vec<AtomSpec> = (0..natoms)
        .map(|_| {
            let pred = (next(seed) as usize) % npreds;
            let arity = preds[pred].1;
            AtomSpec {
                pred,
                args: (0..arity).map(|_| (next(seed) as u32) % nodes).collect(),
            }
        })
        .collect();
    (SigSpec { preds, consts }, StructSpec { nodes, pins, atoms })
}

/// A claim that is true by construction: the canonical query of the
/// structure's first atom, witnessed by that atom.
fn anchored_claim(st: &StructSpec) -> HoldsClaim {
    let a0 = &st.atoms[0];
    let free: Vec<u32> = (0..a0.args.len() as u32).collect();
    HoldsClaim {
        query: QuerySpec {
            name: "anchor".into(),
            free: free.clone(),
            body: vec![PatAtom {
                pred: a0.pred,
                terms: free.iter().map(|&v| TermSpec::Var(v)).collect(),
            }],
        },
        tuple: a0.args.clone(),
        witness: free.iter().map(|&v| (v, a0.args[v as usize])).collect(),
    }
}

fn gen_hom_witness(mut seed: u64) -> Certificate {
    let (sig, structure) = gen_world(&mut seed);
    let claim = anchored_claim(&structure);
    Certificate::HomWitness {
        sig,
        structure,
        claim,
    }
}

fn gen_finite_model(mut seed: u64) -> Certificate {
    let (sig, structure) = gen_world(&mut seed);
    // One trivially-satisfied full TGD per predicate: P(x̄) ⇒ P(x̄).
    let rules = sig
        .preds
        .iter()
        .enumerate()
        .map(|(p, (name, arity))| {
            let atom = PatAtom {
                pred: p,
                terms: (0..*arity as u32).map(TermSpec::Var).collect(),
            };
            cqfd_cert::RuleSpec {
                name: format!("copy-{name}"),
                body: vec![atom.clone()],
                head: vec![atom],
            }
        })
        .collect();
    let holds = vec![anchored_claim(&structure)];
    // A ground tuple absent from the structure (exists because the
    // domain is larger than the atom list).
    let a0 = &structure.atoms[0];
    let arity = a0.args.len();
    let absent = (0..structure.nodes).map(|n| vec![n; arity]).find(|t| {
        structure
            .atoms
            .iter()
            .all(|a| a.pred != a0.pred || &a.args != t)
    });
    let fails = absent
        .map(|tuple| {
            vec![FailsClaim {
                query: QuerySpec {
                    name: "absent".into(),
                    free: (0..arity as u32).collect(),
                    body: vec![PatAtom {
                        pred: a0.pred,
                        terms: (0..arity as u32).map(TermSpec::Var).collect(),
                    }],
                },
                tuple,
            }]
        })
        .unwrap_or_default();
    Certificate::FiniteModel {
        sig,
        rules,
        structure,
        holds,
        fails,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(encode(c)) == c` and the checker accepts honest witnesses.
    #[test]
    fn hom_witness_roundtrips_and_checks(seed in 0u32..1_000_000) {
        let cert = gen_hom_witness(seed as u64);
        let text = encode(&cert);
        prop_assert_eq!(parse(&text).unwrap(), cert.clone());
        let report = check(&cert).unwrap();
        prop_assert!(!report.attestation);
    }

    /// Same for finite models with rules and holds/fails claims.
    #[test]
    fn finite_model_roundtrips_and_checks(seed in 0u32..1_000_000) {
        let cert = gen_finite_model(seed as u64);
        let text = encode(&cert);
        prop_assert_eq!(parse(&text).unwrap(), cert.clone());
        prop_assert!(check(&cert).is_ok(), "{:?}", check(&cert));
    }
}

/// An honest chase trace over the T∞-style path rule, produced by the
/// real recording engine.
fn path_trace(stages: usize) -> (Certificate, Vec<cqfd_cert::FiringSpec>) {
    let mut sigm = Signature::new();
    let r = sigm.add_predicate("R", 2);
    let sig = Arc::new(sigm);
    let v = |i| Term::Var(Var(i));
    let tgd = Tgd::new_unchecked(
        "path",
        vec![Atom::new(r, vec![v(0), v(1)])],
        vec![Atom::new(r, vec![v(1), v(2)])],
    );
    let engine = ChaseEngine::new(vec![tgd]).with_recording(true);
    let mut start = Structure::new(Arc::clone(&sig));
    let a = start.fresh_node();
    let b = start.fresh_node();
    start.add(r, vec![a, b]);
    let run = engine.chase(&start, &ChaseBudget::stages(stages));
    let cert = convert::chase_trace(&sig, engine.tgds(), &start, &run, None);
    let firings = match &cert {
        Certificate::ChaseTrace { firings, .. } => firings.clone(),
        _ => unreachable!(),
    };
    (cert, firings)
}

#[test]
fn chase_trace_replays_and_roundtrips() {
    let (cert, firings) = path_trace(4);
    assert_eq!(firings.len(), 4);
    let report = check(&cert).unwrap();
    assert_eq!(report.steps, 4);
    assert_eq!(parse(&encode(&cert)).unwrap(), cert);
}

#[test]
fn chase_trace_goal_is_validated() {
    let (cert, _) = path_trace(3);
    let Certificate::ChaseTrace {
        sig,
        rules,
        start,
        firings,
        final_atoms,
        final_nodes,
        ..
    } = cert
    else {
        unreachable!()
    };
    // After 3 stages the path reaches R(3, 4).
    let goal = HoldsClaim {
        query: QuerySpec {
            name: "reach".into(),
            free: vec![0, 1],
            body: vec![PatAtom {
                pred: 0,
                terms: vec![TermSpec::Var(0), TermSpec::Var(1)],
            }],
        },
        tuple: vec![3, 4],
        witness: vec![(0, 3), (1, 4)],
    };
    let with_goal = Certificate::ChaseTrace {
        sig,
        rules,
        start,
        firings,
        final_atoms,
        final_nodes,
        goal: Some(goal),
    };
    assert!(check(&with_goal).is_ok());
    assert_eq!(parse(&encode(&with_goal)).unwrap(), with_goal);
}

#[test]
fn permuted_triggers_are_rejected() {
    let (cert, _) = path_trace(4);
    let Certificate::ChaseTrace {
        sig,
        rules,
        start,
        mut firings,
        final_atoms,
        final_nodes,
        goal,
    } = cert
    else {
        unreachable!()
    };
    // Stage 2's firing consumes stage 1's head atom; swapping them makes
    // the first replayed body atom nonexistent.
    firings.swap(0, 1);
    let tampered = Certificate::ChaseTrace {
        sig,
        rules,
        start,
        firings,
        final_atoms,
        final_nodes,
        goal,
    };
    let err = check(&tampered).unwrap_err();
    assert!(err.contains("not present"), "{err}");
}

#[test]
fn forged_final_counts_are_rejected() {
    let (cert, _) = path_trace(2);
    let Certificate::ChaseTrace {
        sig,
        rules,
        start,
        firings,
        final_atoms,
        final_nodes,
        goal,
    } = cert
    else {
        unreachable!()
    };
    let tampered = Certificate::ChaseTrace {
        sig,
        rules,
        start,
        firings,
        final_atoms: final_atoms + 1,
        final_nodes,
        goal,
    };
    assert!(check(&tampered).unwrap_err().contains("atoms"));
}

#[test]
fn dropped_atom_is_rejected() {
    // P(0,1) with the identity witness; deleting the atom breaks it.
    let honest = Certificate::HomWitness {
        sig: SigSpec {
            preds: vec![("P".into(), 2)],
            consts: vec![],
        },
        structure: StructSpec {
            nodes: 2,
            pins: vec![],
            atoms: vec![AtomSpec {
                pred: 0,
                args: vec![0, 1],
            }],
        },
        claim: HoldsClaim {
            query: QuerySpec {
                name: "Q".into(),
                free: vec![0, 1],
                body: vec![PatAtom {
                    pred: 0,
                    terms: vec![TermSpec::Var(0), TermSpec::Var(1)],
                }],
            },
            tuple: vec![0, 1],
            witness: vec![(0, 0), (1, 1)],
        },
    };
    assert!(check(&honest).is_ok());
    let Certificate::HomWitness {
        sig,
        mut structure,
        claim,
    } = honest
    else {
        unreachable!()
    };
    structure.atoms.clear();
    let tampered = Certificate::HomWitness {
        sig,
        structure,
        claim,
    };
    let err = check(&tampered).unwrap_err();
    assert!(err.contains("not in the structure"), "{err}");
}

#[test]
fn wrong_variable_map_is_rejected() {
    let honest = gen_hom_witness(7);
    let Certificate::HomWitness {
        sig,
        structure,
        mut claim,
    } = honest
    else {
        unreachable!()
    };
    // Redirect the first free variable somewhere else; the witness then
    // disagrees with the tuple it claims to prove.
    claim.witness[0].1 = (claim.witness[0].1 + 1) % structure.nodes;
    let tampered = Certificate::HomWitness {
        sig,
        structure,
        claim,
    };
    let err = check(&tampered).unwrap_err();
    assert!(
        err.contains("disagrees") || err.contains("not in the structure"),
        "{err}"
    );
}

#[test]
fn truncated_text_is_rejected() {
    let cert = gen_hom_witness(11);
    let text = encode(&cert);
    let truncated = text.rsplit_once("end").unwrap().0;
    assert!(parse(truncated).unwrap_err().contains("truncated"));
    assert!(parse("").unwrap_err().contains("empty"));
    assert!(parse("cqfd-cert v2 hom-witness\nend\n")
        .unwrap_err()
        .contains("version"));
}

#[test]
fn creep_trace_halting_worm() {
    let d = counter_worm(2);
    let expected = match cqfd_rainworm::creep(&d, 100_000) {
        cqfd_rainworm::CreepOutcome::Halted { steps, .. } => steps,
        other => panic!("counter_worm(2) must halt, got {other:?}"),
    };
    let cert = creep_certificate(&d, 100_000, 10);
    let report = check(&cert).unwrap();
    assert_eq!(report.steps, expected);
    assert!(
        report
            .summary
            .contains(&format!("halted at step {expected}")),
        "{}",
        report.summary
    );
    assert_eq!(parse(&encode(&cert)).unwrap(), cert);

    // Claiming the halting worm still creeps must fail…
    let Certificate::CreepTrace {
        delta, checkpoints, ..
    } = cert.clone()
    else {
        unreachable!()
    };
    let lying = Certificate::CreepTrace {
        delta,
        checkpoints,
        halted: false,
    };
    assert!(check(&lying).unwrap_err().contains("halts"));

    // …and so must a corrupted checkpoint.
    let Certificate::CreepTrace {
        delta,
        mut checkpoints,
        halted,
    } = cert
    else {
        unreachable!()
    };
    let mid = checkpoints.len() / 2;
    checkpoints[mid].1 = "α η11".into();
    let corrupt = Certificate::CreepTrace {
        delta,
        checkpoints,
        halted,
    };
    assert!(check(&corrupt).is_err());
}

#[test]
fn creep_trace_forever_worm() {
    let cert = creep_certificate(&forever_worm(), 200, 25);
    let report = check(&cert).unwrap();
    assert_eq!(report.steps, 200);
    assert!(report.summary.contains("still creeping"));
}

#[test]
fn pattern_certificate_on_a_green_graph() {
    let mut labels = Label::all_grid_labels();
    labels.push(Label::Alpha);
    let space = Arc::new(LabelSpace::new(labels));
    let mut g = GreenGraph::empty(Arc::clone(&space));
    let x = g.fresh_node();
    let xp = g.fresh_node();
    let y = g.fresh_node();
    g.add_edge(Label::ONE, x, y);
    g.add_edge(Label::TWO, xp, y);
    let cert = pattern_certificate(&g).expect("pattern present");
    assert!(check(&cert).is_ok());
    assert_eq!(parse(&encode(&cert)).unwrap(), cert);

    // Tampering the witness to point at the wrong target edge fails.
    let Certificate::FiniteModel {
        sig,
        rules,
        structure,
        mut holds,
        fails,
    } = cert
    else {
        unreachable!()
    };
    holds[0].witness[2].1 = x.0;
    let tampered = Certificate::FiniteModel {
        sig,
        rules,
        structure,
        holds,
        fails,
    };
    assert!(check(&tampered).is_err());

    // A graph without the pattern yields no certificate.
    let g2 = GreenGraph::di(space);
    assert!(pattern_certificate(&g2).is_none());
}

#[test]
fn attestation_is_flagged() {
    let cert = Certificate::NonHomRefutation {
        sig: SigSpec {
            preds: vec![("R".into(), 2)],
            consts: vec![],
        },
        what: "counterexample search over structures with ≤ 3 nodes".into(),
        bound: 3,
        explored: 12345,
    };
    let report = check(&cert).unwrap();
    assert!(report.attestation);
    assert_eq!(parse(&encode(&cert)).unwrap(), cert);
    let zero = Certificate::NonHomRefutation {
        sig: SigSpec {
            preds: vec![],
            consts: vec![],
        },
        what: "x".into(),
        bound: 0,
        explored: 0,
    };
    assert!(check(&zero).is_err());
}
