//! The worker pool: bounded submission queue, cooperative cancellation,
//! graceful shutdown.
//!
//! Plain `std` threads and channels — no executor, no dependency. Workers
//! share a single receiver behind a mutex (the classic shared-dequeue
//! pattern); the queue is a `sync_channel`, so `try_send` gives
//! backpressure ([`SubmitError::QueueFull`]) and `send` blocks. Dropping
//! the sender is the shutdown signal: workers drain the queue and exit,
//! and [`Pool::drop`] joins every handle, so no detached threads survive
//! the pool.

use crate::dispatch::{classify_for, Dispatch};
use crate::exec::{cached_result, check_forced, execute_stored};
use crate::job::Job;
use crate::outcome::{JobMetrics, JobOutcome, JobResult};
use cqfd_core::CancelToken;
use cqfd_greenred::DeterminacyOracle;
use cqfd_obs::Gauge;
use cqfd_store::Store;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Pool sizing knobs.
#[derive(Clone)]
pub struct PoolConfig {
    /// Number of worker threads. Defaults to the machine's available
    /// parallelism (at least 1).
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue makes
    /// [`Pool::submit`] report backpressure.
    pub queue_capacity: usize,
    /// An opened `cqfd-store`: cache hits are served at submission
    /// (before a worker is ever occupied), misses dispatch normally and
    /// write their result back, and `resume=1` jobs checkpoint to the
    /// store's stage logs. `None` (the default) disables all of it.
    pub store: Option<Arc<Store>>,
    /// Called by a worker after each job's result has been sent into its
    /// [`JobHandle`]. This is how an event-loop front end (the gateway
    /// reactor) learns a `try_wait` will now succeed without polling:
    /// the hook pokes its poller awake. Runs on the worker thread — keep
    /// it cheap and non-blocking.
    pub on_complete: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            store: None,
            on_complete: None,
        }
    }
}

impl std::fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("store", &self.store)
            .field("on_complete", &self.on_complete.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl PoolConfig {
    /// A pool with exactly `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the submission-queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Attaches a result store (cache + stage logs) to the pool.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Installs a completion hook (see [`PoolConfig::on_complete`]).
    pub fn with_completion_hook(mut self, hook: Arc<dyn Fn() + Send + Sync>) -> Self {
        self.on_complete = Some(hook);
        self
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — backpressure; retry later or use
    /// [`Pool::submit_blocking`].
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue full (backpressure)"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Submission {
    id: u64,
    job: Job,
    cancel: CancelToken,
    reply: mpsc::Sender<JobResult>,
}

/// A submitted job: its id, a cancellation handle, and the result channel.
#[derive(Debug)]
pub struct JobHandle {
    /// The pool-assigned job id (submission order, starting at 1).
    pub id: u64,
    cancel: CancelToken,
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Requests cooperative cancellation. If the job is still queued it
    /// returns immediately as budget-exceeded when a worker picks it up;
    /// if it is running, the chase/creep loop stops at the next poll.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job's result is available.
    pub fn wait(self) -> JobResult {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| JobResult {
            id,
            kind: "unknown",
            outcome: JobOutcome::Error {
                message: "worker disappeared before reporting a result".into(),
            },
            metrics: Default::default(),
            certificate: None,
            trace: None,
            lint: None,
        })
    }

    /// Non-blocking poll: the result, if already available.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }
}

/// A fixed-size worker pool executing [`Job`]s from a bounded queue.
///
/// ```
/// use cqfd_service::{Job, JobBudget, Pool, PoolConfig};
/// use cqfd_core::{Cq, Signature};
///
/// let mut sig = Signature::new();
/// sig.add_predicate("R", 2);
/// let job = Job::Determine {
///     views: vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()],
///     q0: Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap(),
///     sig,
///     budget: JobBudget::default(),
/// };
/// let pool = Pool::new(PoolConfig::default().with_workers(2));
/// let handle = pool.submit(job).unwrap();
/// let result = handle.wait();
/// assert_eq!(result.outcome.verdict(), "determined");
/// pool.shutdown();
/// ```
pub struct Pool {
    tx: Option<SyncSender<Submission>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    /// Live submissions not yet dequeued by a worker (`cqfd_pool_queue_depth`).
    queue_depth: Gauge,
    /// Live worker threads across all pools (`cqfd_pool_workers`).
    worker_gauge: Gauge,
    /// Shared result store; hits are served on the submitter's thread.
    store: Option<Arc<Store>>,
    /// Submission-queue capacity, as configured.
    queue_capacity: usize,
    /// Completion hook, fired by workers after each result send.
    on_complete: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Pool {
    /// Spawns the worker threads and returns the pool.
    pub fn new(config: PoolConfig) -> Pool {
        // Always-on forensics: every pool (serve, gateway, batch) records
        // into the process-wide flight ring, so a later panic/timeout dump
        // has history to show. Idempotent across pools.
        cqfd_flight::install();
        let reg = cqfd_obs::global();
        let queue_depth = reg.gauge(
            "cqfd_pool_queue_depth",
            "Jobs submitted but not yet picked up by a worker.",
            &[],
        );
        let worker_gauge = reg.gauge(
            "cqfd_pool_workers",
            "Live pool worker threads (summed over all pools in the process).",
            &[],
        );
        let (tx, rx) = mpsc::sync_channel::<Submission>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let worker_count = config.workers.max(1);
        // Pool-aware cap on per-job chase threads: `workers × threads`
        // must not oversubscribe the host, so each worker may fan a job
        // out over at most `available_parallelism / workers` threads
        // (min 1 — a job always runs). The cap never changes results,
        // only scheduling.
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let thread_cap = (avail / worker_count).max(1);
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let depth = queue_depth.clone();
                let store = config.store.clone();
                let hook = config.on_complete.clone();
                std::thread::Builder::new()
                    .name(format!("cqfd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &depth, thread_cap, store, hook))
                    .expect("spawn worker thread")
            })
            .collect();
        worker_gauge.add(workers.len() as i64);
        Pool {
            tx: Some(tx),
            workers,
            next_id: AtomicU64::new(1),
            queue_depth,
            worker_gauge,
            store: config.store,
            queue_capacity: config.queue_capacity.max(1),
            on_complete: config.on_complete,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The configured submission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Jobs submitted but not yet picked up by a worker (the live
    /// `cqfd_pool_queue_depth` reading; readiness probes use it).
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.get()
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Submits a job without blocking. A full queue is reported as
    /// [`SubmitError::QueueFull`] — the caller decides whether to retry,
    /// shed load, or block via [`Pool::submit_blocking`].
    pub fn submit(&self, job: Job) -> Result<JobHandle, SubmitError> {
        let (sub, handle) = self.package(job);
        // Pre-routing: a `forced:` dispatch mismatch fails on the
        // submitter's thread, never occupying a queue slot or a worker.
        let Some(sub) = self.preroute(sub) else {
            return Ok(handle);
        };
        // A cache hit never occupies a worker or a queue slot: the result
        // is pushed straight into the handle's channel.
        let Some(sub) = self.serve_from_cache(sub) else {
            return Ok(handle);
        };
        match self.sender().try_send(sub) {
            Ok(()) => {
                self.queue_depth.inc();
                Ok(handle)
            }
            Err(TrySendError::Full(_)) => {
                cqfd_obs::global()
                    .counter(
                        "cqfd_pool_rejections_total",
                        "Submissions rejected by queue backpressure.",
                        &[],
                    )
                    .inc();
                Err(SubmitError::QueueFull)
            }
            // Workers only disconnect at shutdown, which consumes the pool.
            Err(TrySendError::Disconnected(_)) => unreachable!("pool alive while submitting"),
        }
    }

    /// Submits a job, blocking while the queue is full (backpressure by
    /// waiting instead of by error).
    pub fn submit_blocking(&self, job: Job) -> JobHandle {
        let (sub, handle) = self.package(job);
        let Some(sub) = self.preroute(sub) else {
            return handle;
        };
        let Some(sub) = self.serve_from_cache(sub) else {
            return handle;
        };
        self.sender()
            .send(sub)
            .expect("pool alive while submitting");
        self.queue_depth.inc();
        handle
    }

    /// The pre-dispatch routing probe: classifies a `dispatch=forced:`
    /// determinacy job at submission and, on a classifier mismatch,
    /// answers the error into the reply channel and returns `None`.
    /// Everything else (including `auto`/`semi`, which cannot mismatch)
    /// passes through unclassified — the executor classifies again when
    /// the job actually runs, so this probe costs nothing on the common
    /// path.
    fn preroute(&self, sub: Submission) -> Option<Submission> {
        let rejected = match &sub.job {
            Job::Determine {
                sig,
                views,
                q0,
                budget,
            }
            | Job::CounterexampleSearch {
                sig,
                views,
                q0,
                budget,
            } if matches!(budget.dispatch, Dispatch::Forced(_)) => {
                let oracle = DeterminacyOracle::new(sig.clone());
                let class = classify_for(&oracle, views, q0);
                match check_forced(budget.dispatch, class.fragment) {
                    Ok(()) => None,
                    Err(outcome) => Some((class.fragment.as_str(), outcome)),
                }
            }
            _ => None,
        };
        let Some((fragment, outcome)) = rejected else {
            return Some(sub);
        };
        cqfd_obs::global()
            .counter(
                "cqfd_dispatch_preroute_rejected_total",
                "Forced-dispatch jobs rejected at submission by the classifier.",
                &[("fragment", fragment)],
            )
            .inc();
        let _ = sub.reply.send(JobResult {
            id: sub.id,
            kind: sub.job.kind(),
            outcome,
            metrics: JobMetrics {
                fragment: Some(fragment),
                ..Default::default()
            },
            certificate: None,
            trace: None,
            lint: None,
        });
        if let Some(hook) = &self.on_complete {
            hook();
        }
        None
    }

    /// The pre-dispatch cache probe: serves a validated hit into the
    /// submission's reply channel and returns `None`, or hands the
    /// submission back for normal dispatch.
    fn serve_from_cache(&self, sub: Submission) -> Option<Submission> {
        if let Some(store) = &self.store {
            if let Some(hit) = cached_result(sub.id, &sub.job, store) {
                let _ = sub.reply.send(hit);
                if let Some(hook) = &self.on_complete {
                    hook();
                }
                return None;
            }
        }
        Some(sub)
    }

    /// Runs a whole batch through the pool with blocking submission and
    /// returns the results in submission order.
    pub fn run_batch(&self, jobs: Vec<Job>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = jobs.into_iter().map(|j| self.submit_blocking(j)).collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }

    /// Graceful shutdown: stops accepting jobs, lets queued jobs finish,
    /// and joins every worker thread. (Merely dropping the pool does the
    /// same; this method just makes the point explicit at call sites.)
    pub fn shutdown(self) {}

    fn sender(&self) -> &SyncSender<Submission> {
        self.tx.as_ref().expect("sender live until drop")
    }

    fn package(&self, job: Job) -> (Submission, JobHandle) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let (reply, rx) = mpsc::channel();
        (
            Submission {
                id,
                job,
                cancel: cancel.clone(),
                reply,
            },
            JobHandle { id, cancel, rx },
        )
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Dropping the sender disconnects the queue; workers finish what
        // is queued and exit. Joining here guarantees no detached threads.
        self.tx = None;
        let joined = self.workers.len();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.worker_gauge.add(-(joined as i64));
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Submission>>,
    queue_depth: &Gauge,
    thread_cap: usize,
    store: Option<Arc<Store>>,
    on_complete: Option<Arc<dyn Fn() + Send + Sync>>,
) {
    loop {
        // Hold the lock only for the dequeue, not for the job.
        let sub = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked while dequeuing
        };
        match sub {
            Ok(s) => {
                queue_depth.dec();
                // `lookup = false`: the pool already probed the cache at
                // submission; the worker's store handle is for write-back
                // and the write-ahead stage log only.
                //
                // A panicking job dumps the flight ring first — the last
                // spans before the panic are exactly what a post-mortem
                // needs — then resumes the unwind, preserving the pool's
                // existing sibling-poisoning shutdown semantics.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_stored(s.id, &s.job, &s.cancel, thread_cap, store.as_deref(), false)
                }))
                .unwrap_or_else(|panic| {
                    cqfd_flight::dump_to_stderr("panic", 256);
                    std::panic::resume_unwind(panic)
                });
                // The submitter may have dropped its handle; that's fine.
                let _ = s.reply.send(result);
                if let Some(hook) = &on_complete {
                    hook();
                }
            }
            Err(_) => return, // disconnected: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBudget;
    use cqfd_rainworm::families::halting_worm_short;

    fn creep_job() -> Job {
        Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        }
    }

    #[test]
    fn ids_are_sequential_and_results_ordered() {
        let pool = Pool::new(PoolConfig::default().with_workers(2));
        let results = pool.run_batch(vec![creep_job(), creep_job(), creep_job()]);
        let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(results.iter().all(|r| r.outcome.verdict() == "halted"));
    }

    #[test]
    fn queue_overflow_reports_backpressure() {
        // One worker, capacity 1: submissions beyond worker+queue overflow.
        let pool = Pool::new(PoolConfig::default().with_workers(1).with_queue_capacity(1));
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..50 {
            match pool.submit(creep_job()) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::QueueFull) => rejected += 1,
            }
        }
        assert!(rejected > 0, "50 instant submissions must overflow cap 1");
        for h in accepted {
            assert_eq!(h.wait().outcome.verdict(), "halted");
        }
        pool.shutdown();
    }

    #[test]
    fn completion_hook_fires_once_per_job() {
        let count = Arc::new(AtomicU64::new(0));
        let in_hook = Arc::clone(&count);
        let pool = Pool::new(
            PoolConfig::default()
                .with_workers(1)
                .with_completion_hook(Arc::new(move || {
                    in_hook.fetch_add(1, Ordering::SeqCst);
                })),
        );
        assert_eq!(pool.queue_capacity(), 64);
        let results = pool.run_batch(vec![creep_job(), creep_job(), creep_job()]);
        assert_eq!(results.len(), 3);
        // The worker fires the hook *after* sending the result (so a
        // reactor woken by the hook always finds the result waiting);
        // run_batch can therefore return a beat before the last call.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while count.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(count.load(Ordering::SeqCst), 3, "one hook call per job");
        pool.shutdown();
    }

    #[test]
    fn forced_mismatch_is_rejected_at_submission() {
        use cqfd_analysis::Fragment;
        let pool = Pool::new(PoolConfig::default().with_workers(1));
        let inst = cqfd_greenred::instances::projection_instance();
        let job = Job::Determine {
            sig: inst.sig,
            views: inst.views,
            q0: inst.q0,
            budget: JobBudget::default().with_dispatch(Dispatch::Forced(Fragment::SpiderPath)),
        };
        let r = pool.submit(job).unwrap().wait();
        let JobOutcome::Error { message } = &r.outcome else {
            panic!("expected a preroute rejection, got {:?}", r.outcome);
        };
        assert!(message.contains("forced:A302"), "{message}");
        assert!(message.contains("A300"), "{message}");
        assert_eq!(r.metrics.fragment, Some("A300"));
        assert_eq!(r.metrics.stages, 0, "rejected before any chase");
        pool.shutdown();
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = Pool::new(PoolConfig::default().with_workers(3));
        let h = pool.submit_blocking(creep_job());
        drop(pool); // must not hang, must let the queued job finish
        assert_eq!(h.wait().outcome.verdict(), "halted");
    }
}
