//! The TCP line-protocol daemon behind `cqfd serve`.
//!
//! On connect the server greets with its protocol version —
//! `cqfd-service v1` — so clients can refuse to speak to an incompatible
//! server. Each connection then sends one job per line (the
//! [`crate::proto`] syntax) and receives one result line per job (plus
//! certificate payload lines when the job asked for one with `cert=1`;
//! see [`JobResult::render_protocol`](crate::JobResult::render_protocol)).
//! Control words:
//!
//! * `v1` (or any `v<N>`) — optional version pinning: the server replies
//!   `ok v1` if it speaks that version, and otherwise answers
//!   `error: unsupported protocol version …` and closes the connection;
//! * `metrics` — scrapes the process-wide `cqfd-obs` registry: the server
//!   replies `metrics_lines=<n>` followed by exactly `n` lines of
//!   Prometheus text exposition;
//! * `quit` — closes this connection;
//! * `shutdown` — stops the whole server.
//!
//! Shutdown is graceful: the accept loop is unblocked with a loopback
//! self-connect, every open connection's socket is shut down (so blocked
//! reads return), every connection thread is joined, and the pool drains
//! and joins its workers. Nothing survives [`Server::shutdown`] /
//! [`ServerHandle::join`].

use crate::pool::{Pool, PoolConfig};
use crate::proto::parse_job;
use cqfd_core::CancelToken;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Shared server state: the pool, the stop flag, and the live-connection
/// registry used to unblock reads at shutdown.
struct Shared {
    pool: Pool,
    stop: CancelToken,
    conns: Mutex<Vec<TcpStream>>,
}

/// A bound, not-yet-running server. Binding first and running second lets
/// callers (and the integration tests) bind to port 0 and learn the real
/// address before any client connects.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: CancelToken,
    thread: JoinHandle<()>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn bind(addr: impl ToSocketAddrs, pool_config: PoolConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                pool: Pool::new(pool_config),
                stop: CancelToken::new(),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until a client sends
    /// `shutdown` (or [`ServerHandle::shutdown`] is called on a spawned
    /// server). Joins every connection thread before returning.
    pub fn run(self) {
        let Server { listener, shared } = self;
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.stop.is_cancelled() {
                break;
            }
            let Ok(stream) = stream else { continue };
            if let Ok(clone) = stream.try_clone() {
                shared.conns.lock().expect("conns lock").push(clone);
            }
            let shared = Arc::clone(&shared);
            conn_threads.push(
                std::thread::Builder::new()
                    .name("cqfd-conn".into())
                    .spawn(move || serve_connection(stream, &shared))
                    .expect("spawn connection thread"),
            );
        }
        // Unblock any connection still waiting in read_line.
        for c in shared.conns.lock().expect("conns lock").drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        for t in conn_threads {
            let _ = t.join();
        }
        // `shared` is ours alone now; dropping it drains and joins the pool.
    }

    /// Runs the server on a background thread, returning a handle that can
    /// stop it and join it.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = self.shared.stop.clone();
        let thread = std::thread::Builder::new()
            .name("cqfd-serve".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, stop, thread })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread (and, transitively, every
    /// connection thread and pool worker).
    pub fn shutdown(self) {
        request_stop(&self.stop, self.addr);
        let _ = self.thread.join();
    }

    /// Waits for the server to stop on its own (a client's `shutdown`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// The protocol version this server speaks, as greeted on connect and
/// accepted as a version-pinning token.
pub const PROTOCOL_VERSION: &str = "v1";

/// Flags the stop token and pokes the accept loop awake with a loopback
/// self-connect (a blocked `accept` has no timeout in std).
fn request_stop(stop: &CancelToken, addr: SocketAddr) {
    stop.cancel();
    let _ = TcpStream::connect(addr);
}

/// Is this line a version token `v<N>`? (No job kind starts with a bare
/// `v` followed by digits, so the token can share the line namespace.)
fn is_version_token(line: &str) -> bool {
    line.strip_prefix('v')
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_read);
    let mut writer = stream;
    if writeln!(writer, "cqfd-service {PROTOCOL_VERSION}").is_err() {
        return;
    }
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // disconnected (or shut down under us)
            Ok(_) => {}
        }
        let trimmed = line.trim();
        match trimmed {
            "quit" => {
                let _ = writeln!(writer, "bye");
                return;
            }
            "metrics" => {
                // A framed scrape of the process-wide registry, so one
                // connection can interleave jobs and scrapes.
                let text = cqfd_obs::prom::render(&cqfd_obs::global().snapshot());
                let mut reply = format!("metrics_lines={}", text.lines().count());
                for l in text.lines() {
                    reply.push('\n');
                    reply.push_str(l);
                }
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                continue;
            }
            "shutdown" => {
                let _ = writeln!(writer, "bye");
                if let Ok(addr) = writer.local_addr() {
                    request_stop(&shared.stop, addr);
                }
                return;
            }
            v if is_version_token(v) => {
                if v == PROTOCOL_VERSION {
                    if writeln!(writer, "ok {PROTOCOL_VERSION}").is_err() {
                        return;
                    }
                } else {
                    let _ = writeln!(
                        writer,
                        "error: unsupported protocol version `{v}` \
                         (server speaks {PROTOCOL_VERSION})"
                    );
                    return;
                }
                continue;
            }
            _ => {}
        }
        let reply = match parse_job(trimmed) {
            Ok(None) => continue, // blank line / comment: no reply
            Ok(Some(job)) => {
                // Static analysis gate: a job whose rule set carries
                // error-severity diagnostics would chase garbage (or panic
                // deep in the engine), so reject it before it ever reaches
                // the pool.
                let report = crate::lint::lint_job(&job);
                if let Some(d) = report.first_error() {
                    format!("error: lint: {}", d.render_human())
                } else {
                    match shared.pool.submit(job) {
                        Ok(handle) => handle.wait().render_protocol(),
                        Err(e) => format!("error: {e}"),
                    }
                }
            }
            Err(e) => format!("error: {e}"),
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    /// Connects and consumes the version greeting.
    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut greeting = String::new();
        reader.read_line(&mut greeting).expect("greeting");
        assert_eq!(greeting.trim(), "cqfd-service v1");
        (reader, stream)
    }

    #[test]
    fn serves_a_determine_request_and_quits() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(2)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "determine instance=projection").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=not-determined"), "{line}");
        writeln!(writer, "quit").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_stops_the_server() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(addr);
        writeln!(writer, "shutdown").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
        handle.join(); // returns only once everything is joined
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly on some platforms; a fresh bind
                // succeeding proves the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }

    #[test]
    fn bad_lines_get_error_replies() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "frobnicate x=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("error:"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn version_pinning_acks_v1_and_rejects_others() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");

        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "v1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ok v1");
        // The connection still works after pinning.
        writeln!(writer, "creep worm=short").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");

        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "v2").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("error: unsupported protocol version"),
            "{line}"
        );
        // The server side has returned; EOF is only observable after
        // shutdown drops the connection registry's stream clone.
        handle.shutdown();
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection open");
    }

    /// Reads `n` framed payload lines after a `<key>_lines=<n>` marker.
    fn read_payload(reader: &mut BufReader<TcpStream>, head: &str, key: &str) -> String {
        let n: usize = head
            .split_whitespace()
            .find_map(|t| t.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
            .unwrap_or_else(|| panic!("`{head}` carries {key}="))
            .parse()
            .unwrap();
        let mut payload = String::new();
        for _ in 0..n {
            reader.read_line(&mut payload).unwrap();
        }
        payload
    }

    #[test]
    fn metrics_command_scrapes_prometheus_text() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // Run a job first so the chase/hom/pool families exist.
        writeln!(writer, "determine instance=projection").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=not-determined"), "{line}");

        writeln!(writer, "metrics").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("metrics_lines="), "{line}");
        let text = read_payload(&mut reader, &line, "metrics_lines");
        for family in [
            "cqfd_chase_run_seconds",
            "cqfd_hom_search_nodes_total",
            "cqfd_pool_jobs_total",
            "cqfd_pool_workers",
        ] {
            assert!(text.contains(family), "scrape missing {family}:\n{text}");
        }
        // The connection still serves jobs after a scrape.
        writeln!(writer, "creep worm=short").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn trace_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "determine instance=projection trace=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(" trace_lines="), "{line}");
        let trace = read_payload(&mut reader, &line, "trace_lines");
        let records = cqfd_obs::jsonl::parse_lines(&trace).expect("trace is valid JSONL");
        assert!(!records.is_empty());
        assert!(
            records.iter().all(|r| r.job == Some(1)),
            "every record is tagged with the job id"
        );
        assert!(
            records
                .iter()
                .any(|r| r.name == "chase.run" || r.name == "oracle.certify_run"),
            "trace covers the chase/oracle spans"
        );
        handle.shutdown();
    }

    #[test]
    fn lint_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // `short` halts quickly and its instruction set lints with warnings
        // (dead symbols) but no errors, so the job runs and the report rides
        // along behind `lint_lines=`.
        writeln!(writer, "creep worm=short lint=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");
        assert!(line.contains(" lint_lines="), "{line}");
        let lint = read_payload(&mut reader, &line, "lint_lines");
        assert!(lint.starts_with("cqfd-lint v1\n"), "{lint}");
        assert!(lint.trim_end().ends_with("\nend"), "{lint}");
        assert!(lint.contains("severity=warn"), "{lint}");
        handle.shutdown();
    }

    #[test]
    fn certificate_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "creep worm=short cert=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let n: usize = line
            .split_whitespace()
            .find_map(|t| t.strip_prefix("cert_lines="))
            .expect("result line carries cert_lines=")
            .parse()
            .unwrap();
        let mut cert = String::new();
        for _ in 0..n {
            reader.read_line(&mut cert).unwrap();
        }
        let parsed = cqfd_cert::parse(&cert).expect("payload is a valid certificate");
        assert!(cqfd_cert::check(&parsed).is_ok());
        handle.shutdown();
    }
}
