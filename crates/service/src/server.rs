//! The TCP line-protocol daemon behind `cqfd serve`.
//!
//! On connect the server greets with its protocol version —
//! `cqfd-service v1` — so clients can refuse to speak to an incompatible
//! server. Each connection then sends one job per line (the
//! [`crate::proto`] syntax) and receives one result line per job (plus
//! certificate payload lines when the job asked for one with `cert=1`;
//! see [`JobResult::render_protocol`](crate::JobResult::render_protocol)).
//! Control words:
//!
//! * `v1` (or any `v<N>`) — optional version pinning: the server replies
//!   `ok v1` if it speaks that version, and otherwise answers
//!   `error: unsupported protocol version …` and closes the connection;
//! * `metrics` — scrapes the process-wide `cqfd-obs` registry: the server
//!   replies `metrics_lines=<n>` followed by exactly `n` lines of
//!   Prometheus text exposition;
//! * `quit` — closes this connection;
//! * `shutdown` — stops the whole server.
//!
//! Shutdown is graceful: the accept loop is unblocked with a loopback
//! self-connect, every open connection's socket is shut down (so blocked
//! reads return), every connection thread is joined, and the pool drains
//! and joins its workers. Nothing survives [`Server::shutdown`] /
//! [`ServerHandle::join`].

use crate::pool::{Pool, PoolConfig};
use crate::proto::parse_request;
use cqfd_core::CancelToken;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection request-read limits — the slow-loris guards. A client
/// that sends an endless line without a newline hits
/// [`max_line_bytes`](ServerLimits::max_line_bytes); one that sends half
/// a line and stalls hits [`line_deadline`](ServerLimits::line_deadline).
/// Either way the connection is answered with an error and closed
/// instead of pinning its thread forever. An *idle* connection (no
/// partial line pending) is legitimate keep-alive and is not timed out.
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// Maximum bytes one request line may span (default 64 KiB).
    pub max_line_bytes: usize,
    /// How long a started line may take to reach its newline
    /// (default 30 s).
    pub line_deadline: Duration,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_line_bytes: 64 * 1024,
            line_deadline: Duration::from_secs(30),
        }
    }
}

/// Shared server state: the pool, the stop flag, and the live-connection
/// registry used to unblock reads at shutdown.
struct Shared {
    pool: Pool,
    stop: CancelToken,
    conns: Mutex<Vec<TcpStream>>,
    limits: ServerLimits,
}

/// A bound, not-yet-running server. Binding first and running second lets
/// callers (and the integration tests) bind to port 0 and learn the real
/// address before any client connects.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: CancelToken,
    thread: JoinHandle<()>,
}

impl Server {
    /// Binds the listener and spawns the worker pool, with default
    /// [`ServerLimits`].
    pub fn bind(addr: impl ToSocketAddrs, pool_config: PoolConfig) -> std::io::Result<Server> {
        Server::bind_with_limits(addr, pool_config, ServerLimits::default())
    }

    /// Binds with explicit request-read limits.
    pub fn bind_with_limits(
        addr: impl ToSocketAddrs,
        pool_config: PoolConfig,
        limits: ServerLimits,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                pool: Pool::new(pool_config),
                stop: CancelToken::new(),
                conns: Mutex::new(Vec::new()),
                limits,
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until a client sends
    /// `shutdown` (or [`ServerHandle::shutdown`] is called on a spawned
    /// server). Joins every connection thread before returning.
    pub fn run(self) {
        let Server { listener, shared } = self;
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.stop.is_cancelled() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let registered_fd = match stream.try_clone() {
                Ok(clone) => {
                    let fd = clone.as_raw_fd();
                    shared.conns.lock().expect("conns lock").push(clone);
                    Some(fd)
                }
                Err(_) => None,
            };
            let shared = Arc::clone(&shared);
            conn_threads.push(
                std::thread::Builder::new()
                    .name("cqfd-conn".into())
                    .spawn(move || {
                        serve_connection(stream, &shared);
                        // Drop the registry clone now rather than at server
                        // exit: a finished connection must not hold its fd
                        // (and the peer's EOF) hostage for the rest of the
                        // server's life. The clone's fd can't be reused
                        // while the registry still owns it, so the raw-fd
                        // match is unambiguous.
                        if let Some(fd) = registered_fd {
                            shared
                                .conns
                                .lock()
                                .expect("conns lock")
                                .retain(|c| c.as_raw_fd() != fd);
                        }
                    })
                    .expect("spawn connection thread"),
            );
        }
        // Unblock any connection still waiting in read_line.
        for c in shared.conns.lock().expect("conns lock").drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        for t in conn_threads {
            let _ = t.join();
        }
        // `shared` is ours alone now; dropping it drains and joins the pool.
    }

    /// Runs the server on a background thread, returning a handle that can
    /// stop it and join it.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = self.shared.stop.clone();
        let thread = std::thread::Builder::new()
            .name("cqfd-serve".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, stop, thread })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread (and, transitively, every
    /// connection thread and pool worker).
    pub fn shutdown(self) {
        request_stop(&self.stop, self.addr);
        let _ = self.thread.join();
    }

    /// Waits for the server to stop on its own (a client's `shutdown`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// The protocol version this server speaks, as greeted on connect and
/// accepted as a version-pinning token.
pub const PROTOCOL_VERSION: &str = "v1";

/// Flags the stop token and pokes the accept loop awake with a loopback
/// self-connect (a blocked `accept` has no timeout in std).
fn request_stop(stop: &CancelToken, addr: SocketAddr) {
    stop.cancel();
    let _ = TcpStream::connect(addr);
}

/// Is this line a version token `v<N>`? (No job kind starts with a bare
/// `v` followed by digits, so the token can share the line namespace.)
fn is_version_token(line: &str) -> bool {
    line.strip_prefix('v')
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// One bounded, deadline-enforcing line read. See [`ServerLimits`].
enum LineRead {
    /// A complete line (without its newline).
    Line(String),
    /// Orderly end of stream (or the socket was shut down under us).
    Closed,
    /// The line outgrew [`ServerLimits::max_line_bytes`].
    TooLong,
    /// A started line failed to finish within
    /// [`ServerLimits::line_deadline`].
    DeadlineExceeded,
}

/// Reads lines from a `TcpStream` with a size bound and a per-line
/// completion deadline. The deadline clock starts when the first byte of
/// a line arrives, so idle keep-alive connections block indefinitely
/// (as before) while a mid-line stall is cut off.
struct BoundedLineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: ServerLimits,
    /// When the currently-pending partial line must complete.
    deadline: Option<Instant>,
}

impl BoundedLineReader {
    fn new(stream: TcpStream, limits: ServerLimits) -> BoundedLineReader {
        BoundedLineReader {
            stream,
            buf: Vec::new(),
            limits,
            deadline: None,
        }
    }

    fn read_line(&mut self) -> LineRead {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.buf.is_empty() {
                    self.deadline = None; // nothing pending: back to idle
                }
                let text = String::from_utf8_lossy(&line[..pos]);
                return LineRead::Line(text.trim_end_matches('\r').to_string());
            }
            if self.buf.len() > self.limits.max_line_bytes {
                return LineRead::TooLong;
            }
            // Idle (no partial line): block without a timeout. Mid-line:
            // bound the read by what's left of the line deadline.
            let timeout = match self.deadline {
                None => None,
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => Some(left),
                    _ => return LineRead::DeadlineExceeded,
                },
            };
            if self.stream.set_read_timeout(timeout).is_err() {
                return LineRead::Closed;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineRead::Closed,
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.deadline = Some(Instant::now() + self.limits.line_deadline);
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineRead::DeadlineExceeded;
                }
                Err(_) => return LineRead::Closed,
            }
        }
    }

    /// Lingering close: consume whatever input is already queued so that
    /// closing the socket doesn't become an RST that destroys the error
    /// reply before the peer reads it (a close with unread bytes in the
    /// receive queue resets the connection). Bounded in time and bytes so
    /// a hostile peer can't keep the drain alive.
    fn drain_for_close(&mut self) {
        if self
            .stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .is_err()
        {
            return;
        }
        let mut chunk = [0u8; 4096];
        for _ in 0..16 {
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BoundedLineReader::new(peer_read, shared.limits);
    let mut writer = stream;
    if writeln!(writer, "cqfd-service {PROTOCOL_VERSION}").is_err() {
        return;
    }
    loop {
        let line = match reader.read_line() {
            LineRead::Line(l) => l,
            LineRead::Closed => return,
            LineRead::TooLong => {
                let _ = writeln!(
                    writer,
                    "error: request line exceeds {} bytes",
                    shared.limits.max_line_bytes
                );
                reader.drain_for_close();
                return;
            }
            LineRead::DeadlineExceeded => {
                let _ = writeln!(
                    writer,
                    "error: request line not completed within {} ms",
                    shared.limits.line_deadline.as_millis()
                );
                reader.drain_for_close();
                return;
            }
        };
        let trimmed = line.trim();
        match trimmed {
            "quit" => {
                let _ = writeln!(writer, "bye");
                return;
            }
            "metrics" => {
                // A framed scrape of the process-wide registry, so one
                // connection can interleave jobs and scrapes.
                let text = cqfd_obs::prom::render(&cqfd_obs::global().snapshot());
                let mut reply = format!("metrics_lines={}", text.lines().count());
                for l in text.lines() {
                    reply.push('\n');
                    reply.push_str(l);
                }
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                continue;
            }
            "shutdown" => {
                let _ = writeln!(writer, "bye");
                if let Ok(addr) = writer.local_addr() {
                    request_stop(&shared.stop, addr);
                }
                return;
            }
            "flight" => {
                let reply = crate::debug::framed_reply("flight", &crate::debug::flight_text(256));
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                continue;
            }
            "attribution" => {
                let reply =
                    crate::debug::framed_reply("attribution", &crate::debug::attribution_text());
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                continue;
            }
            // `profile [seconds=N] [hz=N]`: this front end is
            // thread-per-connection, so sampling inline only occupies the
            // requesting connection while the window runs.
            v if v == "profile" || v.starts_with("profile ") => {
                let args = v.strip_prefix("profile").unwrap_or_default();
                let reply = match crate::debug::parse_profile_args(args) {
                    Ok((seconds, hz)) => crate::debug::framed_reply(
                        "profile",
                        &crate::debug::profile_folded(seconds, hz),
                    ),
                    Err(e) => format!("error: {e}"),
                };
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
                continue;
            }
            v if is_version_token(v) => {
                if v == PROTOCOL_VERSION {
                    if writeln!(writer, "ok {PROTOCOL_VERSION}").is_err() {
                        return;
                    }
                } else {
                    let _ = writeln!(
                        writer,
                        "error: unsupported protocol version `{v}` \
                         (server speaks {PROTOCOL_VERSION})"
                    );
                    return;
                }
                continue;
            }
            _ => {}
        }
        // Same request language as the gateway; this front end has no
        // lanes, quotas, or streaming, so the routing metadata
        // (tenant=/priority=/stream=) parses and is ignored.
        let reply = match parse_request(trimmed) {
            Ok(None) => continue, // blank line / comment: no reply
            Ok(Some(req)) => {
                let job = req.job;
                // Static analysis gate: a job whose rule set carries
                // error-severity diagnostics would chase garbage (or panic
                // deep in the engine), so reject it before it ever reaches
                // the pool.
                let report = crate::lint::lint_job(&job);
                if let Some(d) = report.first_error() {
                    format!("error: lint: {}", d.render_human())
                } else {
                    match shared.pool.submit(job) {
                        Ok(handle) => handle.wait().render_protocol(),
                        Err(e) => format!("error: {e}"),
                    }
                }
            }
            Err(e) => format!("error: {e}"),
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    /// Connects and consumes the version greeting.
    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut greeting = String::new();
        reader.read_line(&mut greeting).expect("greeting");
        assert_eq!(greeting.trim(), "cqfd-service v1");
        (reader, stream)
    }

    #[test]
    fn serves_a_determine_request_and_quits() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(2)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "determine instance=projection").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=not-determined"), "{line}");
        writeln!(writer, "quit").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
        handle.shutdown();
    }

    #[test]
    fn forensic_control_words_are_framed() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // Run one real job so the flight ring and rule counters have
        // something to report.
        writeln!(writer, "determine instance=projection").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict="), "{line}");

        let read_framed = |reader: &mut BufReader<TcpStream>, word: &str| -> Vec<String> {
            let mut head = String::new();
            reader.read_line(&mut head).unwrap();
            let head = head.trim();
            let n: usize = head
                .strip_prefix(&format!("{word}_lines="))
                .unwrap_or_else(|| panic!("bad frame header for {word}: {head}"))
                .parse()
                .unwrap();
            (0..n)
                .map(|_| {
                    let mut l = String::new();
                    reader.read_line(&mut l).unwrap();
                    l.trim_end().to_string()
                })
                .collect()
        };

        writeln!(writer, "flight").unwrap();
        let flight = read_framed(&mut reader, "flight");
        assert!(!flight.is_empty(), "ring holds the job's spans");
        assert!(
            cqfd_obs::jsonl::parse_lines(&flight.join("\n")).is_ok(),
            "flight dump is valid trace JSONL"
        );

        writeln!(writer, "attribution").unwrap();
        let attribution = read_framed(&mut reader, "attribution");
        assert!(attribution[0].contains("cqfd cost attribution"));
        assert!(attribution.iter().any(|l| l.starts_with("totals:")));

        writeln!(writer, "profile seconds=1 hz=50").unwrap();
        let profile = read_framed(&mut reader, "profile");
        assert!(!profile.is_empty(), "window always reports something");

        writeln!(writer, "profile seconds=99").unwrap();
        let mut err = String::new();
        reader.read_line(&mut err).unwrap();
        assert!(err.starts_with("error:"), "{err}");
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_stops_the_server() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(addr);
        writeln!(writer, "shutdown").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
        handle.join(); // returns only once everything is joined
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly on some platforms; a fresh bind
                // succeeding proves the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }

    #[test]
    fn bad_lines_get_error_replies() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "frobnicate x=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("error:"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn version_pinning_acks_v1_and_rejects_others() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");

        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "v1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ok v1");
        // The connection still works after pinning.
        writeln!(writer, "creep worm=short").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");

        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "v2").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("error: unsupported protocol version"),
            "{line}"
        );
        // The connection thread prunes its registry clone on exit, so the
        // client sees EOF promptly — no server shutdown required.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection open");
        handle.shutdown();
    }

    #[test]
    fn slow_loris_partial_line_hits_the_deadline() {
        let server = Server::bind_with_limits(
            ("127.0.0.1", 0),
            PoolConfig::default().with_workers(1),
            ServerLimits {
                max_line_bytes: 64 * 1024,
                line_deadline: Duration::from_millis(150),
            },
        )
        .expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // Half a request line, then stall — the classic slow loris.
        writer.write_all(b"determine instance=projec").unwrap();
        writer.flush().unwrap();
        let started = Instant::now();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("error: request line not completed"),
            "{line}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "deadline must fire promptly, took {:?}",
            started.elapsed()
        );
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "conn closed");
        handle.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let server = Server::bind_with_limits(
            ("127.0.0.1", 0),
            PoolConfig::default().with_workers(1),
            ServerLimits {
                max_line_bytes: 1024,
                line_deadline: Duration::from_secs(30),
            },
        )
        .expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writer.write_all(&vec![b'a'; 8 * 1024]).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("error: request line exceeds"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn idle_connections_are_not_timed_out_and_metadata_is_ignored() {
        let server = Server::bind_with_limits(
            ("127.0.0.1", 0),
            PoolConfig::default().with_workers(1),
            ServerLimits {
                max_line_bytes: 64 * 1024,
                line_deadline: Duration::from_millis(100),
            },
        )
        .expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // Idle well past the line deadline: the connection must survive —
        // the deadline clock only starts once a line has bytes.
        std::thread::sleep(Duration::from_millis(300));
        // Routing metadata (gateway territory) parses and is ignored here.
        writeln!(
            writer,
            "creep worm=short tenant=acme priority=batch stream=1"
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");
        handle.shutdown();
    }

    /// Reads `n` framed payload lines after a `<key>_lines=<n>` marker.
    fn read_payload(reader: &mut BufReader<TcpStream>, head: &str, key: &str) -> String {
        let n: usize = head
            .split_whitespace()
            .find_map(|t| t.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
            .unwrap_or_else(|| panic!("`{head}` carries {key}="))
            .parse()
            .unwrap();
        let mut payload = String::new();
        for _ in 0..n {
            reader.read_line(&mut payload).unwrap();
        }
        payload
    }

    #[test]
    fn metrics_command_scrapes_prometheus_text() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // Run a job first so the chase/hom/pool families exist.
        writeln!(writer, "determine instance=projection").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=not-determined"), "{line}");

        writeln!(writer, "metrics").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("metrics_lines="), "{line}");
        let text = read_payload(&mut reader, &line, "metrics_lines");
        for family in [
            "cqfd_chase_run_seconds",
            "cqfd_hom_search_nodes_total",
            "cqfd_pool_jobs_total",
            "cqfd_pool_workers",
        ] {
            assert!(text.contains(family), "scrape missing {family}:\n{text}");
        }
        // The connection still serves jobs after a scrape.
        writeln!(writer, "creep worm=short").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn trace_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "determine instance=projection trace=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(" trace_lines="), "{line}");
        let trace = read_payload(&mut reader, &line, "trace_lines");
        let records = cqfd_obs::jsonl::parse_lines(&trace).expect("trace is valid JSONL");
        assert!(!records.is_empty());
        assert!(
            records.iter().all(|r| r.job == Some(1)),
            "every record is tagged with the job id"
        );
        assert!(
            records
                .iter()
                .any(|r| r.name == "chase.run" || r.name == "oracle.certify_run"),
            "trace covers the chase/oracle spans"
        );
        handle.shutdown();
    }

    #[test]
    fn lint_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        // `short` halts quickly and its instruction set lints with warnings
        // (dead symbols) but no errors, so the job runs and the report rides
        // along behind `lint_lines=`.
        writeln!(writer, "creep worm=short lint=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("verdict=halted"), "{line}");
        assert!(line.contains(" lint_lines="), "{line}");
        let lint = read_payload(&mut reader, &line, "lint_lines");
        assert!(lint.starts_with("cqfd-lint v1\n"), "{lint}");
        assert!(lint.trim_end().ends_with("\nend"), "{lint}");
        assert!(lint.contains("severity=warn"), "{lint}");
        handle.shutdown();
    }

    #[test]
    fn certificate_payload_travels_the_wire() {
        let server =
            Server::bind(("127.0.0.1", 0), PoolConfig::default().with_workers(1)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let (mut reader, mut writer) = client(handle.addr());
        writeln!(writer, "creep worm=short cert=1").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let n: usize = line
            .split_whitespace()
            .find_map(|t| t.strip_prefix("cert_lines="))
            .expect("result line carries cert_lines=")
            .parse()
            .unwrap();
        let mut cert = String::new();
        for _ in 0..n {
            reader.read_line(&mut cert).unwrap();
        }
        let parsed = cqfd_cert::parse(&cert).expect("payload is a valid certificate");
        assert!(cqfd_cert::check(&parsed).is_ok());
        handle.shutdown();
    }
}
