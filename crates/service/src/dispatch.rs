//! The dispatch mode and the fragment-routing decisions behind it.
//!
//! Every determinacy-shaped job (`determine`, `counterexample`) is
//! statically classified into the `A3xx` fragment lattice
//! ([`cqfd_analysis::classify`]); the **dispatch mode** says what the
//! executor may do with that verdict:
//!
//! * [`Dispatch::Semi`] — ignore it: run the budgeted semi-decision
//!   pipeline exactly as before this mode existed. The differential
//!   baseline.
//! * [`Dispatch::Auto`] (the default) — route decidable fragments to
//!   complete procedures: lift the stage cap where termination is
//!   guaranteed, cross-check the chase verdict against the independent
//!   deciders ([`cqfd_analysis::psv`] on `A300`, path divisibility on
//!   `A302`), and extract finite counter-models from the chase fixpoint
//!   instead of brute-force enumeration.
//! * [`Dispatch::Forced`] — like `Auto` for one expected fragment, but
//!   *fail* (before execution) if the classifier disagrees. A test and
//!   CI affordance: `dispatch=forced:A300` asserts the input really is
//!   project-select.
//!
//! The mode is **answer-relevant** — `auto` can turn an `unknown` or
//! `no-counterexample` into a definite verdict — so unlike `hom=` it
//! enters the canonical job hash (see `exec::job_key`).

use cqfd_analysis::{classify, Classification, Fragment};
use cqfd_core::Cq;
use cqfd_greenred::{greenred_tgds, DeterminacyOracle};
use std::fmt;

/// How the executor consults the fragment classification. See the module
/// docs for the three modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Dispatch {
    /// The plain semi-decision pipeline; classification is stamped but
    /// never acted on.
    Semi,
    /// Route decidable fragments to their complete procedures.
    #[default]
    Auto,
    /// `Auto`, but reject the job up front unless the classifier assigns
    /// exactly this fragment.
    Forced(Fragment),
}

impl Dispatch {
    /// The wire rendering: `semi`, `auto`, or `forced:A3xx`.
    pub fn wire(self) -> String {
        match self {
            Dispatch::Semi => "semi".into(),
            Dispatch::Auto => "auto".into(),
            Dispatch::Forced(f) => format!("forced:{}", f.as_str()),
        }
    }

    /// Parses the wire rendering back. `None` for anything outside the
    /// closed set (protocol callers turn that into a named error).
    pub fn parse(s: &str) -> Option<Dispatch> {
        match s {
            "semi" => Some(Dispatch::Semi),
            "auto" => Some(Dispatch::Auto),
            _ => {
                let code = s.strip_prefix("forced:")?;
                Fragment::parse(code).map(Dispatch::Forced)
            }
        }
    }

    /// Is routing enabled (anything but `semi`)?
    pub fn routes(self) -> bool {
        !matches!(self, Dispatch::Semi)
    }
}

impl fmt::Display for Dispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.wire())
    }
}

/// The complete procedure a job was routed to, stamped as `route=` on the
/// result line. A closed set, like `termination=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The budgeted semi-decision pipeline (the `A399` fallback, and
    /// everything under `dispatch=semi`).
    Semi,
    /// `A300`: total chase cross-checked by the independent project-select
    /// decision procedure.
    Psv,
    /// `A301`: total chase of the weakly acyclic `T_Q` — exact answer.
    TotalChase,
    /// `A302`: uncapped-stage chase cross-checked by the path
    /// divisibility criterion.
    Spider,
    /// Counter-model extracted from the chase fixpoint instead of
    /// brute-force enumeration (counterexample jobs in decidable
    /// fragments).
    ChaseModel,
}

impl Route {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Route::Semi => "semi",
            Route::Psv => "psv",
            Route::TotalChase => "total-chase",
            Route::Spider => "spider",
            Route::ChaseModel => "chase-model",
        }
    }

    /// Closed-set validation for the result-line parser.
    pub fn parse(s: &str) -> Option<Route> {
        [
            Route::Semi,
            Route::Psv,
            Route::TotalChase,
            Route::Spider,
            Route::ChaseModel,
        ]
        .into_iter()
        .find(|r| r.as_str() == s)
    }

    /// The route `dispatch=auto` picks for a `determine` job in the given
    /// fragment.
    pub fn for_fragment(fragment: Fragment) -> Route {
        match fragment {
            Fragment::ProjectSelect => Route::Psv,
            Fragment::WeaklyAcyclic => Route::TotalChase,
            Fragment::SpiderPath => Route::Spider,
            Fragment::General => Route::Semi,
        }
    }
}

/// Classifies a determinacy input against the exact green–red rule set
/// the oracle would chase. One classification per job execution; the
/// `cqfd_dispatch_classified_total{fragment}` counter tracks the volume.
pub fn classify_for(oracle: &DeterminacyOracle, views: &[Cq], q0: &Cq) -> Classification {
    let gr = oracle.greenred();
    let tgds = greenred_tgds(gr, views);
    let class = classify(gr.base(), views, q0, gr.colored(), &tgds);
    cqfd_obs::global()
        .counter(
            "cqfd_dispatch_classified_total",
            "Jobs classified into the A3xx fragment lattice, by fragment.",
            &[("fragment", class.fragment.as_str())],
        )
        .inc();
    class
}

/// Bumps `cqfd_dispatch_routed_total{fragment}` — called once per job the
/// dispatcher actually routes to a complete procedure.
pub fn note_routed(fragment: Fragment) {
    cqfd_obs::global()
        .counter(
            "cqfd_dispatch_routed_total",
            "Jobs routed to a complete decision procedure, by fragment.",
            &[("fragment", fragment.as_str())],
        )
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::Signature;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn dispatch_wire_round_trips() {
        for d in [
            Dispatch::Semi,
            Dispatch::Auto,
            Dispatch::Forced(Fragment::ProjectSelect),
            Dispatch::Forced(Fragment::SpiderPath),
            Dispatch::Forced(Fragment::WeaklyAcyclic),
            Dispatch::Forced(Fragment::General),
        ] {
            assert_eq!(Dispatch::parse(&d.wire()), Some(d), "{}", d.wire());
        }
        assert_eq!(Dispatch::parse("forced:A123"), None);
        assert_eq!(Dispatch::parse("eager"), None);
        assert_eq!(Dispatch::parse("forced:"), None);
    }

    #[test]
    fn route_wire_round_trips() {
        for r in [
            Route::Semi,
            Route::Psv,
            Route::TotalChase,
            Route::Spider,
            Route::ChaseModel,
        ] {
            assert_eq!(Route::parse(r.as_str()), Some(r));
        }
        assert_eq!(Route::parse("quantum"), None);
    }

    #[test]
    fn builtin_families_classify_deterministically() {
        use cqfd_greenred::instances::{
            composed_path_instance, mismatched_path_instance, projection_instance,
        };
        let cases = [
            (projection_instance(), Fragment::ProjectSelect),
            (composed_path_instance(1, 3), Fragment::ProjectSelect),
            (composed_path_instance(2, 3), Fragment::SpiderPath),
            (mismatched_path_instance(2, 3), Fragment::SpiderPath),
            (mismatched_path_instance(3, 4), Fragment::SpiderPath),
        ];
        for (inst, expected) in cases {
            let oracle = DeterminacyOracle::new(inst.sig.clone());
            let a = classify_for(&oracle, &inst.views, &inst.q0);
            let b = classify_for(&oracle, &inst.views, &inst.q0);
            assert_eq!(a.fragment, expected, "{}", inst.name);
            assert_eq!(a.fragment, b.fragment, "deterministic: {}", inst.name);
            assert_eq!(
                a.witness.render_line(),
                b.witness.render_line(),
                "witness deterministic: {}",
                inst.name
            );
        }
    }

    #[test]
    fn spider_classification_carries_path_lengths() {
        use cqfd_greenred::instances::mismatched_path_instance;
        let inst = mismatched_path_instance(2, 5);
        let oracle = DeterminacyOracle::new(inst.sig.clone());
        let class = classify_for(&oracle, &inst.views, &inst.q0);
        assert_eq!(class.fragment, Fragment::SpiderPath);
        assert_eq!(class.path_lengths, Some((2, 5)));
        assert!(
            class.witness.message.contains("does not divide"),
            "{}",
            class.witness.message
        );
    }

    #[test]
    fn general_inputs_get_a399_with_a_cycle_witness() {
        let sig = sig_r();
        // A join view: not project-select, not a path of m >= 2 vs path
        // query... it is a 2-path view actually — use a triangle view.
        let v = cqfd_core::Cq::parse(&sig, "V(x) :- R(x,y), R(y,x)").unwrap();
        let q0 = cqfd_core::Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let oracle = DeterminacyOracle::new(sig);
        let class = classify_for(&oracle, &[v], &q0);
        assert_eq!(class.fragment, Fragment::General);
        assert!(
            class.witness.message.contains("~>"),
            "cycle witness expected: {}",
            class.witness.message
        );
    }
}
