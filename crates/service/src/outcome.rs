//! Job results: verdicts plus execution metrics.

use std::fmt;
use std::time::Duration;

/// What a job concluded.
///
/// The first group of variants carries domain verdicts; the last two are
/// service-level: [`JobOutcome::BudgetExceeded`] when the cancellation
/// token fired or a deadline/step/stage limit cut the run short of any
/// conclusion, [`JobOutcome::Error`] when the job could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Determinacy certified at the given chase stage.
    Determined {
        /// The certifying stage.
        stage: usize,
    },
    /// The chase terminated without certifying: not determined, with a
    /// finite refutation (unrestricted *and* finite determinacy fail).
    NotDetermined {
        /// Stages to the fixpoint.
        stages: usize,
    },
    /// Budget ran out before the chase could conclude (the fundamental
    /// Theorem 1 situation).
    Unknown {
        /// Stages run before giving up.
        stages: usize,
    },
    /// A CQ rewriting of `Q0` over the views exists.
    RewritingFound {
        /// The rewriting, rendered over the view signature.
        rewriting: String,
    },
    /// No CQ rewriting exists (determinacy may still hold).
    NoRewriting,
    /// The Theorem 5 reduction produced a CQfDP instance.
    Reduced {
        /// Number of view queries produced.
        queries: usize,
        /// Total body atoms across the queries.
        total_atoms: usize,
        /// The spider parameter `s`.
        s: u16,
    },
    /// The worm halted: `αη11 ⇒^{k_M} u_M`.
    Halted {
        /// `k_M`.
        steps: usize,
    },
    /// The worm was still creeping when the step budget ran out.
    StillCreeping {
        /// Steps taken.
        steps: usize,
    },
    /// The Theorem 14 separation demonstration ran.
    Separated {
        /// Did the chase from `DI` show a 1-2 pattern? (It must not.)
        di_pattern: bool,
        /// Did the chase from the lasso model show one? (It must.)
        lasso_pattern: bool,
    },
    /// A finite counter-example to determinacy was found.
    CounterexampleFound {
        /// Atoms in the counter-example (over `Σ̄`).
        atoms: usize,
    },
    /// No counter-example with at most the budgeted node count.
    NoCounterexample {
        /// The node cap that was searched.
        nodes: usize,
    },
    /// The job was cancelled or ran out of wall-clock/step budget before
    /// reaching any conclusion.
    BudgetExceeded {
        /// What gave out (e.g. `deadline`, `cancelled`, `steps`).
        detail: String,
    },
    /// The job could not be executed.
    Error {
        /// Why.
        message: String,
    },
}

impl JobOutcome {
    /// A short lowercase verdict tag for result lines.
    pub fn verdict(&self) -> &'static str {
        match self {
            JobOutcome::Determined { .. } => "determined",
            JobOutcome::NotDetermined { .. } => "not-determined",
            JobOutcome::Unknown { .. } => "unknown",
            JobOutcome::RewritingFound { .. } => "rewriting",
            JobOutcome::NoRewriting => "no-rewriting",
            JobOutcome::Reduced { .. } => "reduced",
            JobOutcome::Halted { .. } => "halted",
            JobOutcome::StillCreeping { .. } => "still-creeping",
            JobOutcome::Separated { .. } => "separated",
            JobOutcome::CounterexampleFound { .. } => "counterexample",
            JobOutcome::NoCounterexample { .. } => "no-counterexample",
            JobOutcome::BudgetExceeded { .. } => "budget-exceeded",
            JobOutcome::Error { .. } => "error",
        }
    }

    /// Is this a budget/cancellation stop?
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self, JobOutcome::BudgetExceeded { .. })
    }
}

/// Execution metrics harvested from the instrumented chase and
/// homomorphism search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Chase stages run (0 for non-chase jobs).
    pub stages: usize,
    /// Trigger applications across all stages.
    pub triggers: usize,
    /// Homomorphism-search nodes explored (thread-local counter delta —
    /// covers chase trigger enumeration, oracle checks, rewriting search,
    /// and counter-example verification alike).
    pub homs: u64,
    /// Peak atom count of the structure the job built.
    pub peak_atoms: usize,
    /// Peak node count of the structure the job built.
    pub peak_nodes: u32,
    /// Wall-clock execution time (excludes queueing).
    pub elapsed: Duration,
    /// The static chase-termination verdict of the rule set the job
    /// chased (`weakly-acyclic` / `unknown`), when the job ran a chase.
    /// Rendered as the `termination=` note on result lines; deterministic,
    /// so it survives the byte-identity diff across thread counts.
    pub termination: Option<&'static str>,
    /// The `A3xx` fragment the classifier assigned
    /// ([`cqfd_analysis::Fragment::as_str`] — `A300`/`A301`/`A302`/`A399`),
    /// for determinacy-shaped jobs. Rendered as `fragment=`; a pure
    /// function of the input, so it is identical under every dispatch
    /// mode and thread count and survives byte-identity diffs.
    pub fragment: Option<&'static str>,
    /// The procedure the dispatcher actually ran
    /// ([`crate::Route::as_str`]). Rendered as `route=`; differs between
    /// `dispatch=semi` and `dispatch=auto`, so differential harnesses
    /// strip it (like `elapsed_ms=`) before diffing.
    pub route: Option<&'static str>,
    /// `true` when this result was served from the `cqfd-store` cache
    /// (after the stored certificate re-passed the trusted checker)
    /// rather than computed. Rendered as the trailing ` cached=1` marker;
    /// never written into stored entries, so cold and warm runs stay
    /// byte-comparable modulo the marker.
    pub cached: bool,
}

/// The result of one job: its id, kind, outcome, and metrics.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The pool-assigned job id (submission order, starting at 1).
    pub id: u64,
    /// The job kind tag ([`crate::Job::kind`]).
    pub kind: &'static str,
    /// What the job concluded.
    pub outcome: JobOutcome,
    /// Execution metrics.
    pub metrics: JobMetrics,
    /// An encoded `cqfd-cert` certificate for the verdict, when the job
    /// was submitted with
    /// [`JobBudget::emit_certificate`](crate::JobBudget::emit_certificate)
    /// and the kind supports one. Multi-line; excluded from `Display` —
    /// see [`JobResult::render_protocol`].
    pub certificate: Option<String>,
    /// A JSONL `cqfd-obs` trace of the execution, when the job was
    /// submitted with [`JobBudget::emit_trace`](crate::JobBudget::emit_trace)
    /// (wire `trace=1`). Multi-line; excluded from `Display` — see
    /// [`JobResult::render_protocol`].
    pub trace: Option<String>,
    /// A `cqfd-lint v1` diagnostics payload for the job's rule set, when
    /// the job was submitted with
    /// [`JobBudget::emit_lint`](crate::JobBudget::emit_lint) (wire
    /// `lint=1`). Multi-line; excluded from `Display` — see
    /// [`JobResult::render_protocol`].
    pub lint: Option<String>,
}

impl JobResult {
    /// The wire rendering: the one-line `Display` result, plus — when a
    /// certificate, trace and/or lint report is attached —
    /// ` cert_lines=<n>` / ` trace_lines=<n>` / ` lint_lines=<n>` markers
    /// on that line followed by the raw payload lines (certificate first,
    /// then trace, then lint). Readers that ignore the markers still parse
    /// the result line unchanged.
    pub fn render_protocol(&self) -> String {
        let mut out = self.to_string();
        if let Some(cert) = &self.certificate {
            out.push_str(&format!(" cert_lines={}", cert.lines().count()));
        }
        if let Some(trace) = &self.trace {
            out.push_str(&format!(" trace_lines={}", trace.lines().count()));
        }
        if let Some(lint) = &self.lint {
            out.push_str(&format!(" lint_lines={}", lint.lines().count()));
        }
        for payload in [&self.certificate, &self.trace, &self.lint]
            .into_iter()
            .flatten()
        {
            for line in payload.lines() {
                out.push('\n');
                out.push_str(line);
            }
        }
        out
    }
}

impl fmt::Display for JobResult {
    /// The one-line result format used by `cqfd batch` and the TCP
    /// protocol: `job=<id> kind=<kind> verdict=<tag> [detail...] stages=…
    /// triggers=… homs=… peak_atoms=… peak_nodes=… elapsed_ms=…`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job={} kind={} verdict={}",
            self.id,
            self.kind,
            self.outcome.verdict()
        )?;
        match &self.outcome {
            JobOutcome::Determined { stage } => write!(f, " stage={stage}")?,
            JobOutcome::NotDetermined { stages } | JobOutcome::Unknown { stages } => {
                write!(f, " chase_stages={stages}")?
            }
            JobOutcome::RewritingFound { rewriting } => write!(f, " rewriting={rewriting:?}")?,
            JobOutcome::Reduced {
                queries,
                total_atoms,
                s,
            } => write!(f, " queries={queries} total_atoms={total_atoms} s={s}")?,
            JobOutcome::Halted { steps } | JobOutcome::StillCreeping { steps } => {
                write!(f, " steps={steps}")?
            }
            JobOutcome::Separated {
                di_pattern,
                lasso_pattern,
            } => write!(f, " di_pattern={di_pattern} lasso_pattern={lasso_pattern}")?,
            JobOutcome::CounterexampleFound { atoms } => write!(f, " atoms={atoms}")?,
            JobOutcome::NoCounterexample { nodes } => write!(f, " nodes={nodes}")?,
            JobOutcome::BudgetExceeded { detail } => write!(f, " detail={detail}")?,
            JobOutcome::Error { message } => write!(f, " message={message:?}")?,
            JobOutcome::NoRewriting => {}
        }
        let m = &self.metrics;
        write!(
            f,
            " stages={} triggers={} homs={} peak_atoms={} peak_nodes={} elapsed_ms={:.1}",
            m.stages,
            m.triggers,
            m.homs,
            m.peak_atoms,
            m.peak_nodes,
            m.elapsed.as_secs_f64() * 1e3
        )?;
        if let Some(t) = m.termination {
            write!(f, " termination={t}")?;
        }
        if let Some(fr) = m.fragment {
            write!(f, " fragment={fr}")?;
        }
        if let Some(r) = m.route {
            write!(f, " route={r}")?;
        }
        if m.cached {
            write!(f, " cached=1")?;
        }
        Ok(())
    }
}

/// Parses a one-line [`JobResult`] rendering back into its parts —
/// the inverse of `Display` for the **cacheable** verdicts (determine /
/// creep / separate / counterexample outcomes). The store uses this to
/// re-materialize a [`JobResult`] from a cache entry and, crucially, to
/// run the outcome↔certificate consistency gate before serving it.
///
/// Returns `(id, kind, outcome, metrics)`. Verdicts that are never
/// cached (`rewriting`, `reduced`, `budget-exceeded`, `error`, …) are an
/// error here, as is any malformed field: a stored line that does not
/// round-trip is treated by callers as a cache reject, never served.
pub fn parse_result_line(line: &str) -> Result<(u64, String, JobOutcome, JobMetrics), String> {
    let mut fields: Vec<(&str, &str)> = Vec::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
        fields.push((k, v));
    }
    let get = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing {key}="))
    };
    fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("bad {key}=`{v}`"))
    }
    let id: u64 = num("job", get("job")?)?;
    let kind = get("kind")?.to_string();
    let outcome = match get("verdict")? {
        "determined" => JobOutcome::Determined {
            stage: num("stage", get("stage")?)?,
        },
        "not-determined" => JobOutcome::NotDetermined {
            stages: num("chase_stages", get("chase_stages")?)?,
        },
        "unknown" => JobOutcome::Unknown {
            stages: num("chase_stages", get("chase_stages")?)?,
        },
        "halted" => JobOutcome::Halted {
            steps: num("steps", get("steps")?)?,
        },
        "still-creeping" => JobOutcome::StillCreeping {
            steps: num("steps", get("steps")?)?,
        },
        "separated" => JobOutcome::Separated {
            di_pattern: num("di_pattern", get("di_pattern")?)?,
            lasso_pattern: num("lasso_pattern", get("lasso_pattern")?)?,
        },
        "counterexample" => JobOutcome::CounterexampleFound {
            atoms: num("atoms", get("atoms")?)?,
        },
        "no-counterexample" => JobOutcome::NoCounterexample {
            nodes: num("nodes", get("nodes")?)?,
        },
        other => return Err(format!("uncacheable verdict `{other}`")),
    };
    // `termination=` carries one of a closed set of static names; an
    // unknown name cannot be re-rendered byte-identically, so reject it.
    let termination = match fields.iter().find(|(k, _)| *k == "termination") {
        None => None,
        Some((_, "weakly-acyclic")) => Some("weakly-acyclic"),
        Some((_, "unknown")) => Some("unknown"),
        Some((_, other)) => return Err(format!("unknown termination=`{other}`")),
    };
    // `fragment=` and `route=` are closed sets too: parse back through the
    // canonical enums so only re-renderable names round-trip.
    let fragment = match fields.iter().find(|(k, _)| *k == "fragment") {
        None => None,
        Some((_, v)) => Some(
            cqfd_analysis::Fragment::parse(v)
                .ok_or_else(|| format!("unknown fragment=`{v}`"))?
                .as_str(),
        ),
    };
    let route = match fields.iter().find(|(k, _)| *k == "route") {
        None => None,
        Some((_, v)) => Some(
            crate::dispatch::Route::parse(v)
                .ok_or_else(|| format!("unknown route=`{v}`"))?
                .as_str(),
        ),
    };
    let metrics = JobMetrics {
        stages: num("stages", get("stages")?)?,
        triggers: num("triggers", get("triggers")?)?,
        homs: num("homs", get("homs")?)?,
        peak_atoms: num("peak_atoms", get("peak_atoms")?)?,
        peak_nodes: num("peak_nodes", get("peak_nodes")?)?,
        elapsed: Duration::ZERO,
        termination,
        fragment,
        route,
        cached: false,
    };
    get("elapsed_ms")?;
    Ok((id, kind, outcome, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_line_is_one_line_and_tagged() {
        let r = JobResult {
            id: 7,
            kind: "determine",
            outcome: JobOutcome::Determined { stage: 3 },
            metrics: JobMetrics {
                stages: 3,
                triggers: 12,
                homs: 99,
                peak_atoms: 20,
                peak_nodes: 11,
                elapsed: Duration::from_micros(1500),
                termination: Some("weakly-acyclic"),
                fragment: None,
                route: None,
                cached: false,
            },
            certificate: None,
            trace: None,
            lint: None,
        };
        let line = r.to_string();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("job=7 kind=determine verdict=determined stage=3"));
        assert!(line.contains("triggers=12"));
        assert!(line.contains("homs=99"));
        assert!(line.contains("elapsed_ms=1.5"));
        assert!(line.ends_with(" termination=weakly-acyclic"));
        assert_eq!(r.render_protocol(), line, "no certificate, no extra lines");
    }

    #[test]
    fn certificate_payload_renders_with_line_count() {
        let r = JobResult {
            id: 1,
            kind: "creep",
            outcome: JobOutcome::Halted { steps: 5 },
            metrics: JobMetrics::default(),
            certificate: Some("cqfd-cert v1 creep-trace\nhalted true\nend\n".into()),
            trace: None,
            lint: None,
        };
        assert!(!r.to_string().contains('\n'), "Display stays one line");
        let wire = r.render_protocol();
        let mut lines = wire.lines();
        let head = lines.next().unwrap();
        assert!(head.contains(" cert_lines=3"), "{head}");
        assert_eq!(lines.next(), Some("cqfd-cert v1 creep-trace"));
        assert_eq!(lines.clone().count(), 2);
    }

    #[test]
    fn trace_payload_renders_after_certificate() {
        let r = JobResult {
            id: 2,
            kind: "determine",
            outcome: JobOutcome::Determined { stage: 1 },
            metrics: JobMetrics::default(),
            certificate: Some("cqfd-cert v1 chase-trace\nend\n".into()),
            trace: Some("{\"seq\":0}\n{\"seq\":1}\n".into()),
            lint: None,
        };
        let wire = r.render_protocol();
        let mut lines = wire.lines();
        let head = lines.next().unwrap();
        assert!(head.contains(" cert_lines=2 trace_lines=2"), "{head}");
        let rest: Vec<&str> = lines.collect();
        assert_eq!(
            rest,
            vec![
                "cqfd-cert v1 chase-trace",
                "end",
                "{\"seq\":0}",
                "{\"seq\":1}"
            ],
            "certificate lines first, then trace lines"
        );
        // Trace alone works too.
        let r2 = JobResult {
            certificate: None,
            ..r
        };
        let wire2 = r2.render_protocol();
        assert!(wire2.lines().next().unwrap().ends_with(" trace_lines=2"));
        assert_eq!(wire2.lines().count(), 3);
    }

    #[test]
    fn lint_payload_renders_last_with_line_count() {
        let r = JobResult {
            id: 3,
            kind: "separate",
            outcome: JobOutcome::Separated {
                di_pattern: false,
                lasso_pattern: true,
            },
            metrics: JobMetrics::default(),
            certificate: Some("cqfd-cert v1 finite-model\nend\n".into()),
            trace: None,
            lint: Some("cqfd-lint v1\ndiag code=A100 severity=warn msg=\"x\"\nend\n".into()),
        };
        let wire = r.render_protocol();
        let mut lines = wire.lines();
        let head = lines.next().unwrap();
        assert!(head.contains(" cert_lines=2 lint_lines=3"), "{head}");
        let rest: Vec<&str> = lines.collect();
        assert_eq!(
            rest,
            vec![
                "cqfd-cert v1 finite-model",
                "end",
                "cqfd-lint v1",
                "diag code=A100 severity=warn msg=\"x\"",
                "end"
            ],
            "certificate payload first, then lint payload"
        );
    }

    #[test]
    fn result_lines_round_trip_through_the_parser() {
        let r = JobResult {
            id: 9,
            kind: "separate",
            outcome: JobOutcome::Separated {
                di_pattern: false,
                lasso_pattern: true,
            },
            metrics: JobMetrics {
                stages: 83,
                triggers: 410,
                homs: 12345,
                peak_atoms: 900,
                peak_nodes: 220,
                elapsed: Duration::ZERO,
                termination: Some("unknown"),
                fragment: None,
                route: None,
                cached: false,
            },
            certificate: None,
            trace: None,
            lint: None,
        };
        let line = r.to_string();
        let (id, kind, outcome, metrics) = parse_result_line(&line).unwrap();
        assert_eq!((id, kind.as_str()), (9, "separate"));
        assert_eq!(outcome, r.outcome);
        assert_eq!(metrics, r.metrics);
        // Re-rendering the parsed parts reproduces the line byte-for-byte
        // (elapsed is zeroed on both sides).
        let rt = JobResult {
            id,
            kind: "separate",
            outcome,
            metrics,
            certificate: None,
            trace: None,
            lint: None,
        };
        assert_eq!(rt.to_string(), line);
        // Uncacheable and malformed lines are rejected.
        assert!(parse_result_line("job=1 kind=rewrite verdict=rewriting").is_err());
        assert!(parse_result_line("job=1 kind=determine verdict=determined").is_err());
    }

    #[test]
    fn fragment_and_route_round_trip_as_closed_sets() {
        let r = JobResult {
            id: 11,
            kind: "determine",
            outcome: JobOutcome::Determined { stage: 1 },
            metrics: JobMetrics {
                stages: 1,
                triggers: 2,
                homs: 3,
                peak_atoms: 4,
                peak_nodes: 5,
                elapsed: Duration::ZERO,
                termination: Some("weakly-acyclic"),
                fragment: Some("A300"),
                route: Some("psv"),
                cached: false,
            },
            certificate: None,
            trace: None,
            lint: None,
        };
        let line = r.to_string();
        assert!(
            line.contains(" termination=weakly-acyclic fragment=A300 route=psv"),
            "{line}"
        );
        let (id, _, outcome, metrics) = parse_result_line(&line).unwrap();
        assert_eq!(metrics.fragment, Some("A300"));
        assert_eq!(metrics.route, Some("psv"));
        let rt = JobResult {
            id,
            kind: "determine",
            outcome,
            metrics,
            certificate: None,
            trace: None,
            lint: None,
        };
        assert_eq!(rt.to_string(), line, "byte round-trip");
        // Outside the closed sets: reject, never re-render.
        let bad_frag = line.replace("fragment=A300", "fragment=A777");
        assert!(parse_result_line(&bad_frag).is_err());
        let bad_route = line.replace("route=psv", "route=quantum");
        assert!(parse_result_line(&bad_route).is_err());
    }

    #[test]
    fn cached_marker_renders_last() {
        let r = JobResult {
            id: 4,
            kind: "creep",
            outcome: JobOutcome::Halted { steps: 5 },
            metrics: JobMetrics {
                cached: true,
                ..Default::default()
            },
            certificate: None,
            trace: None,
            lint: None,
        };
        assert!(r.to_string().ends_with(" cached=1"));
    }

    #[test]
    fn budget_exceeded_is_flagged() {
        let o = JobOutcome::BudgetExceeded {
            detail: "deadline".into(),
        };
        assert!(o.is_budget_exceeded());
        assert_eq!(o.verdict(), "budget-exceeded");
        assert!(!JobOutcome::NoRewriting.is_budget_exceeded());
    }
}
