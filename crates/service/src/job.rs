//! Job descriptions: what to run, and under which budget.

use crate::dispatch::Dispatch;
use cqfd_core::{Cq, HomEngine, Signature};
use cqfd_rainworm::Delta;
use std::time::Duration;

/// Resource limits for a single job.
///
/// Every limit is cooperative: the executing code polls the budget at loop
/// boundaries (chase stages, trigger applications, creep steps) and stops
/// with [`JobOutcome::BudgetExceeded`](crate::JobOutcome::BudgetExceeded)
/// rather than being killed. A `timeout` becomes an absolute deadline when
/// the job *starts executing* (not when it is submitted), so queueing time
/// does not count against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobBudget {
    /// Maximum chase stages (determinacy / separation jobs).
    pub max_stages: usize,
    /// Maximum counter-example search nodes (structure size cap).
    pub max_search_nodes: usize,
    /// Maximum creep steps (rainworm jobs).
    pub max_steps: usize,
    /// Wall-clock limit for the job, measured from execution start.
    pub timeout: Option<Duration>,
    /// Attach a `cqfd-cert` certificate (encoded text) to the result,
    /// where the job kind supports one (`determine`, `creep`, `separate`,
    /// `counterexample`). Off by default: certificates cost an extra
    /// encode pass and can dwarf the one-line result.
    pub emit_certificate: bool,
    /// Attach a JSONL span/event trace of the job's execution to the
    /// result (wire `trace=1`, answered with `trace_lines=`). Off by
    /// default: a trace turns on the `cqfd-obs` capture sink for the
    /// worker thread, which makes every span/event site pay for rendering.
    pub emit_trace: bool,
    /// Enumeration worker threads for chase-based jobs (wire `threads=`,
    /// CLI `--threads`). `1` (the default) is fully sequential. The chase
    /// output is byte-identical at every setting; the executor additionally
    /// caps this so that `pool workers × job threads` never oversubscribes
    /// the host (see `PoolConfig`).
    pub threads: usize,
    /// Attach a `cqfd-lint v1` diagnostics payload for the job's rule set
    /// to the result (wire `lint=1`, answered with `lint_lines=`). Off by
    /// default. Independent of the pre-pool rejection gate, which always
    /// runs on wire-submitted jobs: `lint=1` also surfaces the warnings
    /// and infos a passing job accumulated.
    pub emit_lint: bool,
    /// Consult the configured `cqfd-store` cache before executing, and
    /// write conclusive results back (wire `cache=0` to disable). On by
    /// default; a no-op when no store is configured. Not part of the
    /// canonical job hash — it controls whether the cache is used, not
    /// what the job computes.
    pub use_cache: bool,
    /// Maintain a write-ahead stage log for this job's chase (wire
    /// `resume=1`), resuming from an existing log after a crash or
    /// cancellation. Off by default (the log costs a flush per stage);
    /// a no-op when no store is configured or the job kind has no
    /// resumable chase. Not part of the canonical job hash.
    pub resume: bool,
    /// Homomorphism search engine for chase-based jobs (wire `hom=`, CLI
    /// `--hom-engine`). Defaults to the worst-case-optimal engine; `legacy`
    /// selects the backtracking [`HomPlan`](cqfd_core::HomPlan) for
    /// differential testing. Both engines produce byte-identical results,
    /// so this is not part of the canonical job hash — it controls how the
    /// job computes, not what.
    pub hom_engine: HomEngine,
    /// Fragment-dispatch mode for determinacy-shaped jobs (wire
    /// `dispatch=`, CLI `--dispatch`). `auto` (the default) routes
    /// decidable fragments to complete procedures; `semi` pins the plain
    /// semi-decision pipeline; `forced:A3xx` asserts the classification.
    /// **Answer-relevant** — `auto` can upgrade `unknown` outcomes to
    /// definite verdicts — so unlike `hom_engine` this *is* part of the
    /// canonical job hash.
    pub dispatch: Dispatch,
}

impl Default for JobBudget {
    fn default() -> Self {
        JobBudget {
            max_stages: 32,
            max_search_nodes: 3,
            max_steps: 100_000,
            timeout: None,
            emit_certificate: false,
            emit_trace: false,
            threads: 1,
            emit_lint: false,
            use_cache: true,
            resume: false,
            hom_engine: HomEngine::default(),
            dispatch: Dispatch::default(),
        }
    }
}

impl JobBudget {
    /// Sets the stage limit.
    pub fn with_stages(mut self, max_stages: usize) -> Self {
        self.max_stages = max_stages;
        self
    }

    /// Sets the creep-step limit.
    pub fn with_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the counter-example node limit.
    pub fn with_search_nodes(mut self, max_search_nodes: usize) -> Self {
        self.max_search_nodes = max_search_nodes;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Requests a certificate payload on the result.
    pub fn with_certificate(mut self, emit: bool) -> Self {
        self.emit_certificate = emit;
        self
    }

    /// Requests a JSONL execution trace on the result.
    pub fn with_trace(mut self, emit: bool) -> Self {
        self.emit_trace = emit;
        self
    }

    /// Sets the chase enumeration thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Requests a lint-diagnostics payload on the result.
    pub fn with_lint(mut self, emit: bool) -> Self {
        self.emit_lint = emit;
        self
    }

    /// Enables or disables result-cache use for this job.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Enables the write-ahead stage log (and resume from it).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Selects the homomorphism search engine for chase-based jobs.
    pub fn with_hom_engine(mut self, hom_engine: HomEngine) -> Self {
        self.hom_engine = hom_engine;
        self
    }

    /// Selects the fragment-dispatch mode for determinacy-shaped jobs.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }
}

/// A unit of work for the pool — one invocation of one of the toolbox's
/// semi-decision procedures, with its inputs and budget.
///
/// The variants mirror the `cqfd` CLI commands; [`crate::exec::execute`]
/// is the single execution path shared by the pool workers, `cqfd batch`,
/// and the TCP server.
#[derive(Debug, Clone)]
pub enum Job {
    /// Run the CQfDP.3 determinacy oracle on `(views, q0)`.
    Determine {
        /// The base signature `Σ`.
        sig: Signature,
        /// The view queries `Q`.
        views: Vec<Cq>,
        /// The target query `Q0`.
        q0: Cq,
        /// Limits (stages + timeout apply).
        budget: JobBudget,
    },
    /// Look for a CQ rewriting of `q0` over the views.
    Rewrite {
        /// The base signature `Σ`.
        sig: Signature,
        /// The view queries `Q`.
        views: Vec<Cq>,
        /// The target query `Q0`.
        q0: Cq,
    },
    /// Run the Theorem 5 reduction `∆ ↦ (Q, Q0)` and report its size.
    Reduce {
        /// The rainworm instruction set.
        delta: Delta,
    },
    /// Creep a rainworm from its initial configuration.
    Creep {
        /// The rainworm instruction set.
        delta: Delta,
        /// Limits (steps + timeout apply).
        budget: JobBudget,
    },
    /// Demonstrate the Theorem 14 separating example.
    Separate {
        /// Limits (stages applies, to both the DI and the lasso chase).
        budget: JobBudget,
    },
    /// Brute-force search for a finite counter-example to determinacy.
    CounterexampleSearch {
        /// The base signature `Σ`.
        sig: Signature,
        /// The view queries `Q`.
        views: Vec<Cq>,
        /// The target query `Q0`.
        q0: Cq,
        /// Limits (search-nodes applies).
        budget: JobBudget,
    },
}

impl Job {
    /// The job's kind as a lowercase tag (used in result lines and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Determine { .. } => "determine",
            Job::Rewrite { .. } => "rewrite",
            Job::Reduce { .. } => "reduce",
            Job::Creep { .. } => "creep",
            Job::Separate { .. } => "separate",
            Job::CounterexampleSearch { .. } => "counterexample",
        }
    }

    /// The job's budget, when the variant carries one.
    pub fn budget(&self) -> Option<&JobBudget> {
        match self {
            Job::Determine { budget, .. }
            | Job::Creep { budget, .. }
            | Job::Separate { budget }
            | Job::CounterexampleSearch { budget, .. } => Some(budget),
            Job::Rewrite { .. } | Job::Reduce { .. } => None,
        }
    }

    /// Mutable access to the job's budget, when the variant carries one.
    /// Used by batch drivers that override parsed budgets from the command
    /// line (e.g. `cqfd batch --threads N`).
    pub fn budget_mut(&mut self) -> Option<&mut JobBudget> {
        match self {
            Job::Determine { budget, .. }
            | Job::Creep { budget, .. }
            | Job::Separate { budget }
            | Job::CounterexampleSearch { budget, .. } => Some(budget),
            Job::Rewrite { .. } | Job::Reduce { .. } => None,
        }
    }
}
