//! The single-job execution path, shared by pool workers, `cqfd batch`,
//! and the TCP server.

use crate::job::{Job, JobBudget};
use crate::outcome::{JobMetrics, JobOutcome, JobResult};
use cqfd_cert::{convert, Certificate};
use cqfd_chase::{ChaseBudget, ChaseOutcome, ChaseRun};
use cqfd_core::{
    find_homomorphism, hom_nodes_explored, publish_hom_metrics, reset_hom_nodes_explored,
    CancelToken, VarMap,
};
use cqfd_greenred::{
    cq_rewriting, greenred_tgds, search_counterexample, Color, DeterminacyOracle, Verdict,
};
use cqfd_obs::{span, Stopwatch, Unit};
use cqfd_rainworm::config::Config;
use cqfd_rainworm::run::step;
use std::sync::Arc;
use std::time::Instant;

/// Executes one job to completion (or budget exhaustion / cancellation)
/// on the calling thread, returning its result.
///
/// The `cancel` token is the pool's cooperative kill switch: chase-based
/// jobs thread it into [`ChaseBudget`] (polled at stage and trigger
/// boundaries), creep jobs poll it every step. Homomorphism-search nodes
/// are metered via the thread-local counter in `cqfd_core::hom`, **reset
/// at job start** and read absolutely at job end — correct under pool
/// concurrency because each job runs entirely on one worker thread, and
/// robust to worker reuse (a before/after delta would be too, but a reset
/// also keeps the counter from growing without bound over a pool's life).
pub fn execute(id: u64, job: &Job, cancel: &CancelToken) -> JobResult {
    execute_capped(id, job, cancel, usize::MAX)
}

/// [`execute`] with an upper bound on the job's chase enumeration threads.
///
/// The pool passes `available_parallelism / workers` here so that
/// `workers × threads` never oversubscribes the host; direct callers
/// (`cqfd determine`, tests) use [`execute`], which does not cap. Capping
/// never changes job output — the parallel chase is byte-deterministic at
/// every thread count — only how fast it arrives.
pub fn execute_capped(id: u64, job: &Job, cancel: &CancelToken, thread_cap: usize) -> JobResult {
    let clock = Stopwatch::start();
    let tracing = job.budget().is_some_and(|b| b.emit_trace);
    if tracing {
        // The whole job runs on this thread, so a thread-local capture
        // collects exactly this job's spans/events, tagged with its id.
        cqfd_obs::trace::capture_begin(id);
    } else {
        // Tag records for any globally-installed subscriber too.
        cqfd_obs::trace::set_current_job(Some(id));
    }
    reset_hom_nodes_explored();
    let mut metrics = JobMetrics::default();
    let mut certificate = None;
    let outcome = {
        let _job_span = span!("job.execute", kind = job.kind());
        if cancel.is_cancelled() {
            JobOutcome::BudgetExceeded {
                detail: "cancelled".into(),
            }
        } else {
            run_job(job, cancel, thread_cap, &mut metrics, &mut certificate)
        }
    };
    metrics.homs = hom_nodes_explored();
    metrics.elapsed = clock.elapsed();
    // Hom work done outside any chase run (rewriting search, witness
    // checks) is still pending on this thread; drain it now.
    publish_hom_metrics();
    let trace = if tracing {
        Some(cqfd_obs::trace::capture_end())
    } else {
        cqfd_obs::trace::set_current_job(None);
        None
    };
    record_job_metrics(job.kind(), outcome.verdict(), &clock);
    let lint = if job.budget().is_some_and(|b| b.emit_lint) {
        Some(crate::lint::lint_job(job).render_lines())
    } else {
        None
    };
    JobResult {
        id,
        kind: job.kind(),
        outcome,
        metrics,
        certificate,
        trace,
        lint,
    }
}

/// Publishes per-job counters and latency into the global registry. Job
/// id is deliberately **not** a metric label (unbounded cardinality);
/// per-job attribution lives in the trace lines instead.
fn record_job_metrics(kind: &'static str, verdict: &'static str, clock: &Stopwatch) {
    let reg = cqfd_obs::global();
    reg.counter(
        "cqfd_pool_jobs_total",
        "Jobs executed, by kind and verdict.",
        &[("kind", kind), ("verdict", verdict)],
    )
    .inc();
    reg.histogram(
        "cqfd_pool_job_seconds",
        "Job execution wall time (excludes queueing), by kind.",
        &[("kind", kind)],
        Unit::Seconds,
    )
    .observe(clock.elapsed_ns());
}

/// Builds the chase budget for a job: declared limits plus the pool's
/// cancellation token, (if any) a deadline starting now, and the job's
/// enumeration thread count capped by the executor's `thread_cap`.
fn chase_budget(budget: &JobBudget, cancel: &CancelToken, thread_cap: usize) -> ChaseBudget {
    let mut b = ChaseBudget::stages(budget.max_stages)
        .with_cancel(cancel.clone())
        .with_threads(budget.threads.min(thread_cap.max(1)));
    if let Some(t) = budget.timeout {
        b = b.with_timeout(t);
    }
    b
}

/// Harvests chase-run metrics (stages, triggers, structure peaks) and the
/// run's static termination verdict.
fn record_run(metrics: &mut JobMetrics, run: &ChaseRun) {
    metrics.stages += run.stage_count();
    metrics.triggers += run.triggers_fired();
    metrics.peak_atoms = metrics.peak_atoms.max(run.structure.atom_count());
    metrics.peak_nodes = metrics.peak_nodes.max(run.structure.node_count());
    metrics.termination = Some(run.termination.name());
}

/// Names what stopped a cancelled run: the token or the clock.
fn stop_detail(cancel: &CancelToken) -> String {
    if cancel.is_cancelled() {
        "cancelled".into()
    } else {
        "deadline".into()
    }
}

fn run_job(
    job: &Job,
    cancel: &CancelToken,
    thread_cap: usize,
    metrics: &mut JobMetrics,
    certificate: &mut Option<String>,
) -> JobOutcome {
    match job {
        Job::Determine {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            let cr = oracle.certify_run(views, q0, &chase_budget(budget, cancel, thread_cap));
            record_run(metrics, &cr.run);
            if cr.run.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            if budget.emit_certificate {
                *certificate = Some(cqfd_cert::encode(&cr.certificate));
            }
            match cr.verdict {
                Verdict::Determined { stage } => JobOutcome::Determined { stage },
                Verdict::NotDeterminedUnrestricted { stages } => {
                    JobOutcome::NotDetermined { stages }
                }
                Verdict::Unknown { stages } => JobOutcome::Unknown { stages },
            }
        }
        Job::Rewrite { sig, views, q0 } => {
            let arc = Arc::new(sig.clone());
            match cq_rewriting(&arc, views, q0) {
                Some(rw) => JobOutcome::RewritingFound {
                    rewriting: rw.query.display_with(&rw.view_signature).to_string(),
                },
                None => JobOutcome::NoRewriting,
            }
        }
        Job::Reduce { delta } => {
            let inst = cqfd_reduction::reduce(delta);
            JobOutcome::Reduced {
                queries: inst.stats.queries,
                total_atoms: inst.stats.total_atoms,
                s: inst.stats.s,
            }
        }
        Job::Creep { delta, budget } => {
            let outcome = creep_job(delta, budget, cancel);
            if budget.emit_certificate {
                // Re-creeping for the trace is cheap relative to the reduction
                // pipelines these worms feed; a budget-exhausted run gets no
                // certificate (there is no conclusive claim to certify).
                match outcome {
                    JobOutcome::Halted { steps } => {
                        let cert =
                            cqfd_cert::emit::creep_certificate(delta, steps + 1, checkpoint(steps));
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    JobOutcome::StillCreeping { steps } => {
                        let cert =
                            cqfd_cert::emit::creep_certificate(delta, steps, checkpoint(steps));
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    _ => {}
                }
            }
            outcome
        }
        Job::Separate { budget } => {
            // Thread the service budget (cancel, deadline, threads) into
            // both Theorem 14 chases, preserving the generous size caps of
            // the stock separating budget.
            let chase = ChaseBudget {
                cancel: cancel.clone(),
                deadline: budget.timeout.map(|t| Instant::now() + t),
                threads: budget.threads.max(1).min(thread_cap.max(1)),
                ..cqfd_separating::theorem14::separating_budget(budget.max_stages)
            };
            let (_, run_di, di_pattern) = cqfd_separating::theorem14::chase_from_di_with(&chase);
            record_run(metrics, &run_di);
            if run_di.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            let (g_lasso, run_lasso, lasso_pattern) =
                cqfd_separating::theorem14::chase_from_lasso_with(3, 1, &chase);
            record_run(metrics, &run_lasso);
            if run_lasso.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            if budget.emit_certificate && lasso_pattern {
                *certificate =
                    cqfd_cert::emit::pattern_certificate(&g_lasso).map(|c| cqfd_cert::encode(&c));
            }
            JobOutcome::Separated {
                di_pattern,
                lasso_pattern,
            }
        }
        Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            match search_counterexample(&oracle, views, q0, budget.max_search_nodes) {
                Some(d) => {
                    metrics.peak_atoms = metrics.peak_atoms.max(d.atom_count());
                    metrics.peak_nodes = metrics.peak_nodes.max(d.node_count());
                    if budget.emit_certificate {
                        *certificate = counterexample_certificate(&oracle, views, q0, &d)
                            .map(|c| cqfd_cert::encode(&c));
                    }
                    JobOutcome::CounterexampleFound {
                        atoms: d.atom_count(),
                    }
                }
                None => {
                    if budget.emit_certificate {
                        let cert = Certificate::NonHomRefutation {
                            sig: convert::sig_spec(oracle.greenred().colored()),
                            what: format!(
                                "exhaustive search found no counter-example to `{}` \
                                 determinacy over ≤ {} nodes",
                                q0.name, budget.max_search_nodes
                            ),
                            bound: budget.max_search_nodes.max(1) as u64,
                            explored: hom_nodes_explored(),
                        };
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    JobOutcome::NoCounterexample {
                        nodes: budget.max_search_nodes,
                    }
                }
            }
        }
    }
}

/// A checkpoint interval that keeps creep certificates to ≲ 64 config
/// lines regardless of run length.
fn checkpoint(steps: usize) -> usize {
    (steps / 64).max(1)
}

/// Builds the [`Certificate::FiniteModel`] for a found counter-example:
/// `d` models `T_Q`, and at the disagreeing tuple one color of `Q0` holds
/// (witnessed) while the other fails.
fn counterexample_certificate(
    oracle: &DeterminacyOracle,
    views: &[cqfd_core::Cq],
    q0: &cqfd_core::Cq,
    d: &cqfd_core::Structure,
) -> Option<Certificate> {
    let report = cqfd_greenred::is_counterexample(oracle, views, q0, d);
    let tuple = report.witness?;
    let green = oracle.colored_query(Color::Green, q0);
    let red = oracle.colored_query(Color::Red, q0);
    let (holds_q, fails_q) = if green.holds(d, &tuple) {
        (green, red)
    } else {
        (red, green)
    };
    let fixed: VarMap = holds_q
        .head_vars
        .iter()
        .copied()
        .zip(tuple.iter().copied())
        .collect();
    let witness = find_homomorphism(&holds_q.body, d, &fixed)?;
    let tgds = greenred_tgds(oracle.greenred(), views);
    Some(Certificate::FiniteModel {
        sig: convert::sig_spec(oracle.greenred().colored()),
        rules: tgds.iter().map(convert::rule_spec).collect(),
        structure: convert::struct_spec(d),
        holds: vec![convert::holds_claim(&holds_q, &tuple, &witness)],
        fails: vec![convert::fails_claim(&fails_q, &tuple)],
    })
}

/// The creep loop with cooperative cancellation: the rainworm step
/// function itself is untouched; the service drives it one `⇒` at a time,
/// polling the token every step and the clock every 64 steps.
fn creep_job(delta: &cqfd_rainworm::Delta, budget: &JobBudget, cancel: &CancelToken) -> JobOutcome {
    let deadline = budget.timeout.map(|t| Instant::now() + t);
    let mut cur = Config::initial();
    if let Err(e) = cur.validate() {
        return JobOutcome::Error {
            message: format!("invalid start configuration: {e}"),
        };
    }
    for k in 0..budget.max_steps {
        if cancel.is_cancelled() {
            return JobOutcome::BudgetExceeded {
                detail: "cancelled".into(),
            };
        }
        if k % 64 == 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return JobOutcome::BudgetExceeded {
                        detail: "deadline".into(),
                    };
                }
            }
        }
        match step(delta, &cur) {
            Some(next) => {
                if let Err(e) = next.validate() {
                    return JobOutcome::Error {
                        message: format!("Lemma 20 violated at step {}: {e}", k + 1),
                    };
                }
                cur = next;
            }
            None => return JobOutcome::Halted { steps: k },
        }
    }
    JobOutcome::StillCreeping {
        steps: budget.max_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::{Cq, Signature};
    use cqfd_rainworm::families::{forever_worm, halting_worm_short};
    use std::time::Duration;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn determine_job_certifies_identity_view() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(r.outcome, JobOutcome::Determined { stage: 1 });
        assert!(r.metrics.stages >= 1);
        assert!(r.metrics.homs > 0, "hom search was metered");
        assert!(r.metrics.peak_atoms > 0);
    }

    #[test]
    fn pre_cancelled_job_does_not_run() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let job = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &cancel);
        assert!(r.outcome.is_budget_exceeded());
    }

    #[test]
    fn creep_job_halts_and_respects_deadline() {
        let halting = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &halting, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::Halted { .. }));

        let forever = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default()
                .with_steps(usize::MAX)
                .with_timeout(Duration::from_millis(50)),
        };
        let r = execute(2, &forever, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
        assert!(r.metrics.elapsed < Duration::from_secs(5));
    }

    /// Regression: the hom-node counter is reset at job start, so a cheap
    /// job executed on a worker thread that previously ran a hom-heavy job
    /// reports its *own* hom count (zero), not the accumulated total. Run
    /// both jobs through a 1-worker pool so they share a thread for sure.
    #[test]
    fn hom_counter_resets_between_jobs_on_a_reused_worker() {
        let pool = crate::Pool::new(crate::PoolConfig::default().with_workers(1));
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let heavy = pool
            .submit_blocking(Job::Determine {
                sig,
                views,
                q0,
                budget: JobBudget::default(),
            })
            .wait();
        assert!(heavy.metrics.homs > 0, "first job explores hom nodes");
        let light = pool
            .submit_blocking(Job::Creep {
                delta: halting_worm_short(),
                budget: JobBudget::default(),
            })
            .wait();
        assert_eq!(
            light.metrics.homs, 0,
            "creep does no hom search; a leaked counter would show {}",
            heavy.metrics.homs
        );
    }

    #[test]
    fn determine_job_attaches_a_checkable_certificate_on_request() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &job, &CancelToken::inert());
        let text = r.certificate.expect("cert=1 attaches a certificate");
        let cert = cqfd_cert::parse(&text).unwrap();
        assert_eq!(cert.kind(), "chase-trace");
        let report = cqfd_cert::check(&cert).unwrap();
        assert!(report.summary.contains("goal holds"), "{}", report.summary);
    }

    #[test]
    fn creep_and_separate_jobs_attach_certificates_on_request() {
        let creep = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &creep, &CancelToken::inert());
        let steps = match r.outcome {
            JobOutcome::Halted { steps } => steps,
            other => panic!("wrong outcome: {other:?}"),
        };
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        let report = cqfd_cert::check(&cert).unwrap();
        assert_eq!(report.steps, steps, "trace replays the job's creep");

        let sep = Job::Separate {
            budget: JobBudget::default().with_stages(60).with_certificate(true),
        };
        let r = execute(2, &sep, &CancelToken::inert());
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "finite-model");
        assert!(cqfd_cert::check(&cert).is_ok());
    }

    #[test]
    fn counterexample_jobs_attach_certificates_both_ways() {
        // The projection instance has a 2-node counter-example; the
        // identity view has none.
        let inst = cqfd_greenred::instances::projection_instance();
        let found = Job::CounterexampleSearch {
            sig: inst.sig,
            views: inst.views,
            q0: inst.q0,
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &found, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::CounterexampleFound { .. }));
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "finite-model");
        assert!(cqfd_cert::check(&cert).is_ok());

        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let none = Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget: JobBudget::default()
                .with_search_nodes(2)
                .with_certificate(true),
        };
        let r = execute(2, &none, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::NoCounterexample { .. }));
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "non-hom-refutation");
        let report = cqfd_cert::check(&cert).unwrap();
        assert!(
            report.attestation,
            "refutations are flagged as attestations"
        );
    }

    #[test]
    fn lint_flag_attaches_report_and_run_stamps_termination() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default().with_lint(true),
        };
        let r = execute(1, &job, &CancelToken::inert());
        let lint = r.lint.as_deref().expect("lint=1 attaches a report");
        assert!(lint.starts_with("cqfd-lint v1\n"), "{lint}");
        assert!(lint.trim_end().ends_with("end"), "{lint}");
        assert!(
            r.metrics.termination.is_some(),
            "chase jobs stamp the termination verdict"
        );
        let head = r.render_protocol();
        let head = head.lines().next().unwrap();
        assert!(head.contains("lint_lines="), "{head}");
        assert!(head.contains("termination="), "{head}");
    }

    #[test]
    fn no_certificate_without_the_flag() {
        let job = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert!(r.certificate.is_none());
    }

    #[test]
    fn determine_with_deadline_reports_budget_exceeded() {
        // Composed-view instance whose chase diverges: with an immediate
        // deadline the oracle must stop as budget-exceeded, not Unknown.
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,z) :- R(x,y), R(y,z)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default()
                .with_stages(usize::MAX)
                .with_timeout(Duration::ZERO),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
    }
}
