//! The single-job execution path, shared by pool workers, `cqfd batch`,
//! and the TCP server.

use crate::dispatch::{Dispatch, Route};
use crate::job::{Job, JobBudget};
use crate::outcome::{parse_result_line, JobMetrics, JobOutcome, JobResult};
use cqfd_analysis::{Classification, Fragment};
use cqfd_cert::{convert, Certificate};
use cqfd_chase::{ChaseBudget, ChaseHooks, ChaseOutcome, ChaseRun};
use cqfd_core::{
    find_homomorphism, hom_nodes_explored, publish_hom_metrics, reset_hom_nodes_explored,
    CancelToken, VarMap,
};
use cqfd_greenred::{
    cq_rewriting, greenred_tgds, search_counterexample, Color, DeterminacyOracle, Verdict,
};
use cqfd_obs::{span, Stopwatch, Unit};
use cqfd_rainworm::config::Config;
use cqfd_rainworm::run::step;
use cqfd_store::{JobKey, KeyBuilder, Lookup, StageLogWriter, Store};
use std::sync::Arc;
use std::time::Instant;

/// Executes one job to completion (or budget exhaustion / cancellation)
/// on the calling thread, returning its result.
///
/// The `cancel` token is the pool's cooperative kill switch: chase-based
/// jobs thread it into [`ChaseBudget`] (polled at stage and trigger
/// boundaries), creep jobs poll it every step. Homomorphism-search nodes
/// are metered via the thread-local counter in `cqfd_core::hom`, **reset
/// at job start** and read absolutely at job end — correct under pool
/// concurrency because each job runs entirely on one worker thread, and
/// robust to worker reuse (a before/after delta would be too, but a reset
/// also keeps the counter from growing without bound over a pool's life).
pub fn execute(id: u64, job: &Job, cancel: &CancelToken) -> JobResult {
    execute_capped(id, job, cancel, usize::MAX)
}

/// [`execute`] with an upper bound on the job's chase enumeration threads.
///
/// The pool passes `available_parallelism / workers` here so that
/// `workers × threads` never oversubscribes the host; direct callers
/// (`cqfd determine`, tests) use [`execute`], which does not cap. Capping
/// never changes job output — the parallel chase is byte-deterministic at
/// every thread count — only how fast it arrives.
pub fn execute_capped(id: u64, job: &Job, cancel: &CancelToken, thread_cap: usize) -> JobResult {
    execute_stored(id, job, cancel, thread_cap, None, false)
}

/// Store context of one execution: the opened store and the job's
/// canonical key, plus the job's cache/resume opt-ins.
struct StoreCtx<'a> {
    store: &'a Store,
    key: JobKey,
    cache: bool,
    resume: bool,
}

/// [`execute_capped`] with a `cqfd-store` attached.
///
/// With `lookup` set, the cache is probed first (under the job's
/// `use_cache` flag): a stored entry is served only after the trusted
/// checker re-validates its certificate **and** the recorded outcome is
/// consistent with the certificate kind — anything less falls through to
/// a fresh run. Pool workers pass `lookup = false` because the pool
/// already probed at submission; the store is still used for write-back
/// and (under `resume=1`) the write-ahead stage log.
pub fn execute_stored(
    id: u64,
    job: &Job,
    cancel: &CancelToken,
    thread_cap: usize,
    store: Option<&Store>,
    lookup: bool,
) -> JobResult {
    let ctx = store.and_then(|s| {
        let budget = job.budget()?;
        Some(StoreCtx {
            store: s,
            key: job_key(job)?,
            cache: budget.use_cache,
            resume: budget.resume,
        })
    });
    if lookup {
        if let Some(ctx) = ctx.as_ref().filter(|c| c.cache) {
            if let Some(hit) = serve_cached(id, job, ctx) {
                return hit;
            }
        }
    }
    execute_inner(id, job, cancel, thread_cap, ctx.as_ref())
}

/// The pool's pre-dispatch probe: a checker-validated, gate-consistent
/// cache hit as a finished [`JobResult`], or `None` (run the job).
pub(crate) fn cached_result(id: u64, job: &Job, store: &Store) -> Option<JobResult> {
    if !job.budget().is_some_and(|b| b.use_cache) {
        return None;
    }
    let ctx = StoreCtx {
        store,
        key: job_key(job)?,
        cache: true,
        resume: false,
    };
    serve_cached(id, job, &ctx)
}

fn execute_inner(
    id: u64,
    job: &Job,
    cancel: &CancelToken,
    thread_cap: usize,
    ctx: Option<&StoreCtx>,
) -> JobResult {
    let clock = Stopwatch::start();
    let tracing = job.budget().is_some_and(|b| b.emit_trace);
    if tracing {
        // The whole job runs on this thread, so a thread-local capture
        // collects exactly this job's spans/events, tagged with its id.
        cqfd_obs::trace::capture_begin(id);
    } else {
        // Tag records for any globally-installed subscriber too.
        cqfd_obs::trace::set_current_job(Some(id));
    }
    reset_hom_nodes_explored();
    let mut metrics = JobMetrics::default();
    let mut certificate = None;
    let outcome = {
        let _job_span = span!("job.execute", kind = job.kind());
        if cancel.is_cancelled() {
            JobOutcome::BudgetExceeded {
                detail: "cancelled".into(),
            }
        } else {
            run_job(job, cancel, thread_cap, &mut metrics, &mut certificate, ctx)
        }
    };
    // A blown deadline is the black-box moment: the ring's tail shows
    // what the job was chasing when the clock ran out. (Cooperative
    // cancellation is the caller's decision, not a forensic event.)
    if matches!(&outcome, JobOutcome::BudgetExceeded { detail } if detail == "deadline") {
        cqfd_flight::dump_to_stderr("timeout", 256);
    }
    metrics.homs = hom_nodes_explored();
    metrics.elapsed = clock.elapsed();
    // Hom work done outside any chase run (rewriting search, witness
    // checks) is still pending on this thread; drain it now.
    publish_hom_metrics();
    let trace = if tracing {
        Some(cqfd_obs::trace::capture_end())
    } else {
        cqfd_obs::trace::set_current_job(None);
        None
    };
    record_job_metrics(job.kind(), outcome.verdict(), &clock);
    let lint = if job.budget().is_some_and(|b| b.emit_lint) {
        Some(crate::lint::lint_job(job).render_lines())
    } else {
        None
    };
    let mut result = JobResult {
        id,
        kind: job.kind(),
        outcome,
        metrics,
        certificate,
        trace,
        lint,
    };
    if let Some(ctx) = ctx.filter(|c| c.cache) {
        write_back(ctx, &result);
        // The certificate was force-computed for the cache entry; drop it
        // from the reply unless the submitter asked for one.
        if !job.budget().is_some_and(|b| b.emit_certificate) {
            result.certificate = None;
        }
    }
    result
}

/// The canonical cache key of a job, or `None` for kinds the store does
/// not cache (`rewrite` and `reduce` have no certificate-backed verdict
/// to validate a hit with, and both are cheap and deterministic anyway).
///
/// Only budget knobs that can change the **verdict** are hashed; thread
/// counts, timeouts, and the emission/cache/resume flags are excluded
/// (see `cqfd_store::canon`). The dispatch mode *is* hashed for the
/// determinacy kinds: `auto` can turn an `unknown`/`no-counterexample`
/// into a definite verdict, so results under different modes are
/// different answers and must not be served for one another.
pub fn job_key(job: &Job) -> Option<JobKey> {
    match job {
        Job::Determine {
            sig,
            views,
            q0,
            budget,
        } => {
            let mut k = KeyBuilder::new("determine");
            k.sig(sig)
                .views(sig, views)
                .query(sig, q0)
                .knob("stages", budget.max_stages as u64)
                .lines("dispatch", &[budget.dispatch.wire()]);
            Some(k.finish())
        }
        Job::Creep { delta, budget } => {
            let mut k = KeyBuilder::new("creep");
            let worm: Vec<String> = cqfd_rainworm::parse::render_delta(delta)
                .lines()
                .map(str::to_owned)
                .collect();
            k.lines("worm", &worm)
                .knob("steps", budget.max_steps as u64);
            Some(k.finish())
        }
        Job::Separate { budget } => {
            let mut k = KeyBuilder::new("separate");
            k.knob("stages", budget.max_stages as u64);
            Some(k.finish())
        }
        Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget,
        } => {
            let mut k = KeyBuilder::new("counterexample");
            k.sig(sig)
                .views(sig, views)
                .query(sig, q0)
                .knob("nodes", budget.max_search_nodes as u64)
                .lines("dispatch", &[budget.dispatch.wire()]);
            Some(k.finish())
        }
        Job::Rewrite { .. } | Job::Reduce { .. } => None,
    }
}

/// Is this outcome worth caching? Conclusive domain verdicts only —
/// budget exhaustion and errors depend on wall clocks and environment,
/// and a `Separated` run without a lasso pattern has no certificate.
fn cacheable(result: &JobResult) -> bool {
    matches!(
        result.outcome,
        JobOutcome::Determined { .. }
            | JobOutcome::NotDetermined { .. }
            | JobOutcome::Unknown { .. }
            | JobOutcome::Halted { .. }
            | JobOutcome::StillCreeping { .. }
            | JobOutcome::Separated { .. }
            | JobOutcome::CounterexampleFound { .. }
            | JobOutcome::NoCounterexample { .. }
    )
}

/// The normalization applied before storing a result line: submission id
/// and wall-clock are zeroed (both vary run to run), the cached marker is
/// off. Everything else — verdict detail, stage/trigger/hom counts, the
/// termination note — is deterministic and stored verbatim.
fn normalized_line(result: &JobResult) -> String {
    let mut stored = result.clone();
    stored.id = 0;
    stored.metrics.elapsed = std::time::Duration::ZERO;
    stored.metrics.cached = false;
    stored.trace = None;
    stored.lint = None;
    stored.certificate = None;
    stored.to_string()
}

/// Writes a conclusive, certificate-carrying result into the store.
fn write_back(ctx: &StoreCtx, result: &JobResult) {
    if !cacheable(result) {
        return;
    }
    let Some(cert) = result.certificate.as_deref() else {
        return;
    };
    let _span = span!("store.insert", kind = result.kind);
    if let Err(e) = ctx
        .store
        .insert(&ctx.key, result.kind, &normalized_line(result), cert)
    {
        // A full disk or permission problem must not fail the job; the
        // result is simply not cached.
        let error = e.to_string();
        cqfd_obs::event!("store.insert_failed", error = &error);
    }
}

/// Serves a cache hit, or `None` to fall through to a fresh run. The
/// entry has already passed the trusted checker inside
/// [`Store::lookup`]; this adds the outcome↔certificate consistency gate
/// and re-materializes the [`JobResult`].
fn serve_cached(id: u64, job: &Job, ctx: &StoreCtx) -> Option<JobResult> {
    let clock = Stopwatch::start();
    let _span = span!("store.serve", kind = job.kind());
    let entry = match ctx.store.lookup(&ctx.key, job.kind()) {
        Lookup::Hit(entry) => entry,
        Lookup::Miss | Lookup::Reject(_) => return None,
    };
    match gate_entry(job, &entry) {
        Ok((outcome, mut metrics)) => {
            ctx.store.note_hit();
            metrics.cached = true;
            let budget = job.budget();
            let certificate = budget
                .is_some_and(|b| b.emit_certificate)
                .then(|| entry.cert_text.clone());
            // Lint reports are deterministic in the job alone — cheap to
            // recompute, so they are not stored.
            let lint = budget
                .is_some_and(|b| b.emit_lint)
                .then(|| crate::lint::lint_job(job).render_lines());
            metrics.elapsed = clock.elapsed();
            record_job_metrics(job.kind(), outcome.verdict(), &clock);
            Some(JobResult {
                id,
                kind: job.kind(),
                outcome,
                metrics,
                certificate,
                trace: None,
                lint,
            })
        }
        Err(_) => {
            ctx.store.note_gate_reject();
            None
        }
    }
}

/// The outcome↔certificate consistency gate: a validated entry is served
/// only when its recorded verdict is the kind of claim its certificate
/// actually proves. A tampered entry that swaps in a *valid but
/// unrelated* certificate fails here even though the checker passed it.
fn gate_entry(job: &Job, entry: &cqfd_store::Entry) -> Result<(JobOutcome, JobMetrics), String> {
    let (_, kind, outcome, metrics) = parse_result_line(&entry.result_line)?;
    if kind != job.kind() {
        return Err(format!("entry kind `{kind}` != job kind `{}`", job.kind()));
    }
    let cert = cqfd_cert::parse(&entry.cert_text).map_err(|e| format!("cert parse: {e}"))?;
    let report = cqfd_cert::check(&cert).map_err(|e| format!("checker: {e}"))?;
    let consistent = match (&outcome, &cert) {
        (JobOutcome::Determined { .. }, Certificate::ChaseTrace { goal: Some(_), .. }) => true,
        (JobOutcome::NotDetermined { .. }, Certificate::FiniteModel { .. }) => true,
        (JobOutcome::Unknown { .. }, Certificate::NonHomRefutation { .. }) => true,
        (JobOutcome::Halted { steps }, Certificate::CreepTrace { halted: true, .. }) => {
            report.steps == *steps
        }
        (JobOutcome::StillCreeping { steps }, Certificate::CreepTrace { halted: false, .. }) => {
            report.steps == *steps
        }
        (
            JobOutcome::Separated {
                lasso_pattern: true,
                ..
            },
            Certificate::FiniteModel { .. },
        ) => true,
        (JobOutcome::CounterexampleFound { .. }, Certificate::FiniteModel { .. }) => true,
        (JobOutcome::NoCounterexample { .. }, Certificate::NonHomRefutation { .. }) => true,
        _ => false,
    };
    if !consistent {
        return Err(format!(
            "outcome `{}` inconsistent with certificate kind `{}`",
            outcome.verdict(),
            cert.kind()
        ));
    }
    Ok((outcome, metrics))
}

/// Publishes per-job counters and latency into the global registry. Job
/// id is deliberately **not** a metric label (unbounded cardinality);
/// per-job attribution lives in the trace lines instead.
fn record_job_metrics(kind: &'static str, verdict: &'static str, clock: &Stopwatch) {
    let reg = cqfd_obs::global();
    reg.counter(
        "cqfd_pool_jobs_total",
        "Jobs executed, by kind and verdict.",
        &[("kind", kind), ("verdict", verdict)],
    )
    .inc();
    reg.histogram(
        "cqfd_pool_job_seconds",
        "Job execution wall time (excludes queueing), by kind.",
        &[("kind", kind)],
        Unit::Seconds,
    )
    .observe(clock.elapsed_ns());
}

/// Builds the chase budget for a job: declared limits plus the pool's
/// cancellation token, (if any) a deadline starting now, and the job's
/// enumeration thread count capped by the executor's `thread_cap`.
fn chase_budget(budget: &JobBudget, cancel: &CancelToken, thread_cap: usize) -> ChaseBudget {
    let mut b = ChaseBudget::stages(budget.max_stages)
        .with_cancel(cancel.clone())
        .with_threads(budget.threads.min(thread_cap.max(1)))
        .with_hom_engine(budget.hom_engine);
    if let Some(t) = budget.timeout {
        b = b.with_timeout(t);
    }
    b
}

/// Harvests chase-run metrics (stages, triggers, structure peaks) and the
/// run's static termination verdict.
fn record_run(metrics: &mut JobMetrics, run: &ChaseRun) {
    metrics.stages += run.stage_count();
    metrics.triggers += run.triggers_fired();
    metrics.peak_atoms = metrics.peak_atoms.max(run.structure.atom_count());
    metrics.peak_nodes = metrics.peak_nodes.max(run.structure.node_count());
    metrics.termination = Some(run.termination.name());
}

/// Names what stopped a cancelled run: the token or the clock.
fn stop_detail(cancel: &CancelToken) -> String {
    if cancel.is_cancelled() {
        "cancelled".into()
    } else {
        "deadline".into()
    }
}

fn run_job(
    job: &Job,
    cancel: &CancelToken,
    thread_cap: usize,
    metrics: &mut JobMetrics,
    certificate: &mut Option<String>,
    store: Option<&StoreCtx>,
) -> JobOutcome {
    // A configured cache needs the certificate even when the submitter
    // did not ask for one: entries are validated by re-checking it.
    let force_cert = store.is_some_and(|c| c.cache);
    match job {
        Job::Determine {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            let class = crate::dispatch::classify_for(&oracle, views, q0);
            metrics.fragment = Some(class.fragment.as_str());
            if let Err(e) = check_forced(budget.dispatch, class.fragment) {
                return e;
            }
            let route = if budget.dispatch.routes() {
                Route::for_fragment(class.fragment)
            } else {
                Route::Semi
            };
            metrics.route = Some(route.as_str());
            if route != Route::Semi {
                crate::dispatch::note_routed(class.fragment);
            }
            let mut chase = chase_budget(budget, cancel, thread_cap);
            if route == Route::Spider {
                // The spider fragment's `T_Q` is *not* weakly acyclic, so
                // `certify_run`'s presizing leaves the stage cap alone —
                // but its chase provably reaches a fixpoint (the path view
                // produces no fresh triggers past saturation), so lift the
                // cap the same way presizing would. The atom/node size
                // caps stay in place as the safety net.
                chase.max_stages = chase.max_stages.max(ChaseBudget::PRESIZED_STAGES);
            }
            let cr = match store.filter(|c| c.resume) {
                Some(ctx) => determine_with_log(&oracle, views, q0, &chase, ctx, budget.dispatch),
                None => oracle.certify_run(views, q0, &chase),
            };
            record_run(metrics, &cr.run);
            if cr.run.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            let outcome = match cr.verdict {
                Verdict::Determined { stage } => JobOutcome::Determined { stage },
                Verdict::NotDeterminedUnrestricted { stages } => {
                    JobOutcome::NotDetermined { stages }
                }
                Verdict::Unknown { stages } => JobOutcome::Unknown { stages },
            };
            // The routed fragments each carry an *independent* complete
            // decision procedure; run it as a cross-check of the chase
            // verdict. A disagreement would mean a bug in one of the two
            // implementations — fail loudly instead of picking a side.
            if let Some(expected) = independent_verdict(&oracle, &class, views, q0, route) {
                let agrees = match &outcome {
                    JobOutcome::Determined { .. } => expected,
                    JobOutcome::NotDetermined { .. } => !expected,
                    _ => true,
                };
                if !agrees {
                    return JobOutcome::Error {
                        message: format!(
                            "dispatch cross-check failed: the {} procedure says determined={}, \
                             the chase says {}",
                            route.as_str(),
                            expected,
                            outcome.verdict()
                        ),
                    };
                }
            }
            if budget.emit_certificate || force_cert {
                *certificate = Some(cqfd_cert::encode(&cr.certificate));
            }
            outcome
        }
        Job::Rewrite { sig, views, q0 } => {
            let arc = Arc::new(sig.clone());
            match cq_rewriting(&arc, views, q0) {
                Some(rw) => JobOutcome::RewritingFound {
                    rewriting: rw.query.display_with(&rw.view_signature).to_string(),
                },
                None => JobOutcome::NoRewriting,
            }
        }
        Job::Reduce { delta } => {
            let inst = cqfd_reduction::reduce(delta);
            JobOutcome::Reduced {
                queries: inst.stats.queries,
                total_atoms: inst.stats.total_atoms,
                s: inst.stats.s,
            }
        }
        Job::Creep { delta, budget } => {
            let outcome = creep_job(delta, budget, cancel);
            if budget.emit_certificate || force_cert {
                // Re-creeping for the trace is cheap relative to the reduction
                // pipelines these worms feed; a budget-exhausted run gets no
                // certificate (there is no conclusive claim to certify).
                match outcome {
                    JobOutcome::Halted { steps } => {
                        let cert =
                            cqfd_cert::emit::creep_certificate(delta, steps + 1, checkpoint(steps));
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    JobOutcome::StillCreeping { steps } => {
                        let cert =
                            cqfd_cert::emit::creep_certificate(delta, steps, checkpoint(steps));
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    _ => {}
                }
            }
            outcome
        }
        Job::Separate { budget } => {
            // Thread the service budget (cancel, deadline, threads) into
            // both Theorem 14 chases, preserving the generous size caps of
            // the stock separating budget.
            let chase = ChaseBudget {
                cancel: cancel.clone(),
                deadline: budget.timeout.map(|t| Instant::now() + t),
                threads: budget.threads.max(1).min(thread_cap.max(1)),
                hom_engine: budget.hom_engine,
                ..cqfd_separating::theorem14::separating_budget(budget.max_stages)
            };
            let (_, run_di, di_pattern) = cqfd_separating::theorem14::chase_from_di_with(&chase);
            record_run(metrics, &run_di);
            if run_di.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            let (g_lasso, run_lasso, lasso_pattern) =
                cqfd_separating::theorem14::chase_from_lasso_with(3, 1, &chase);
            record_run(metrics, &run_lasso);
            if run_lasso.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            if (budget.emit_certificate || force_cert) && lasso_pattern {
                *certificate =
                    cqfd_cert::emit::pattern_certificate(&g_lasso).map(|c| cqfd_cert::encode(&c));
            }
            JobOutcome::Separated {
                di_pattern,
                lasso_pattern,
            }
        }
        Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            let class = crate::dispatch::classify_for(&oracle, views, q0);
            metrics.fragment = Some(class.fragment.as_str());
            if let Err(e) = check_forced(budget.dispatch, class.fragment) {
                return e;
            }
            // In a decidable fragment the chase reaches a fixpoint, and a
            // non-determined fixpoint *is* a finite counter-model — built
            // in milliseconds where brute-force enumeration over the node
            // cap is exponential, and valid at any size (the enumeration
            // can only refute up to its cap).
            if budget.dispatch.routes() && class.fragment.is_decidable() {
                let mut chase = chase_budget(budget, cancel, thread_cap);
                chase.max_stages = chase.max_stages.max(ChaseBudget::PRESIZED_STAGES);
                let cr = oracle.certify_run(views, q0, &chase);
                record_run(metrics, &cr.run);
                if cr.run.outcome == ChaseOutcome::Cancelled {
                    return JobOutcome::BudgetExceeded {
                        detail: stop_detail(cancel),
                    };
                }
                if matches!(cr.verdict, Verdict::NotDeterminedUnrestricted { .. }) {
                    let d = &cr.run.structure;
                    let report = cqfd_greenred::is_counterexample(&oracle, views, q0, d);
                    if report.is_counterexample {
                        metrics.route = Some(Route::ChaseModel.as_str());
                        crate::dispatch::note_routed(class.fragment);
                        if budget.emit_certificate || force_cert {
                            *certificate = counterexample_certificate(&oracle, views, q0, d)
                                .map(|c| cqfd_cert::encode(&c));
                        }
                        return JobOutcome::CounterexampleFound {
                            atoms: d.atom_count(),
                        };
                    }
                }
                // Determined (no counter-example exists at any size) or —
                // defensively — an inconclusive run: fall through to the
                // budgeted enumeration, which answers exactly what `semi`
                // would answer.
            }
            metrics.route = Some(Route::Semi.as_str());
            match search_counterexample(&oracle, views, q0, budget.max_search_nodes) {
                Some(d) => {
                    metrics.peak_atoms = metrics.peak_atoms.max(d.atom_count());
                    metrics.peak_nodes = metrics.peak_nodes.max(d.node_count());
                    if budget.emit_certificate || force_cert {
                        *certificate = counterexample_certificate(&oracle, views, q0, &d)
                            .map(|c| cqfd_cert::encode(&c));
                    }
                    JobOutcome::CounterexampleFound {
                        atoms: d.atom_count(),
                    }
                }
                None => {
                    if budget.emit_certificate || force_cert {
                        let cert = Certificate::NonHomRefutation {
                            sig: convert::sig_spec(oracle.greenred().colored()),
                            what: format!(
                                "exhaustive search found no counter-example to `{}` \
                                 determinacy over ≤ {} nodes",
                                q0.name, budget.max_search_nodes
                            ),
                            bound: budget.max_search_nodes.max(1) as u64,
                            explored: hom_nodes_explored(),
                        };
                        *certificate = Some(cqfd_cert::encode(&cert));
                    }
                    JobOutcome::NoCounterexample {
                        nodes: budget.max_search_nodes,
                    }
                }
            }
        }
    }
}

/// `dispatch=forced:A3xx` is an up-front assertion: if the classifier
/// assigns any other fragment the job fails before touching the chase.
/// Also run by the pool at submission, so a forced mismatch never
/// occupies a queue slot or a worker.
pub(crate) fn check_forced(dispatch: Dispatch, actual: Fragment) -> Result<(), JobOutcome> {
    match dispatch {
        Dispatch::Forced(expected) if expected != actual => Err(JobOutcome::Error {
            message: format!(
                "dispatch=forced:{} but the classifier assigned {} ({})",
                expected.as_str(),
                actual.as_str(),
                actual.code().title()
            ),
        }),
        _ => Ok(()),
    }
}

/// The independent decision procedure of a routed fragment, as a
/// `determined?` verdict — or `None` when the route has none (the total
/// chase *is* the procedure on `A301`, and `semi` routes nothing).
///
/// * `psv` — the project-select decider of [`cqfd_analysis::psv`]: a
///   green/red closure built directly from the view definitions, sharing
///   no code with the oracle's chase or homomorphism search.
/// * `spider` — the arithmetic criterion for path views: an `m`-path view
///   determines a `k`-path query iff `m` divides `k`.
fn independent_verdict(
    oracle: &DeterminacyOracle,
    class: &Classification,
    views: &[cqfd_core::Cq],
    q0: &cqfd_core::Cq,
    route: Route,
) -> Option<bool> {
    match route {
        Route::Psv => {
            cqfd_analysis::psv::decide(oracle.greenred().base(), views, q0, Default::default())
                .map(|v| v.is_determined())
        }
        Route::Spider => class.path_lengths.map(|(m, k)| k % m == 0),
        _ => None,
    }
}

/// Runs a `determine` chase with the write-ahead stage log: resume from
/// an existing log when it validates (replayed through the real engine,
/// counts checked against every stage mark), checkpoint each committed
/// stage, and delete the log once the run concludes. A cancelled run
/// keeps its log — that *is* the resumable state.
///
/// Resumption is byte-transparent: the resumed run's structures, stage
/// history, firings, and certificate are identical to an uninterrupted
/// run's, at every thread count (the chase is byte-deterministic and
/// replay reproduces node allocation exactly).
fn determine_with_log(
    oracle: &DeterminacyOracle,
    views: &[cqfd_core::Cq],
    q0: &cqfd_core::Cq,
    chase: &ChaseBudget,
    ctx: &StoreCtx,
    dispatch: Dispatch,
) -> cqfd_greenred::CertifiedRun {
    let log_path = ctx.store.log_path(&ctx.key.hash);
    let (engine, start, _) = oracle.chase_setup(views, q0);
    let dispatch_wire = dispatch.wire();
    let mut hooks = ChaseHooks::default();
    let mut writer: Option<StageLogWriter> = None;
    if let Ok(text) = std::fs::read_to_string(&log_path) {
        if let Ok(log) = cqfd_cert::parse_stage_log(&text) {
            // A log committed under a different dispatch mode was driven
            // by a different stage budget; its prefix may be valid chase
            // history, but resuming it would mix two regimes in one run.
            // Refuse and start fresh (overwriting the stale log). Logs
            // predating the meta line carry no mode and are refused too.
            let same_mode = log
                .meta
                .iter()
                .any(|(k, v)| k == "dispatch" && *v == dispatch_wire);
            if !same_mode {
                cqfd_obs::event!("store.resume_refused", dispatch = dispatch_wire.as_str());
            } else if let Some(rp) = cqfd_store::resume_point(&engine, &start, &log) {
                if let Ok(w) = StageLogWriter::reopen(&log_path, log.valid_bytes) {
                    cqfd_obs::event!("store.resume", stages = rp.stages.len() as u64);
                    ctx.store.note_resume();
                    hooks.resume = Some(rp);
                    writer = Some(w);
                }
            }
        }
    }
    if writer.is_none() {
        let rules: Vec<_> = engine.tgds().iter().map(convert::rule_spec).collect();
        let prelude = cqfd_cert::stage_log_prelude_with_meta(
            &convert::sig_spec(start.signature()),
            &rules,
            &convert::struct_spec(&start),
            &[("dispatch", dispatch_wire.as_str())],
        );
        // A log that cannot be written is a lost checkpoint, not a
        // failed job: fall through with no checkpoint hook.
        writer = StageLogWriter::create(&log_path, &prelude).ok();
    }
    let mut commit = |stage: usize, info: &cqfd_chase::StageInfo, fires: &[cqfd_chase::Firing]| {
        if let Some(w) = writer.as_mut() {
            let _ = w.commit_stage(stage, info, fires);
        }
    };
    hooks.checkpoint = Some(&mut commit);
    let cr = oracle.certify_run_with(views, q0, chase, hooks);
    if cr.run.outcome != ChaseOutcome::Cancelled {
        // Concluded: the verdict (and its certificate) supersede the log.
        let _ = std::fs::remove_file(&log_path);
    }
    cr
}

/// A checkpoint interval that keeps creep certificates to ≲ 64 config
/// lines regardless of run length.
fn checkpoint(steps: usize) -> usize {
    (steps / 64).max(1)
}

/// Builds the [`Certificate::FiniteModel`] for a found counter-example:
/// `d` models `T_Q`, and at the disagreeing tuple one color of `Q0` holds
/// (witnessed) while the other fails.
fn counterexample_certificate(
    oracle: &DeterminacyOracle,
    views: &[cqfd_core::Cq],
    q0: &cqfd_core::Cq,
    d: &cqfd_core::Structure,
) -> Option<Certificate> {
    let report = cqfd_greenred::is_counterexample(oracle, views, q0, d);
    let tuple = report.witness?;
    let green = oracle.colored_query(Color::Green, q0);
    let red = oracle.colored_query(Color::Red, q0);
    let (holds_q, fails_q) = if green.holds(d, &tuple) {
        (green, red)
    } else {
        (red, green)
    };
    let fixed: VarMap = holds_q
        .head_vars
        .iter()
        .copied()
        .zip(tuple.iter().copied())
        .collect();
    let witness = find_homomorphism(&holds_q.body, d, &fixed)?;
    let tgds = greenred_tgds(oracle.greenred(), views);
    Some(Certificate::FiniteModel {
        sig: convert::sig_spec(oracle.greenred().colored()),
        rules: tgds.iter().map(convert::rule_spec).collect(),
        structure: convert::struct_spec(d),
        holds: vec![convert::holds_claim(&holds_q, &tuple, &witness)],
        fails: vec![convert::fails_claim(&fails_q, &tuple)],
    })
}

/// The creep loop with cooperative cancellation: the rainworm step
/// function itself is untouched; the service drives it one `⇒` at a time,
/// polling the token every step and the clock every 64 steps.
fn creep_job(delta: &cqfd_rainworm::Delta, budget: &JobBudget, cancel: &CancelToken) -> JobOutcome {
    let deadline = budget.timeout.map(|t| Instant::now() + t);
    let mut cur = Config::initial();
    if let Err(e) = cur.validate() {
        return JobOutcome::Error {
            message: format!("invalid start configuration: {e}"),
        };
    }
    for k in 0..budget.max_steps {
        if cancel.is_cancelled() {
            return JobOutcome::BudgetExceeded {
                detail: "cancelled".into(),
            };
        }
        if k % 64 == 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return JobOutcome::BudgetExceeded {
                        detail: "deadline".into(),
                    };
                }
            }
        }
        match step(delta, &cur) {
            Some(next) => {
                if let Err(e) = next.validate() {
                    return JobOutcome::Error {
                        message: format!("Lemma 20 violated at step {}: {e}", k + 1),
                    };
                }
                cur = next;
            }
            None => return JobOutcome::Halted { steps: k },
        }
    }
    JobOutcome::StillCreeping {
        steps: budget.max_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::{Cq, Signature};
    use cqfd_rainworm::families::{forever_worm, halting_worm_short};
    use std::time::Duration;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn determine_job_certifies_identity_view() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(r.outcome, JobOutcome::Determined { stage: 1 });
        assert!(r.metrics.stages >= 1);
        assert!(r.metrics.homs > 0, "hom search was metered");
        assert!(r.metrics.peak_atoms > 0);
    }

    #[test]
    fn pre_cancelled_job_does_not_run() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let job = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &cancel);
        assert!(r.outcome.is_budget_exceeded());
    }

    #[test]
    fn creep_job_halts_and_respects_deadline() {
        let halting = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &halting, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::Halted { .. }));

        let forever = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default()
                .with_steps(usize::MAX)
                .with_timeout(Duration::from_millis(50)),
        };
        let r = execute(2, &forever, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
        assert!(r.metrics.elapsed < Duration::from_secs(5));
    }

    /// Regression: the hom-node counter is reset at job start, so a cheap
    /// job executed on a worker thread that previously ran a hom-heavy job
    /// reports its *own* hom count (zero), not the accumulated total. Run
    /// both jobs through a 1-worker pool so they share a thread for sure.
    #[test]
    fn hom_counter_resets_between_jobs_on_a_reused_worker() {
        let pool = crate::Pool::new(crate::PoolConfig::default().with_workers(1));
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let heavy = pool
            .submit_blocking(Job::Determine {
                sig,
                views,
                q0,
                budget: JobBudget::default(),
            })
            .wait();
        assert!(heavy.metrics.homs > 0, "first job explores hom nodes");
        let light = pool
            .submit_blocking(Job::Creep {
                delta: halting_worm_short(),
                budget: JobBudget::default(),
            })
            .wait();
        assert_eq!(
            light.metrics.homs, 0,
            "creep does no hom search; a leaked counter would show {}",
            heavy.metrics.homs
        );
    }

    #[test]
    fn determine_job_attaches_a_checkable_certificate_on_request() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &job, &CancelToken::inert());
        let text = r.certificate.expect("cert=1 attaches a certificate");
        let cert = cqfd_cert::parse(&text).unwrap();
        assert_eq!(cert.kind(), "chase-trace");
        let report = cqfd_cert::check(&cert).unwrap();
        assert!(report.summary.contains("goal holds"), "{}", report.summary);
    }

    #[test]
    fn creep_and_separate_jobs_attach_certificates_on_request() {
        let creep = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &creep, &CancelToken::inert());
        let steps = match r.outcome {
            JobOutcome::Halted { steps } => steps,
            other => panic!("wrong outcome: {other:?}"),
        };
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        let report = cqfd_cert::check(&cert).unwrap();
        assert_eq!(report.steps, steps, "trace replays the job's creep");

        let sep = Job::Separate {
            budget: JobBudget::default().with_stages(60).with_certificate(true),
        };
        let r = execute(2, &sep, &CancelToken::inert());
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "finite-model");
        assert!(cqfd_cert::check(&cert).is_ok());
    }

    #[test]
    fn counterexample_jobs_attach_certificates_both_ways() {
        // The projection instance has a 2-node counter-example; the
        // identity view has none.
        let inst = cqfd_greenred::instances::projection_instance();
        let found = Job::CounterexampleSearch {
            sig: inst.sig,
            views: inst.views,
            q0: inst.q0,
            budget: JobBudget::default().with_certificate(true),
        };
        let r = execute(1, &found, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::CounterexampleFound { .. }));
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "finite-model");
        assert!(cqfd_cert::check(&cert).is_ok());

        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let none = Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget: JobBudget::default()
                .with_search_nodes(2)
                .with_certificate(true),
        };
        let r = execute(2, &none, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::NoCounterexample { .. }));
        let cert = cqfd_cert::parse(r.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "non-hom-refutation");
        let report = cqfd_cert::check(&cert).unwrap();
        assert!(
            report.attestation,
            "refutations are flagged as attestations"
        );
    }

    #[test]
    fn lint_flag_attaches_report_and_run_stamps_termination() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default().with_lint(true),
        };
        let r = execute(1, &job, &CancelToken::inert());
        let lint = r.lint.as_deref().expect("lint=1 attaches a report");
        assert!(lint.starts_with("cqfd-lint v1\n"), "{lint}");
        assert!(lint.trim_end().ends_with("end"), "{lint}");
        assert!(
            r.metrics.termination.is_some(),
            "chase jobs stamp the termination verdict"
        );
        let head = r.render_protocol();
        let head = head.lines().next().unwrap();
        assert!(head.contains("lint_lines="), "{head}");
        assert!(head.contains("termination="), "{head}");
    }

    #[test]
    fn no_certificate_without_the_flag() {
        let job = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert!(r.certificate.is_none());
    }

    /// Tentpole regression: the canonical job hash separates dispatch
    /// modes for both determinacy kinds — `auto` can answer questions
    /// `semi` cannot, so their results must never be served for one
    /// another — and is invariant under everything else staying fixed.
    #[test]
    fn job_key_separates_dispatch_modes() {
        use cqfd_analysis::Fragment;
        let mk = |dispatch: Dispatch| {
            let inst = cqfd_greenred::instances::projection_instance();
            Job::Determine {
                sig: inst.sig,
                views: inst.views,
                q0: inst.q0,
                budget: JobBudget::default().with_dispatch(dispatch),
            }
        };
        let auto = job_key(&mk(Dispatch::Auto)).unwrap();
        let semi = job_key(&mk(Dispatch::Semi)).unwrap();
        let forced = job_key(&mk(Dispatch::Forced(Fragment::ProjectSelect))).unwrap();
        assert_ne!(auto.hash, semi.hash);
        assert_ne!(auto.hash, forced.hash);
        assert_ne!(semi.hash, forced.hash);
        assert_eq!(auto.hash, job_key(&mk(Dispatch::Auto)).unwrap().hash);
        let mk_cx = |dispatch: Dispatch| {
            let inst = cqfd_greenred::instances::projection_instance();
            Job::CounterexampleSearch {
                sig: inst.sig,
                views: inst.views,
                q0: inst.q0,
                budget: JobBudget::default().with_dispatch(dispatch),
            }
        };
        assert_ne!(
            job_key(&mk_cx(Dispatch::Auto)).unwrap().hash,
            job_key(&mk_cx(Dispatch::Semi)).unwrap().hash
        );
    }

    /// Tentpole: `auto` stamps the fragment and the route it took, and on
    /// routed fragments the chase verdict survives the independent
    /// cross-check (psv / divisibility).
    #[test]
    fn auto_dispatch_stamps_fragment_and_route() {
        let cases = [
            ("projection", "A300", "psv", "not-determined"),
            ("path:1x3", "A300", "psv", "determined"),
            ("path:2x3", "A302", "spider", "determined"),
            ("mismatch:2x3", "A302", "spider", "not-determined"),
        ];
        for (inst, fragment, route, verdict) in cases {
            let job = crate::parse_job(&format!("determine instance={inst}"))
                .unwrap()
                .unwrap();
            let r = execute(1, &job, &CancelToken::inert());
            assert_eq!(r.outcome.verdict(), verdict, "{inst}");
            assert_eq!(r.metrics.fragment, Some(fragment), "{inst}");
            assert_eq!(r.metrics.route, Some(route), "{inst}");
        }
        // `semi` stamps the (identical) fragment but routes nothing.
        let job = crate::parse_job("determine instance=path:2x3 dispatch=semi")
            .unwrap()
            .unwrap();
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(r.metrics.fragment, Some("A302"));
        assert_eq!(r.metrics.route, Some("semi"));
    }

    /// Criterion: a definite verdict `semi` cannot reach. Under the
    /// default stage budget of 1 the mismatched-path chase is cut short
    /// (`unknown`); `auto` recognizes the spider fragment, lifts the
    /// stage cap (the fixpoint provably exists), and answers definitely —
    /// double-checked by the divisibility criterion.
    #[test]
    fn spider_route_upgrades_unknown_to_definite() {
        let mk = |dispatch| {
            let inst = cqfd_greenred::instances::mismatched_path_instance(2, 5);
            Job::Determine {
                sig: inst.sig,
                views: inst.views,
                q0: inst.q0,
                budget: JobBudget::default().with_stages(1).with_dispatch(dispatch),
            }
        };
        let semi = execute(1, &mk(Dispatch::Semi), &CancelToken::inert());
        assert_eq!(semi.outcome, JobOutcome::Unknown { stages: 1 });
        let auto = execute(2, &mk(Dispatch::Auto), &CancelToken::inert());
        assert_eq!(auto.outcome, JobOutcome::NotDetermined { stages: 3 });
        assert_eq!(auto.metrics.route, Some("spider"));
    }

    /// Criterion: the chase-model route converts an inconclusive
    /// counterexample search into a definite, cert-checked verdict. The
    /// minimal counter-model for the 3-path vs 4-path instance has 3
    /// nodes, so brute force capped at 2 nodes exhausts without refuting;
    /// the chase fixpoint *is* a finite counter-model regardless of the
    /// node cap, extracted in milliseconds. (`mismatch:5x7` is the same
    /// story at the *default* cap — its minimal counter-model needs more
    /// than 3 nodes and ~2.6e8 hom checks to rule out — but that takes
    /// half a minute of enumeration even in release, so CI and the
    /// dispatch bench carry it instead of this unit test.)
    #[test]
    fn chase_model_route_converts_inconclusive_counterexample() {
        let mk = |dispatch| {
            let inst = cqfd_greenred::instances::mismatched_path_instance(3, 4);
            Job::CounterexampleSearch {
                sig: inst.sig,
                views: inst.views,
                q0: inst.q0,
                budget: JobBudget::default()
                    .with_certificate(true)
                    .with_search_nodes(2)
                    .with_dispatch(dispatch),
            }
        };
        let auto = execute(1, &mk(Dispatch::Auto), &CancelToken::inert());
        let JobOutcome::CounterexampleFound { atoms } = auto.outcome else {
            panic!("auto finds the chase counter-model: {:?}", auto.outcome);
        };
        assert!(atoms > 0);
        assert_eq!(auto.metrics.route, Some("chase-model"));
        assert_eq!(auto.metrics.fragment, Some("A302"));
        let cert = cqfd_cert::parse(auto.certificate.as_deref().unwrap()).unwrap();
        assert_eq!(cert.kind(), "finite-model");
        assert!(cqfd_cert::check(&cert).is_ok(), "trusted checker passes");
        let semi = execute(2, &mk(Dispatch::Semi), &CancelToken::inert());
        assert_eq!(
            semi.outcome,
            JobOutcome::NoCounterexample { nodes: 2 },
            "semi's bounded enumeration stays inconclusive"
        );
        assert_eq!(semi.metrics.route, Some("semi"));
    }

    #[test]
    fn forced_dispatch_asserts_the_classification() {
        use cqfd_analysis::Fragment;
        let inst = cqfd_greenred::instances::projection_instance();
        let mk = |f| Job::Determine {
            sig: inst.sig.clone(),
            views: inst.views.clone(),
            q0: inst.q0.clone(),
            budget: JobBudget::default().with_dispatch(Dispatch::Forced(f)),
        };
        // Matching assertion: runs like auto.
        let ok = execute(1, &mk(Fragment::ProjectSelect), &CancelToken::inert());
        assert_eq!(ok.outcome.verdict(), "not-determined");
        assert_eq!(ok.metrics.route, Some("psv"));
        // Mismatch: fails before the chase.
        let bad = execute(2, &mk(Fragment::WeaklyAcyclic), &CancelToken::inert());
        let JobOutcome::Error { message } = &bad.outcome else {
            panic!("expected an error, got {:?}", bad.outcome);
        };
        assert!(message.contains("forced:A301"), "{message}");
        assert!(message.contains("A300"), "{message}");
        assert_eq!(bad.metrics.stages, 0, "no chase ran");
    }

    /// `auto` and `semi` agree byte-for-byte on every definite verdict of
    /// the built-in determine families, modulo the stamps differential
    /// harnesses strip: `route=` (names the procedure that ran) and
    /// `homs=`/`elapsed_ms=` (the independent cross-check spends its own
    /// hom-search nodes).
    #[test]
    fn auto_and_semi_determine_lines_agree_modulo_route() {
        for inst in ["projection", "path:1x3", "path:2x3", "mismatch:2x3"] {
            let run = |dispatch: &str| {
                let job =
                    crate::parse_job(&format!("determine instance={inst} dispatch={dispatch}"))
                        .unwrap()
                        .unwrap();
                let mut r = execute(1, &job, &CancelToken::inert());
                r.metrics.elapsed = Duration::ZERO;
                r.metrics.homs = 0;
                r.metrics.route = None;
                r.to_string()
            };
            assert_eq!(run("auto"), run("semi"), "{inst}");
        }
    }

    #[test]
    fn determine_with_deadline_reports_budget_exceeded() {
        // Composed-view instance whose chase diverges: with an immediate
        // deadline the oracle must stop as budget-exceeded, not Unknown.
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,z) :- R(x,y), R(y,z)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default()
                .with_stages(usize::MAX)
                .with_timeout(Duration::ZERO),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
    }
}
