//! The single-job execution path, shared by pool workers, `cqfd batch`,
//! and the TCP server.

use crate::job::{Job, JobBudget};
use crate::outcome::{JobMetrics, JobOutcome, JobResult};
use cqfd_chase::{ChaseBudget, ChaseOutcome, ChaseRun};
use cqfd_core::{hom_nodes_explored, CancelToken};
use cqfd_greenred::{cq_rewriting, search_counterexample, DeterminacyOracle, Verdict};
use cqfd_rainworm::config::Config;
use cqfd_rainworm::run::step;
use std::sync::Arc;
use std::time::Instant;

/// Executes one job to completion (or budget exhaustion / cancellation)
/// on the calling thread, returning its result.
///
/// The `cancel` token is the pool's cooperative kill switch: chase-based
/// jobs thread it into [`ChaseBudget`] (polled at stage and trigger
/// boundaries), creep jobs poll it every step. Homomorphism-search nodes
/// are metered via the thread-local counter in `cqfd_core::hom`, read as
/// a before/after delta — correct under pool concurrency because each job
/// runs entirely on one worker thread.
pub fn execute(id: u64, job: &Job, cancel: &CancelToken) -> JobResult {
    let started = Instant::now();
    let homs_before = hom_nodes_explored();
    let mut metrics = JobMetrics::default();
    let outcome = if cancel.is_cancelled() {
        JobOutcome::BudgetExceeded {
            detail: "cancelled".into(),
        }
    } else {
        run_job(job, cancel, &mut metrics)
    };
    metrics.homs = hom_nodes_explored() - homs_before;
    metrics.elapsed = started.elapsed();
    JobResult {
        id,
        kind: job.kind(),
        outcome,
        metrics,
    }
}

/// Builds the chase budget for a job: declared limits plus the pool's
/// cancellation token and (if any) a deadline starting now.
fn chase_budget(budget: &JobBudget, cancel: &CancelToken) -> ChaseBudget {
    let mut b = ChaseBudget::stages(budget.max_stages).with_cancel(cancel.clone());
    if let Some(t) = budget.timeout {
        b = b.with_timeout(t);
    }
    b
}

/// Harvests chase-run metrics (stages, triggers, structure peaks).
fn record_run(metrics: &mut JobMetrics, run: &ChaseRun) {
    metrics.stages += run.stage_count();
    metrics.triggers += run.triggers_fired();
    metrics.peak_atoms = metrics.peak_atoms.max(run.structure.atom_count());
    metrics.peak_nodes = metrics.peak_nodes.max(run.structure.node_count());
}

/// Names what stopped a cancelled run: the token or the clock.
fn stop_detail(cancel: &CancelToken) -> String {
    if cancel.is_cancelled() {
        "cancelled".into()
    } else {
        "deadline".into()
    }
}

fn run_job(job: &Job, cancel: &CancelToken, metrics: &mut JobMetrics) -> JobOutcome {
    match job {
        Job::Determine {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            let (verdict, run) = oracle.certify_run(views, q0, &chase_budget(budget, cancel));
            record_run(metrics, &run);
            if run.outcome == ChaseOutcome::Cancelled {
                return JobOutcome::BudgetExceeded {
                    detail: stop_detail(cancel),
                };
            }
            match verdict {
                Verdict::Determined { stage } => JobOutcome::Determined { stage },
                Verdict::NotDeterminedUnrestricted { stages } => {
                    JobOutcome::NotDetermined { stages }
                }
                Verdict::Unknown { stages } => JobOutcome::Unknown { stages },
            }
        }
        Job::Rewrite { sig, views, q0 } => {
            let arc = Arc::new(sig.clone());
            match cq_rewriting(&arc, views, q0) {
                Some(rw) => JobOutcome::RewritingFound {
                    rewriting: rw.query.display_with(&rw.view_signature).to_string(),
                },
                None => JobOutcome::NoRewriting,
            }
        }
        Job::Reduce { delta } => {
            let inst = cqfd_reduction::reduce(delta);
            JobOutcome::Reduced {
                queries: inst.stats.queries,
                total_atoms: inst.stats.total_atoms,
                s: inst.stats.s,
            }
        }
        Job::Creep { delta, budget } => creep_job(delta, budget, cancel),
        Job::Separate { budget } => {
            let (_, run_di, di_pattern) =
                cqfd_separating::theorem14::chase_from_di(budget.max_stages);
            record_run(metrics, &run_di);
            let (_, run_lasso, lasso_pattern) =
                cqfd_separating::theorem14::chase_from_lasso(3, 1, budget.max_stages);
            record_run(metrics, &run_lasso);
            JobOutcome::Separated {
                di_pattern,
                lasso_pattern,
            }
        }
        Job::CounterexampleSearch {
            sig,
            views,
            q0,
            budget,
        } => {
            let oracle = DeterminacyOracle::new(sig.clone());
            match search_counterexample(&oracle, views, q0, budget.max_search_nodes) {
                Some(d) => {
                    metrics.peak_atoms = metrics.peak_atoms.max(d.atom_count());
                    metrics.peak_nodes = metrics.peak_nodes.max(d.node_count());
                    JobOutcome::CounterexampleFound {
                        atoms: d.atom_count(),
                    }
                }
                None => JobOutcome::NoCounterexample {
                    nodes: budget.max_search_nodes,
                },
            }
        }
    }
}

/// The creep loop with cooperative cancellation: the rainworm step
/// function itself is untouched; the service drives it one `⇒` at a time,
/// polling the token every step and the clock every 64 steps.
fn creep_job(delta: &cqfd_rainworm::Delta, budget: &JobBudget, cancel: &CancelToken) -> JobOutcome {
    let deadline = budget.timeout.map(|t| Instant::now() + t);
    let mut cur = Config::initial();
    if let Err(e) = cur.validate() {
        return JobOutcome::Error {
            message: format!("invalid start configuration: {e}"),
        };
    }
    for k in 0..budget.max_steps {
        if cancel.is_cancelled() {
            return JobOutcome::BudgetExceeded {
                detail: "cancelled".into(),
            };
        }
        if k % 64 == 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return JobOutcome::BudgetExceeded {
                        detail: "deadline".into(),
                    };
                }
            }
        }
        match step(delta, &cur) {
            Some(next) => {
                if let Err(e) = next.validate() {
                    return JobOutcome::Error {
                        message: format!("Lemma 20 violated at step {}: {e}", k + 1),
                    };
                }
                cur = next;
            }
            None => return JobOutcome::Halted { steps: k },
        }
    }
    JobOutcome::StillCreeping {
        steps: budget.max_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqfd_core::{Cq, Signature};
    use cqfd_rainworm::families::{forever_worm, halting_worm_short};
    use std::time::Duration;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn determine_job_certifies_identity_view() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(r.outcome, JobOutcome::Determined { stage: 1 });
        assert!(r.metrics.stages >= 1);
        assert!(r.metrics.homs > 0, "hom search was metered");
        assert!(r.metrics.peak_atoms > 0);
    }

    #[test]
    fn pre_cancelled_job_does_not_run() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let job = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &job, &cancel);
        assert!(r.outcome.is_budget_exceeded());
    }

    #[test]
    fn creep_job_halts_and_respects_deadline() {
        let halting = Job::Creep {
            delta: halting_worm_short(),
            budget: JobBudget::default(),
        };
        let r = execute(1, &halting, &CancelToken::inert());
        assert!(matches!(r.outcome, JobOutcome::Halted { .. }));

        let forever = Job::Creep {
            delta: forever_worm(),
            budget: JobBudget::default()
                .with_steps(usize::MAX)
                .with_timeout(Duration::from_millis(50)),
        };
        let r = execute(2, &forever, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
        assert!(r.metrics.elapsed < Duration::from_secs(5));
    }

    #[test]
    fn determine_with_deadline_reports_budget_exceeded() {
        // Composed-view instance whose chase diverges: with an immediate
        // deadline the oracle must stop as budget-exceeded, not Unknown.
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,z) :- R(x,y), R(y,z)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default()
                .with_stages(usize::MAX)
                .with_timeout(Duration::ZERO),
        };
        let r = execute(1, &job, &CancelToken::inert());
        assert_eq!(
            r.outcome,
            JobOutcome::BudgetExceeded {
                detail: "deadline".into()
            }
        );
    }
}
