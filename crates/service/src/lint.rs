//! Pre-execution lint for jobs: the bridge between `cqfd-analysis` and
//! the service.
//!
//! [`lint_job`] reconstructs the rule set a job would chase — the
//! green–red `T_Q` for determinacy kinds, the Theorem 14 separating rules,
//! the rainworm instruction set for creep/reduce — and runs the static
//! analyses over it. The TCP server and `cqfd batch` call this **before
//! submitting to the pool** and reject jobs whose report carries
//! error-severity diagnostics; `lint=1` on the wire additionally ships the
//! full report behind a `lint_lines=` marker, mirroring `cert=1`.

use crate::job::Job;
use cqfd_analysis::{analyze_delta, analyze_tgds, Code, Diagnostic, Report};
use cqfd_core::Cq;
use cqfd_greenred::{greenred_tgds, DeterminacyOracle};

/// Lints the rule set a job would execute. Never runs the job.
pub fn lint_job(job: &Job) -> Report {
    match job {
        Job::Determine { sig, views, q0, .. }
        | Job::Rewrite { sig, views, q0 }
        | Job::CounterexampleSearch { sig, views, q0, .. } => {
            let mut report = Report::new();
            for q in views.iter().chain(std::iter::once(q0)) {
                check_query_safety(q, &mut report);
            }
            // Building the oracle validates nothing by itself; the colored
            // T_Q is what the chase actually runs, so lint that.
            let oracle = DeterminacyOracle::new(sig.clone());
            let gr = oracle.greenred();
            let tgds = greenred_tgds(gr, views);
            let mut semantic = analyze_tgds(gr.colored(), &tgds);
            // `A021` parity with `lint_text`: a base predicate mentioned by
            // a view/query body — or named as a view's head target — is
            // used, even when no `T_Q` rule mentions its colored copies
            // (e.g. a predicate only the goal query `Q0` reads).
            let mut used = vec![false; sig.pred_count()];
            for q in views.iter().chain(std::iter::once(q0)) {
                for atom in &q.body {
                    used[atom.pred.0 as usize] = true;
                }
                if let Some(p) = sig.predicate(&q.name) {
                    used[p.0 as usize] = true;
                }
            }
            semantic.diagnostics.retain(|d| {
                !(d.code == Code::UnusedPredicate
                    && d.subject.as_ref().is_some_and(|name| {
                        gr.colored().predicate(name).is_some_and(|cp| {
                            let (_, base) = gr.decompose(cp);
                            used[base.0 as usize]
                        })
                    }))
            });
            report.merge(semantic);
            // The decidable-fragment classification (`A3xx`) — the same
            // verdict the executor's dispatcher acts on.
            report.merge(crate::dispatch::classify_for(&oracle, views, q0).to_report());
            report
        }
        Job::Separate { .. } => {
            let space = cqfd_separating::theorem14::separating_space();
            let tgds = cqfd_separating::theorem14::t_separating().tgds(&space);
            analyze_tgds(space.signature(), &tgds)
        }
        Job::Reduce { delta } | Job::Creep { delta, .. } => analyze_delta(delta),
    }
}

/// `A001` and `A010` for a hand-built query: `Cq::parse` enforces safety
/// and arities, but jobs constructed through the library API can carry
/// `Cq::new_unchecked` queries.
fn check_query_safety(q: &Cq, report: &mut Report) {
    let body_vars: Vec<_> = q.body.iter().flat_map(|a| a.vars()).collect();
    for v in &q.head_vars {
        if !body_vars.contains(v) {
            report.push(
                Diagnostic::new(
                    Code::UnsafeHeadVariable,
                    format!(
                        "head variable `{}` of query `{}` does not occur in the body",
                        q.var_name(*v),
                        q.name
                    ),
                )
                .with_subject(&q.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBudget;
    use cqfd_core::{Signature, Term, Var};
    use cqfd_rainworm::families::forever_worm;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn well_formed_determine_job_lints_clean_of_errors() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let report = lint_job(&job);
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn unsafe_unchecked_query_is_rejected_with_a001() {
        let sig = sig_r();
        let r = sig.predicate("R").unwrap();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        // Q0(x, w) :- R(x, y): w never occurs in the body.
        let q0 = Cq::new_unchecked(
            "Q0",
            vec![Var(0), Var(2)],
            vec![cqfd_core::Atom::new(
                r,
                vec![Term::Var(Var(0)), Term::Var(Var(1))],
            )],
            vec!["x".into(), "y".into(), "w".into()],
        );
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let report = lint_job(&job);
        let d = report.first_error().expect("A001 expected");
        assert_eq!(d.code, Code::UnsafeHeadVariable);
        assert!(d.message.contains("`w`"), "{}", d.message);
        assert!(d.message.contains("`Q0`"), "{}", d.message);
    }

    /// Satellite regression: every [`Job`] variant is covered by
    /// [`lint_job`] with an *exact* reconstruction of the rule set it
    /// would run. If a new variant is added, the `match` in `lint_job`
    /// stops compiling — and this test documents what each kind's report
    /// must contain.
    #[test]
    fn every_job_kind_is_lint_covered() {
        let mk_det = || {
            let sig = sig_r();
            let views = vec![Cq::parse(&sig, "V(x) :- R(x,y)").unwrap()];
            let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
            (sig, views, q0)
        };
        // Determinacy-shaped kinds reconstruct the colored T_Q and carry
        // the A3xx fragment verdict — proof the reconstruction really ran.
        let (sig, views, q0) = mk_det();
        let determinacy_jobs = [
            Job::Determine {
                sig: sig.clone(),
                views: views.clone(),
                q0: q0.clone(),
                budget: JobBudget::default().with_resume(true).with_cache(false),
            },
            Job::Rewrite {
                sig: sig.clone(),
                views: views.clone(),
                q0: q0.clone(),
            },
            Job::CounterexampleSearch {
                sig,
                views,
                q0,
                budget: JobBudget::default(),
            },
        ];
        for job in determinacy_jobs {
            let report = lint_job(&job);
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.code.as_str().starts_with("A3")),
                "{}: fragment verdict missing\n{}",
                job.kind(),
                report.render_human()
            );
            assert!(!report.has_errors(), "{}", report.render_human());
        }
        // Separate lints the Theorem 14 rules, which are famously not
        // weakly acyclic: A100 with a witness cycle must be present.
        let report = lint_job(&Job::Separate {
            budget: JobBudget::default(),
        });
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::NotWeaklyAcyclic),
            "{}",
            report.render_human()
        );
        // Rainworm kinds lint the instruction set.
        for job in [
            Job::Creep {
                delta: forever_worm(),
                budget: JobBudget::default(),
            },
            Job::Reduce {
                delta: forever_worm(),
            },
        ] {
            assert!(!lint_job(&job).has_errors(), "{}", job.kind());
        }
        // A wire-parsed job lints identically to its library-built twin.
        let parsed = crate::parse_job("determine instance=projection")
            .unwrap()
            .unwrap();
        let report = lint_job(&parsed);
        assert!(
            report.diagnostics.iter().any(|d| d.code.as_str() == "A300"),
            "projection is project-select:\n{}",
            report.render_human()
        );
    }

    /// Satellite regression (job side of the `A021` fix): a predicate that
    /// appears only as a view's head target must not lint as unused —
    /// matching `lint_text` on the equivalent rules file.
    #[test]
    fn view_head_target_predicate_is_not_unused_in_job_lint() {
        let mut sig = Signature::new();
        sig.add_predicate("R", 2);
        sig.add_predicate("V", 1);
        let views = vec![Cq::parse(&sig, "V(x) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let report = lint_job(&job);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::UnusedPredicate),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn builtin_job_kinds_lint_clean_of_errors() {
        let jobs = [
            Job::Separate {
                budget: JobBudget::default(),
            },
            Job::Creep {
                delta: forever_worm(),
                budget: JobBudget::default(),
            },
            Job::Reduce {
                delta: forever_worm(),
            },
        ];
        for job in jobs {
            let report = lint_job(&job);
            assert!(
                !report.has_errors(),
                "{}: {}",
                job.kind(),
                report.render_human()
            );
        }
    }
}
