//! Pre-execution lint for jobs: the bridge between `cqfd-analysis` and
//! the service.
//!
//! [`lint_job`] reconstructs the rule set a job would chase — the
//! green–red `T_Q` for determinacy kinds, the Theorem 14 separating rules,
//! the rainworm instruction set for creep/reduce — and runs the static
//! analyses over it. The TCP server and `cqfd batch` call this **before
//! submitting to the pool** and reject jobs whose report carries
//! error-severity diagnostics; `lint=1` on the wire additionally ships the
//! full report behind a `lint_lines=` marker, mirroring `cert=1`.

use crate::job::Job;
use cqfd_analysis::{analyze_delta, analyze_tgds, Code, Diagnostic, Report};
use cqfd_core::Cq;
use cqfd_greenred::{greenred_tgds, DeterminacyOracle};

/// Lints the rule set a job would execute. Never runs the job.
pub fn lint_job(job: &Job) -> Report {
    match job {
        Job::Determine { sig, views, q0, .. }
        | Job::Rewrite { sig, views, q0 }
        | Job::CounterexampleSearch { sig, views, q0, .. } => {
            let mut report = Report::new();
            for q in views.iter().chain(std::iter::once(q0)) {
                check_query_safety(q, &mut report);
            }
            // Building the oracle validates nothing by itself; the colored
            // T_Q is what the chase actually runs, so lint that.
            let oracle = DeterminacyOracle::new(sig.clone());
            let tgds = greenred_tgds(oracle.greenred(), views);
            report.merge(analyze_tgds(oracle.greenred().colored(), &tgds));
            report
        }
        Job::Separate { .. } => {
            let space = cqfd_separating::theorem14::separating_space();
            let tgds = cqfd_separating::theorem14::t_separating().tgds(&space);
            analyze_tgds(space.signature(), &tgds)
        }
        Job::Reduce { delta } | Job::Creep { delta, .. } => analyze_delta(delta),
    }
}

/// `A001` and `A010` for a hand-built query: `Cq::parse` enforces safety
/// and arities, but jobs constructed through the library API can carry
/// `Cq::new_unchecked` queries.
fn check_query_safety(q: &Cq, report: &mut Report) {
    let body_vars: Vec<_> = q.body.iter().flat_map(|a| a.vars()).collect();
    for v in &q.head_vars {
        if !body_vars.contains(v) {
            report.push(
                Diagnostic::new(
                    Code::UnsafeHeadVariable,
                    format!(
                        "head variable `{}` of query `{}` does not occur in the body",
                        q.var_name(*v),
                        q.name
                    ),
                )
                .with_subject(&q.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBudget;
    use cqfd_core::{Signature, Term, Var};
    use cqfd_rainworm::families::forever_worm;

    fn sig_r() -> Signature {
        let mut s = Signature::new();
        s.add_predicate("R", 2);
        s
    }

    #[test]
    fn well_formed_determine_job_lints_clean_of_errors() {
        let sig = sig_r();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        let q0 = Cq::parse(&sig, "Q0(x,y) :- R(x,y)").unwrap();
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let report = lint_job(&job);
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn unsafe_unchecked_query_is_rejected_with_a001() {
        let sig = sig_r();
        let r = sig.predicate("R").unwrap();
        let views = vec![Cq::parse(&sig, "V(x,y) :- R(x,y)").unwrap()];
        // Q0(x, w) :- R(x, y): w never occurs in the body.
        let q0 = Cq::new_unchecked(
            "Q0",
            vec![Var(0), Var(2)],
            vec![cqfd_core::Atom::new(
                r,
                vec![Term::Var(Var(0)), Term::Var(Var(1))],
            )],
            vec!["x".into(), "y".into(), "w".into()],
        );
        let job = Job::Determine {
            sig,
            views,
            q0,
            budget: JobBudget::default(),
        };
        let report = lint_job(&job);
        let d = report.first_error().expect("A001 expected");
        assert_eq!(d.code, Code::UnsafeHeadVariable);
        assert!(d.message.contains("`w`"), "{}", d.message);
        assert!(d.message.contains("`Q0`"), "{}", d.message);
    }

    #[test]
    fn builtin_job_kinds_lint_clean_of_errors() {
        let jobs = [
            Job::Separate {
                budget: JobBudget::default(),
            },
            Job::Creep {
                delta: forever_worm(),
                budget: JobBudget::default(),
            },
            Job::Reduce {
                delta: forever_worm(),
            },
        ];
        for job in jobs {
            let report = lint_job(&job);
            assert!(
                !report.has_errors(),
                "{}: {}",
                job.kind(),
                report.render_human()
            );
        }
    }
}
