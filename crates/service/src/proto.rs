//! The line protocol shared by `cqfd batch` job files and the TCP server.
//!
//! One job per line: a kind tag followed by `key=value` pairs; values with
//! spaces are double-quoted. Blank lines and `#` comments are skipped.
//!
//! ```text
//! determine sig=R/2,S/2 view="V1(x,y) :- R(x,y)" view="V2(x,y) :- S(x,y)" query="Q0(x,z) :- R(x,y), S(y,z)"
//! determine instance=path:2x3 stages=48
//! determine instance=projection
//! rewrite sig=R/2 view="V(x,z) :- R(x,y), R(y,z)" query="Q0(a,e) :- R(a,b), R(b,c), R(c,d), R(d,e)"
//! creep worm=counter:3 steps=100000
//! creep worm=forever steps=max timeout-ms=1000
//! reduce worm=forever
//! separate stages=80
//! counterexample sig=R/2 view="V(x) :- R(x,y)" query="Q0(x,y) :- R(x,y)" nodes=3
//! ```
//!
//! Results go back as the one-line rendering of
//! [`JobResult`](crate::JobResult)'s `Display` impl.

use crate::job::{Job, JobBudget};
use cqfd_core::{Cq, HomEngine, Signature};
use cqfd_greenred::instances;
use cqfd_rainworm::encode::tm_to_rainworm;
use cqfd_rainworm::families::{counter_worm, forever_worm, halting_worm_short};
use cqfd_rainworm::tm::TuringMachine;
use cqfd_rainworm::Delta;
use std::time::Duration;

/// Splits a protocol line into tokens, honoring double quotes inside
/// `key="value with spaces"` pairs.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quote".into());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Key/value view of one line's tokens (after the kind tag).
struct Fields {
    pairs: Vec<(String, String)>,
}

impl Fields {
    fn parse(tokens: &[String]) -> Result<Fields, String> {
        let mut pairs = Vec::new();
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{t}`"))?;
            pairs.push((k.to_string(), v.to_string()));
        }
        Ok(Fields { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}="))
    }

    /// Rejects keys outside the allowed set, so typos fail loudly instead
    /// of silently running with defaults.
    fn check_keys(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown key `{k}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some("max") => Ok(usize::MAX),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad {key}=`{v}` (want an unsigned integer or `max`)")),
        }
    }

    /// A boolean `key=0/1/true/false` flag, absent meaning false.
    fn flag(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            None | Some("0") | Some("false") => Ok(false),
            Some("1") | Some("true") => Ok(true),
            Some(v) => Err(format!("bad {key}=`{v}` (want 0/1/true/false)")),
        }
    }

    /// The `cert=` flag: request a certificate payload on the result.
    fn cert_flag(&self) -> Result<bool, String> {
        self.flag("cert")
    }

    /// The `trace=` flag: request a JSONL execution trace on the result.
    fn trace_flag(&self) -> Result<bool, String> {
        self.flag("trace")
    }

    /// The `lint=` flag: request a `cqfd-lint` diagnostics payload on the
    /// result.
    fn lint_flag(&self) -> Result<bool, String> {
        self.flag("lint")
    }

    /// The `cache=` flag: consult/populate the configured result store.
    /// Unlike the other flags this one defaults to **true** — `cache=0`
    /// opts a job out of the store.
    fn cache_flag(&self) -> Result<bool, String> {
        match self.get("cache") {
            None | Some("1") | Some("true") => Ok(true),
            Some("0") | Some("false") => Ok(false),
            Some(v) => Err(format!("bad cache=`{v}` (want 0/1/true/false)")),
        }
    }

    /// The `resume=` flag: maintain (and resume from) a write-ahead stage
    /// log for the job's chase.
    fn resume_flag(&self) -> Result<bool, String> {
        self.flag("resume")
    }

    /// The `threads=` key: chase enumeration worker threads. Must be a
    /// positive integer — `threads=0` is a contradiction, not "default".
    fn threads(&self) -> Result<usize, String> {
        match self.get("threads") {
            None => Ok(1),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("bad threads=`{v}` (want a positive integer)")),
            },
        }
    }

    /// The `hom=` key: the homomorphism search engine for chase-based
    /// jobs. Absent means the default (worst-case-optimal) engine.
    fn hom_engine(&self) -> Result<HomEngine, String> {
        match self.get("hom") {
            None => Ok(HomEngine::default()),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad hom=`{v}` (want legacy | wco)")),
        }
    }

    /// The `dispatch=` key: the fragment-dispatch mode for
    /// determinacy-shaped jobs. Absent means the default (`auto`).
    fn dispatch(&self) -> Result<crate::dispatch::Dispatch, String> {
        match self.get("dispatch") {
            None => Ok(crate::dispatch::Dispatch::default()),
            Some(v) => crate::dispatch::Dispatch::parse(v)
                .ok_or_else(|| format!("bad dispatch=`{v}` (want semi | auto | forced:A3xx)")),
        }
    }

    /// The `worm=` spec, with parse errors naming the key and value.
    fn worm(&self) -> Result<Delta, String> {
        let spec = self.require("worm")?;
        parse_worm(spec).map_err(|e| format!("bad worm=`{spec}`: {e}"))
    }

    /// The common budget keys: `stages=`, `steps=`, `nodes=`, `timeout-ms=`,
    /// `cert=`, `trace=`, `lint=`, `threads=`, `cache=`, `resume=`, `hom=`.
    fn budget(&self) -> Result<JobBudget, String> {
        let d = JobBudget::default();
        let timeout = match self.get("timeout-ms") {
            None => None,
            Some(ms) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad timeout-ms=`{ms}` (want milliseconds)"))?;
                Some(Duration::from_millis(ms))
            }
        };
        Ok(JobBudget {
            max_stages: self.usize_or("stages", d.max_stages)?,
            max_steps: self.usize_or("steps", d.max_steps)?,
            max_search_nodes: self.usize_or("nodes", d.max_search_nodes)?,
            timeout,
            emit_certificate: self.cert_flag()?,
            emit_trace: self.trace_flag()?,
            threads: self.threads()?,
            emit_lint: self.lint_flag()?,
            use_cache: self.cache_flag()?,
            resume: self.resume_flag()?,
            hom_engine: self.hom_engine()?,
            dispatch: self.dispatch()?,
        })
    }
}

/// Parses a worm spec: `forever`, `short`, `counter:M`, `tm-walker:K`,
/// `tm-zigzag:K`.
pub fn parse_worm(spec: &str) -> Result<Delta, String> {
    if let Some(m) = spec.strip_prefix("counter:") {
        let m: u16 = m
            .parse()
            .map_err(|_| format!("bad counter parameter `{m}` (want a u16)"))?;
        return Ok(counter_worm(m));
    }
    if let Some(k) = spec.strip_prefix("tm-walker:") {
        let k: u16 = k
            .parse()
            .map_err(|_| format!("bad walker parameter `{k}` (want a u16)"))?;
        return Ok(tm_to_rainworm(&TuringMachine::right_walker(k)));
    }
    if let Some(k) = spec.strip_prefix("tm-zigzag:") {
        let k: u16 = k
            .parse()
            .map_err(|_| format!("bad zigzag parameter `{k}` (want a u16)"))?;
        return Ok(tm_to_rainworm(&TuringMachine::zigzag(k)));
    }
    match spec {
        "forever" => Ok(forever_worm()),
        "short" => Ok(halting_worm_short()),
        other => Err(format!("unknown worm `{other}`")),
    }
}

/// Parses a signature spec `P/k,...` (same syntax as the CLI `--sig`).
pub fn parse_sig(spec: &str) -> Result<Signature, String> {
    let mut sig = Signature::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, arity) = part
            .split_once('/')
            .ok_or_else(|| format!("bad predicate spec `{part}` (want Name/arity)"))?;
        let arity: usize = arity
            .parse()
            .map_err(|_| format!("bad arity in `{part}`"))?;
        sig.try_add_predicate(name.trim(), arity)
            .map_err(|e| e.to_string())?;
    }
    Ok(sig)
}

/// Resolves an `instance=` shortcut into the generated families of
/// `cqfd_greenred::instances`: `projection`, `path:MxK` (determined),
/// `mismatch:MxK` (not determined).
fn parse_instance(spec: &str) -> Result<instances::Instance, String> {
    fn mxk(s: &str) -> Result<(usize, usize), String> {
        let (m, k) = s
            .split_once('x')
            .ok_or_else(|| format!("want MxK in `{s}`"))?;
        let m = m.parse().map_err(|_| format!("bad M in `{s}`"))?;
        let k = k.parse().map_err(|_| format!("bad K in `{s}`"))?;
        Ok((m, k))
    }
    if spec == "projection" {
        return Ok(instances::projection_instance());
    }
    if let Some(rest) = spec.strip_prefix("path:") {
        let (m, k) = mxk(rest)?;
        if m < 1 || k < 1 {
            return Err("path:MxK needs M,K ≥ 1".into());
        }
        return Ok(instances::composed_path_instance(m, k));
    }
    if let Some(rest) = spec.strip_prefix("mismatch:") {
        let (m, k) = mxk(rest)?;
        if m < 2 || k.is_multiple_of(m) {
            return Err("mismatch:MxK needs M ≥ 2 and M ∤ K".into());
        }
        return Ok(instances::mismatched_path_instance(m, k));
    }
    Err(format!(
        "unknown instance `{spec}` (want projection | path:MxK | mismatch:MxK)"
    ))
}

/// The `(sig, views, q0)` triple from either an `instance=` shortcut or
/// explicit `sig=`/`view=`/`query=` keys.
fn parse_cq_inputs(f: &Fields) -> Result<(Signature, Vec<Cq>, Cq), String> {
    if let Some(spec) = f.get("instance") {
        let inst = parse_instance(spec).map_err(|e| format!("bad instance=`{spec}`: {e}"))?;
        return Ok((inst.sig, inst.views, inst.q0));
    }
    let sig_spec = f.require("sig")?;
    let sig = parse_sig(sig_spec).map_err(|e| format!("bad sig=`{sig_spec}`: {e}"))?;
    let views: Vec<Cq> = f
        .get_all("view")
        .into_iter()
        .map(|v| Cq::parse(&sig, v).map_err(|e| format!("bad view=`{v}`: {e}")))
        .collect::<Result<_, _>>()?;
    if views.is_empty() {
        return Err("at least one view= required".into());
    }
    let q_spec = f.require("query")?;
    let q0 = Cq::parse(&sig, q_spec).map_err(|e| format!("bad query=`{q_spec}`: {e}"))?;
    Ok((sig, views, q0))
}

/// The tenant a request without a `tenant=` key (or header) bills to.
pub const DEFAULT_TENANT: &str = "anon";

/// Which gateway dispatch lane a request asks for. The lanes only exist
/// in the gateway reactor; everywhere else the field is parsed, checked,
/// and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// The default, low-latency lane.
    #[default]
    Interactive,
    /// The bulk lane: dispatched only when the interactive lane is empty.
    Batch,
}

impl Priority {
    /// Parses `interactive` / `batch`.
    pub fn parse(s: &str) -> Result<Priority, String> {
        match s {
            "interactive" => Ok(Priority::Interactive),
            "batch" => Ok(Priority::Batch),
            other => Err(format!("bad priority=`{other}` (want interactive | batch)")),
        }
    }
}

/// A parsed protocol line: the [`Job`] plus its routing metadata. The
/// metadata keys (`tenant=`, `priority=`, `stream=`) may appear anywhere
/// after the kind tag and are stripped before job parsing, so they are
/// valid on every job kind and never reach the job itself — two requests
/// differing only in metadata run byte-identically.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The job to run.
    pub job: Job,
    /// Billing/quota identity (`tenant=`, default [`DEFAULT_TENANT`]).
    pub tenant: String,
    /// Requested dispatch lane (`priority=`, default interactive).
    pub priority: Priority,
    /// Stream obs trace records to the client while the job runs
    /// (`stream=1`). Only the gateway implements delivery; the
    /// thread-per-connection server accepts and ignores it.
    pub stream: bool,
}

/// Is this key request routing metadata rather than part of the job?
fn is_meta_key(token: &str) -> bool {
    ["tenant=", "priority=", "stream="]
        .iter()
        .any(|p| token.starts_with(p))
}

/// Parses one protocol line into a [`JobRequest`] (job + routing
/// metadata). Returns `Ok(None)` for blank lines and `#` comments.
pub fn parse_request(line: &str) -> Result<Option<JobRequest>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = tokenize(line)?;
    let mut tenant = DEFAULT_TENANT.to_string();
    let mut priority = Priority::default();
    let mut stream = false;
    // The kind tag stays put; metadata keys are peeled off the rest.
    let meta: Vec<String> = tokens
        .iter()
        .skip(1)
        .filter(|t| is_meta_key(t))
        .cloned()
        .collect();
    tokens.retain_first_and(|t| !is_meta_key(t));
    for token in &meta {
        let (key, value) = token.split_once('=').expect("meta tokens carry `=`");
        match key {
            "tenant" => {
                if value.is_empty()
                    || !value
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
                {
                    return Err(format!("bad tenant=`{value}` (want [A-Za-z0-9._-]+)"));
                }
                tenant = value.to_string();
            }
            "priority" => priority = Priority::parse(value)?,
            "stream" => {
                stream = match value {
                    "0" | "false" => false,
                    "1" | "true" => true,
                    other => return Err(format!("bad stream=`{other}` (want 0/1/true/false)")),
                }
            }
            _ => unreachable!("is_meta_key admits only the three keys"),
        }
    }
    let Some(job) = parse_job_tokens(tokens)? else {
        return Ok(None);
    };
    Ok(Some(JobRequest {
        job,
        tenant,
        priority,
        stream,
    }))
}

/// `Vec::retain` that always keeps element 0 (the kind tag).
trait RetainFirst {
    fn retain_first_and(&mut self, keep: impl Fn(&str) -> bool);
}

impl RetainFirst for Vec<String> {
    fn retain_first_and(&mut self, keep: impl Fn(&str) -> bool) {
        let mut idx = 0;
        self.retain(|t| {
            let first = idx == 0;
            idx += 1;
            first || keep(t)
        });
    }
}

/// Parses one protocol line into a [`Job`]. Returns `Ok(None)` for blank
/// lines and `#` comments. Routing metadata (`tenant=` etc.) is rejected
/// here — job files are jobs, not requests; use [`parse_request`] on the
/// wire.
pub fn parse_job(line: &str) -> Result<Option<Job>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    parse_job_tokens(tokenize(line)?)
}

fn parse_job_tokens(tokens: Vec<String>) -> Result<Option<Job>, String> {
    let (kind, rest) = tokens.split_first().expect("non-empty line has tokens");
    let f = Fields::parse(rest)?;
    let job = match kind.as_str() {
        "determine" => {
            f.check_keys(&[
                "sig",
                "view",
                "query",
                "instance",
                "stages",
                "timeout-ms",
                "cert",
                "trace",
                "lint",
                "threads",
                "cache",
                "resume",
                "hom",
                "dispatch",
            ])?;
            let (sig, views, q0) = parse_cq_inputs(&f)?;
            Job::Determine {
                sig,
                views,
                q0,
                budget: f.budget()?,
            }
        }
        "rewrite" => {
            f.check_keys(&["sig", "view", "query", "instance"])?;
            let (sig, views, q0) = parse_cq_inputs(&f)?;
            Job::Rewrite { sig, views, q0 }
        }
        "reduce" => {
            f.check_keys(&["worm"])?;
            Job::Reduce { delta: f.worm()? }
        }
        "creep" => {
            f.check_keys(&[
                "worm",
                "steps",
                "timeout-ms",
                "cert",
                "trace",
                "lint",
                "cache",
            ])?;
            Job::Creep {
                delta: f.worm()?,
                budget: f.budget()?,
            }
        }
        "separate" => {
            f.check_keys(&["stages", "cert", "trace", "lint", "threads", "cache", "hom"])?;
            // The lasso chase needs ~80 stages to exhibit the 1-2 pattern,
            // so `separate` defaults higher than the generic budget.
            Job::Separate {
                budget: JobBudget::default()
                    .with_stages(f.usize_or("stages", 80)?)
                    .with_certificate(f.cert_flag()?)
                    .with_trace(f.trace_flag()?)
                    .with_lint(f.lint_flag()?)
                    .with_threads(f.threads()?)
                    .with_cache(f.cache_flag()?)
                    .with_hom_engine(f.hom_engine()?),
            }
        }
        "counterexample" => {
            f.check_keys(&[
                "sig", "view", "query", "instance", "nodes", "cert", "trace", "lint", "cache",
                "dispatch",
            ])?;
            let (sig, views, q0) = parse_cq_inputs(&f)?;
            Job::CounterexampleSearch {
                sig,
                views,
                q0,
                budget: f.budget()?,
            }
        }
        other => return Err(format!("unknown job kind `{other}`")),
    };
    Ok(Some(job))
}

/// Parses a whole job file (one job per line), reporting the first error
/// with its 1-based line number.
pub fn parse_jobs(text: &str) -> Result<Vec<Job>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_job(line) {
            Ok(Some(job)) => out.push(job),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_views_parse() {
        let job = parse_job(
            r#"determine sig=R/2,S/2 view="V1(x,y) :- R(x,y)" view="V2(x,y) :- S(x,y)" query="Q0(x,z) :- R(x,y), S(y,z)" stages=16"#,
        )
        .unwrap()
        .unwrap();
        match job {
            Job::Determine { views, budget, .. } => {
                assert_eq!(views.len(), 2);
                assert_eq!(budget.max_stages, 16);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn instance_shortcuts_resolve() {
        for (spec, n_views) in [("projection", 1), ("path:2x3", 1), ("mismatch:2x3", 1)] {
            let line = format!("determine instance={spec}");
            match parse_job(&line).unwrap().unwrap() {
                Job::Determine { views, .. } => assert_eq!(views.len(), n_views, "{spec}"),
                other => panic!("wrong kind: {other:?}"),
            }
        }
        assert!(parse_job("determine instance=mismatch:2x4").is_err());
    }

    #[test]
    fn comments_blanks_and_errors() {
        assert!(parse_job("").unwrap().is_none());
        assert!(parse_job("  # a comment").unwrap().is_none());
        assert!(parse_job("frobnicate x=1").is_err());
        assert!(parse_job("determine instance=projection bogus=1").is_err());
        assert!(parse_job(r#"determine sig=R/2 view="unterminated"#).is_err());
    }

    #[test]
    fn creep_line_with_timeout() {
        match parse_job("creep worm=forever steps=max timeout-ms=250")
            .unwrap()
            .unwrap()
        {
            Job::Creep { budget, .. } => {
                assert_eq!(budget.max_steps, usize::MAX);
                assert_eq!(budget.timeout, Some(Duration::from_millis(250)));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn cert_flag_parses_and_rejects_garbage() {
        match parse_job("separate stages=60 cert=1").unwrap().unwrap() {
            Job::Separate { budget } => assert!(budget.emit_certificate),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("creep worm=short cert=true").unwrap().unwrap() {
            Job::Creep { budget, .. } => assert!(budget.emit_certificate),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("determine instance=projection").unwrap().unwrap() {
            Job::Determine { budget, .. } => assert!(!budget.emit_certificate),
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(parse_job("separate cert=yes").is_err());
        assert!(parse_job("rewrite instance=projection cert=1").is_err());
    }

    #[test]
    fn trace_flag_parses_and_rejects_garbage() {
        match parse_job("determine instance=projection trace=1")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => {
                assert!(budget.emit_trace);
                assert!(!budget.emit_certificate);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate trace=true cert=1").unwrap().unwrap() {
            Job::Separate { budget } => {
                assert!(budget.emit_trace);
                assert!(budget.emit_certificate);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("creep worm=short").unwrap().unwrap() {
            Job::Creep { budget, .. } => assert!(!budget.emit_trace),
            other => panic!("wrong kind: {other:?}"),
        }
        let err = parse_job("creep worm=short trace=maybe").unwrap_err();
        assert!(err.contains("trace=`maybe`"), "{err}");
        // `rewrite` takes no budget, so it rejects the flag outright.
        assert!(parse_job("rewrite instance=projection trace=1").is_err());
    }

    #[test]
    fn lint_flag_parses_and_rejects_garbage() {
        match parse_job("determine instance=projection lint=1")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => {
                assert!(budget.emit_lint);
                assert!(!budget.emit_certificate);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate lint=true cert=1").unwrap().unwrap() {
            Job::Separate { budget } => {
                assert!(budget.emit_lint);
                assert!(budget.emit_certificate);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("creep worm=short").unwrap().unwrap() {
            Job::Creep { budget, .. } => assert!(!budget.emit_lint),
            other => panic!("wrong kind: {other:?}"),
        }
        let err = parse_job("creep worm=short lint=maybe").unwrap_err();
        assert!(err.contains("lint=`maybe`"), "{err}");
        // `rewrite` and `reduce` take no budget, so the flag is an
        // unknown key there.
        assert!(parse_job("rewrite instance=projection lint=1").is_err());
        assert!(parse_job("reduce worm=short lint=1").is_err());
    }

    #[test]
    fn cache_and_resume_flags_parse_and_reject_garbage() {
        // `cache` defaults to *true*, unlike every other flag.
        match parse_job("determine instance=projection").unwrap().unwrap() {
            Job::Determine { budget, .. } => {
                assert!(budget.use_cache);
                assert!(!budget.resume);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("determine instance=projection cache=0 resume=1")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => {
                assert!(!budget.use_cache);
                assert!(budget.resume);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate cache=false").unwrap().unwrap() {
            Job::Separate { budget } => assert!(!budget.use_cache),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("creep worm=short cache=true").unwrap().unwrap() {
            Job::Creep { budget, .. } => assert!(budget.use_cache),
            other => panic!("wrong kind: {other:?}"),
        }
        let err = parse_job("determine instance=projection cache=maybe").unwrap_err();
        assert!(err.contains("cache=`maybe`"), "{err}");
        let err = parse_job("determine instance=projection resume=maybe").unwrap_err();
        assert!(err.contains("resume=`maybe`"), "{err}");
        // Only the determinacy chase is resumable; everywhere else the key
        // is rejected rather than silently ignored.
        assert!(parse_job("separate resume=1").is_err());
        assert!(parse_job("creep worm=short resume=1").is_err());
        assert!(parse_job("rewrite instance=projection cache=0").is_err());
    }

    #[test]
    fn errors_name_the_offending_key() {
        let err = parse_job("creep worm=counter:zillion").unwrap_err();
        assert!(err.contains("worm=`counter:zillion`"), "{err}");
        assert!(err.contains("counter parameter `zillion`"), "{err}");

        let err = parse_job(r#"determine sig=R/2 view="V(x,y) :- R(x,y)" query="Q0(x) :- Z(x)""#)
            .unwrap_err();
        assert!(err.contains("query=`Q0(x) :- Z(x)`"), "{err}");

        let err = parse_job(r#"determine sig=R/2 view="V(x) :- Z(x)" query="Q0(x) :- R(x,x)""#)
            .unwrap_err();
        assert!(err.contains("view=`V(x) :- Z(x)`"), "{err}");

        let err = parse_job(r#"determine sig=R-2 view="V(x) :- R(x,x)" query="Q0(x) :- R(x,x)""#)
            .unwrap_err();
        assert!(err.contains("sig=`R-2`"), "{err}");

        let err = parse_job("determine instance=moebius:2x3").unwrap_err();
        assert!(err.contains("instance=`moebius:2x3`"), "{err}");

        let err = parse_job("determine instance=projection stages=lots").unwrap_err();
        assert!(err.contains("stages=`lots`"), "{err}");

        let err = parse_job("creep worm=short timeout-ms=soon").unwrap_err();
        assert!(err.contains("timeout-ms=`soon`"), "{err}");

        let err = parse_job("determine instance=projection threads=many").unwrap_err();
        assert!(err.contains("threads=`many`"), "{err}");
        assert!(err.contains("positive integer"), "{err}");

        let err = parse_job("separate threads=0").unwrap_err();
        assert!(err.contains("threads=`0`"), "{err}");
    }

    #[test]
    fn threads_key_parses_where_chasing_happens() {
        match parse_job("determine instance=projection threads=4")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => assert_eq!(budget.threads, 4),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate stages=60 threads=2").unwrap().unwrap() {
            Job::Separate { budget } => assert_eq!(budget.threads, 2),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate").unwrap().unwrap() {
            Job::Separate { budget } => assert_eq!(budget.threads, 1),
            other => panic!("wrong kind: {other:?}"),
        }
        // Creep never chases, so it rejects the key outright.
        assert!(parse_job("creep worm=short threads=4").is_err());
    }

    #[test]
    fn hom_key_parses_where_chasing_happens() {
        match parse_job("determine instance=projection hom=legacy")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => assert_eq!(budget.hom_engine, HomEngine::Legacy),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("separate stages=60 hom=wco").unwrap().unwrap() {
            Job::Separate { budget } => assert_eq!(budget.hom_engine, HomEngine::Wco),
            other => panic!("wrong kind: {other:?}"),
        }
        // Absent means the default engine.
        match parse_job("determine instance=projection").unwrap().unwrap() {
            Job::Determine { budget, .. } => {
                assert_eq!(budget.hom_engine, HomEngine::default());
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let err = parse_job("determine instance=projection hom=quantum").unwrap_err();
        assert!(err.contains("hom=`quantum`"), "{err}");
        assert!(err.contains("legacy | wco"), "{err}");
        // Creep never chases, so it rejects the key outright.
        assert!(parse_job("creep worm=short hom=legacy").is_err());
    }

    #[test]
    fn dispatch_key_parses_where_determinacy_happens() {
        use crate::dispatch::Dispatch;
        use cqfd_analysis::Fragment;
        match parse_job("determine instance=projection dispatch=semi")
            .unwrap()
            .unwrap()
        {
            Job::Determine { budget, .. } => assert_eq!(budget.dispatch, Dispatch::Semi),
            other => panic!("wrong kind: {other:?}"),
        }
        match parse_job("counterexample instance=mismatch:2x5 dispatch=forced:A302")
            .unwrap()
            .unwrap()
        {
            Job::CounterexampleSearch { budget, .. } => {
                assert_eq!(budget.dispatch, Dispatch::Forced(Fragment::SpiderPath));
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Absent means auto, the default.
        match parse_job("determine instance=projection").unwrap().unwrap() {
            Job::Determine { budget, .. } => assert_eq!(budget.dispatch, Dispatch::Auto),
            other => panic!("wrong kind: {other:?}"),
        }
        let err = parse_job("determine instance=projection dispatch=eager").unwrap_err();
        assert!(err.contains("dispatch=`eager`"), "{err}");
        assert!(err.contains("semi | auto | forced:A3xx"), "{err}");
        // Kinds with no determinacy chase reject the key outright.
        assert!(parse_job("creep worm=short dispatch=auto").is_err());
        assert!(parse_job("separate dispatch=semi").is_err());
        assert!(parse_job("rewrite instance=projection dispatch=auto").is_err());
    }

    #[test]
    fn request_metadata_parses_and_strips() {
        let req = parse_request("creep tenant=acme worm=short priority=batch stream=1")
            .unwrap()
            .unwrap();
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.priority, Priority::Batch);
        assert!(req.stream);
        assert!(matches!(req.job, Job::Creep { .. }));
        // Metadata defaults: anon tenant, interactive, no streaming.
        let req = parse_request("creep worm=short").unwrap().unwrap();
        assert_eq!(req.tenant, DEFAULT_TENANT);
        assert_eq!(req.priority, Priority::Interactive);
        assert!(!req.stream);
        // Metadata never reaches the job: the parsed jobs are equal.
        let plain = parse_job("determine instance=projection stages=16")
            .unwrap()
            .unwrap();
        let via_req = parse_request("determine tenant=t1 instance=projection stream=0 stages=16")
            .unwrap()
            .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{:?}", via_req.job));
        // Blank lines and comments still skip.
        assert!(parse_request("").unwrap().is_none());
        assert!(parse_request("# hi").unwrap().is_none());
    }

    #[test]
    fn request_metadata_rejects_garbage() {
        let err = parse_request("creep worm=short tenant=").unwrap_err();
        assert!(err.contains("tenant=``"), "{err}");
        let err = parse_request("creep worm=short tenant=a/b").unwrap_err();
        assert!(err.contains("tenant=`a/b`"), "{err}");
        let err = parse_request("creep worm=short priority=urgent").unwrap_err();
        assert!(err.contains("priority=`urgent`"), "{err}");
        let err = parse_request("creep worm=short stream=maybe").unwrap_err();
        assert!(err.contains("stream=`maybe`"), "{err}");
        // Job files stay strict: metadata keys are unknown keys there.
        assert!(parse_job("creep worm=short tenant=acme").is_err());
    }

    #[test]
    fn job_file_reports_line_numbers() {
        let text = "creep worm=short\n\n# comment\nbogus\n";
        let err = parse_jobs(text).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        assert_eq!(parse_jobs("creep worm=short\nseparate\n").unwrap().len(), 2);
    }
}
