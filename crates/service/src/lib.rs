//! # cqfd-service — concurrent job execution for determinacy workloads
//!
//! Everything interesting in this workspace is a *semi-decision*
//! procedure: the determinacy oracle may chase forever (Theorem 1), a
//! rainworm may creep forever (Lemma 21), a counter-example search may
//! exhaust any box you put it in. That shape — batches of jobs, each of
//! which might not come back — is what this crate serves:
//!
//! * [`Job`] — a typed description of one unit of work (determine,
//!   rewrite, reduce, creep, separate, counter-example search) with a
//!   [`JobBudget`]: stage/step/node limits plus a wall-clock timeout;
//! * [`Pool`] — a fixed-size worker pool on plain `std` threads with a
//!   *bounded* submission queue (backpressure, not unbounded memory) and
//!   cooperative cancellation: every [`JobHandle`] carries a
//!   [`CancelToken`](cqfd_core::CancelToken) that the chase polls at stage
//!   and trigger boundaries (`ChaseBudget::should_stop`) and the creep
//!   polls every step;
//! * [`JobResult`] — the verdict plus [`JobMetrics`] harvested from the
//!   instrumentation counters in `cqfd-chase` (stages, triggers) and
//!   `cqfd-core::hom` (search nodes);
//! * [`proto`] — the line protocol of `cqfd batch` job files and of the
//!   [`server`] TCP daemon (`cqfd serve`).
//!
//! ```
//! use cqfd_service::{parse_job, Pool, PoolConfig};
//!
//! let pool = Pool::new(PoolConfig::default().with_workers(2));
//! let job = parse_job("determine instance=path:2x2").unwrap().unwrap();
//! let result = pool.submit(job).unwrap().wait();
//! assert_eq!(result.outcome.verdict(), "determined");
//! pool.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debug;
pub mod dispatch;
pub mod exec;
pub mod job;
pub mod lint;
pub mod outcome;
pub mod pool;
pub mod proto;
pub mod server;

pub use dispatch::{Dispatch, Route};
pub use exec::{execute, execute_stored, job_key};
pub use job::{Job, JobBudget};
pub use lint::lint_job;
pub use outcome::{parse_result_line, JobMetrics, JobOutcome, JobResult};
pub use pool::{JobHandle, Pool, PoolConfig, SubmitError};
pub use proto::{parse_job, parse_jobs, parse_request, JobRequest, Priority, DEFAULT_TENANT};
pub use server::{Server, ServerHandle, ServerLimits, PROTOCOL_VERSION};
