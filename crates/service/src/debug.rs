//! The forensic debug surfaces shared by the line-protocol server and
//! the gateway: flight-ring dumps, sampling-profile windows, and the
//! cost-attribution report. Both front ends frame the same text; only
//! transport differs (framed control words vs `GET /debug/*`).

use cqfd_flight::{Attribution, ProfileOptions};
use cqfd_obs::Snapshot;
use std::time::Duration;

/// Longest profile window a remote client may request, in seconds. The
/// line server blocks one connection thread for the window; the gateway
/// runs it on a detached sampler thread.
pub const MAX_PROFILE_SECONDS: u64 = 30;

/// The newest `max_lines` flight-ring records as JSONL (counted under
/// `cqfd_flight_dumps_total{cause="request"}`).
pub fn flight_text(max_lines: usize) -> String {
    cqfd_flight::dump("request", max_lines)
}

/// The process-lifetime cost-attribution report: counter totals since
/// start (the "before" snapshot is empty) joined with span wall times
/// still held in the flight ring.
pub fn attribution_text() -> String {
    let empty = Snapshot {
        families: Vec::new(),
    };
    let now = cqfd_obs::global().snapshot();
    let records = cqfd_obs::jsonl::parse_lines(&cqfd_flight::recorder().snapshot_jsonl(usize::MAX))
        .unwrap_or_default();
    Attribution::between(&empty, &now)
        .with_spans(&records)
        .render()
}

/// Runs a sampling window and returns flamegraph folded-stack text.
/// Blocks for the (clamped) window — callers that must stay responsive
/// run it from a dedicated thread. A window that saw no frames returns a
/// single explanatory comment line rather than empty output.
pub fn profile_folded(seconds: u64, hz: u32) -> String {
    let profile = cqfd_flight::sample(ProfileOptions {
        duration: Duration::from_secs(seconds.clamp(1, MAX_PROFILE_SECONDS)),
        hz,
    });
    let text = profile.folded_text();
    if text.is_empty() {
        format!(
            "# no samples: no thread held a span during the {}s window ({} ticks)\n",
            seconds.clamp(1, MAX_PROFILE_SECONDS),
            profile.ticks
        )
    } else {
        text
    }
}

/// Parses `key=value` tokens of a `profile` control word (`seconds=N`,
/// `hz=N`; unknown keys rejected). Returns `(seconds, hz)`.
pub fn parse_profile_args(args: &str) -> Result<(u64, u32), String> {
    let mut seconds = 2u64;
    let mut hz = 97u32;
    for tok in args.split_whitespace() {
        match tok.split_once('=') {
            Some(("seconds", v)) => {
                seconds = v.parse::<u64>().map_err(|_| format!("bad seconds `{v}`"))?;
                if seconds == 0 || seconds > MAX_PROFILE_SECONDS {
                    return Err(format!(
                        "seconds must be 1..={MAX_PROFILE_SECONDS}, got {seconds}"
                    ));
                }
            }
            Some(("hz", v)) => {
                hz = v.parse::<u32>().map_err(|_| format!("bad hz `{v}`"))?;
                if hz == 0 || hz > 1000 {
                    return Err(format!("hz must be 1..=1000, got {hz}"));
                }
            }
            _ => return Err(format!("unknown profile argument `{tok}`")),
        }
    }
    Ok((seconds, hz))
}

/// Frames multi-line debug text the way the line protocol frames every
/// bulk reply: a `<word>_lines=N` header, then the N lines.
pub fn framed_reply(word: &str, text: &str) -> String {
    let mut reply = format!("{word}_lines={}", text.lines().count());
    for l in text.lines() {
        reply.push('\n');
        reply.push_str(l);
    }
    reply
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_args_parse_and_validate() {
        assert_eq!(parse_profile_args(""), Ok((2, 97)));
        assert_eq!(parse_profile_args("seconds=5 hz=250"), Ok((5, 250)));
        assert!(parse_profile_args("seconds=0").is_err());
        assert!(parse_profile_args("seconds=31").is_err());
        assert!(parse_profile_args("hz=0").is_err());
        assert!(parse_profile_args("hz=2000").is_err());
        assert!(parse_profile_args("bogus=1").is_err());
        assert!(parse_profile_args("seconds").is_err());
    }

    #[test]
    fn framed_reply_counts_lines() {
        assert_eq!(framed_reply("flight", ""), "flight_lines=0");
        assert_eq!(framed_reply("flight", "a\nb\n"), "flight_lines=2\na\nb");
    }

    #[test]
    fn attribution_text_renders_sections() {
        let text = attribution_text();
        assert!(text.starts_with("# cqfd cost attribution\n"), "{text}");
        assert!(text.contains("## rules"), "{text}");
        assert!(text.contains("## span timings"), "{text}");
    }
}
